//! `opmr` — command-line front end.
//!
//! ```text
//! opmr demo                          run the multi-app online demo
//! opmr simulate [options]            run one workload on the DES
//! opmr report <trace-dir> [out]      post-mortem analysis of .opmr/.sion traces
//! opmr stream-table                  print the Figure-14 throughput table
//! opmr help
//! ```

use opmr::analysis::report;
use opmr::core::{analyze_sion_dir, analyze_trace_dir, LiveOptions, Session};
use opmr::launch::{
    classify_exit, emit_stats, parse_hostfile, run_job, HeartbeatEmitter, Host, JobSpec,
    LocalSpawner, Spawner, SshSpawner, WorkerCommand, WorkerEnv,
};
use opmr::netsim::{curie, simulate, stream_model, tera100, Machine, ToolModel};
use opmr::workloads::{by_name, Class};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "opmr — online performance measurement reduction (ICPP 2013 reproduction)

USAGE:
    opmr demo [--transport socket] [--procs N]
        Profile CG + EulerMHD concurrently and print the multi-application
        report. With `--transport socket` the demo re-executes itself and
        splits the job across N OS processes (default 2) over a
        Unix-domain socket mesh; the report is identical either way.

    opmr simulate [--bench BT|CG|FT|LU|SP|EulerMHD|Irregular|Straggler|Bursty]
                  [--class S..D]
                  [--ranks N] [--iters N] [--machine tera100|curie]
                  [--tool none|online|profile|trace|scalasca]
        Run one workload on the discrete-event simulator and print timing,
        overhead-relevant stats and Bi.

    opmr report <trace-dir> [--out DIR]
        Post-mortem analysis of a directory of .opmr / .sion traces
        (the classical workflow, same engine as the online path).

    opmr launch [--hostfile FILE] [--procs N] [--endpoint unix:PATH|tcp:ADDR]
                [--placement i,j,...] [--sever-after N] [--restart-once]
                [-- demo]
        mpirun-style multi-process launch of the demo session: spawn one
        worker per process (locally, or via ssh for non-local hostfile
        entries), supervise them over stdout heartbeats, classify exits,
        tear the job down on the first failure, and print a JSON summary
        with the aggregated obs counters. `--sever-after N` severs every
        socket link once after N data frames to exercise the reconnect
        path; `--placement` pins application partitions to processes.

    opmr stream-table
        Print the Figure-14 stream-throughput table on the Tera 100 model."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => demo(&args[1..]),
        Some("launch") => launch_cmd(&args[1..]),
        Some("__launch-worker") => launch_worker(&args[1..]),
        Some("simulate") => simulate_cmd(&args[1..]),
        Some("report") => report_cmd(&args[1..]),
        Some("stream-table") => stream_table(),
        _ => usage(),
    }
}

fn demo(args: &[String]) -> ExitCode {
    let socket = flag(args, "--transport") == Some("socket");
    let procs: usize = flag(args, "--procs")
        .and_then(|p| p.parse().ok())
        .unwrap_or(2);
    let result = if socket {
        try_demo_socket(procs)
    } else {
        try_demo()
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Every process of a socket-transport demo must build the identical
/// session; both the parent and the re-executed workers call this.
fn demo_session() -> Result<opmr::core::SessionBuilder, Box<dyn std::error::Error>> {
    let m = tera100();
    let cg = opmr::workloads::Benchmark::Cg.build(Class::S, 8, &m, Some(3))?;
    let euler = opmr::workloads::Benchmark::EulerMhd.build(Class::S, 9, &m, Some(4))?;
    Ok(Session::builder()
        .analyzer_ranks(3)
        .waitstate()
        .metrics(1_000_000) // 1 ms windows for the time-resolved series
        .app_workload("cg", cg, LiveOptions::default())
        .app_workload("euler_mhd", euler, LiveOptions::default()))
}

/// The workload catalog, one line per entry (printed by `opmr demo` and
/// pinned by the catalog round-trip test).
fn catalog_listing() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("workload catalog (opmr simulate --bench <name>):\n");
    for b in opmr::workloads::BENCHMARKS {
        let _ = writeln!(
            out,
            "  {:<10} {:>4} nominal iterations at class S",
            b.name(),
            b.nominal_iters(Class::S)
        );
    }
    out
}

fn try_demo() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = demo_session()?.run()?;
    println!("{}", outcome.markdown());
    println!("---");
    print!("{}", catalog_listing());
    eprintln!(
        "(in-process; stable digest {:016x})",
        report::stable_digest(&outcome.report)
    );
    Ok(())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// `opmr launch`: run the demo session as a supervised multi-process
/// job through the `crates/launch` control plane.
fn launch_cmd(args: &[String]) -> ExitCode {
    match try_launch(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_launch(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    // Trailing `-- <session>` selects what the workers run (only the
    // demo session exists today).
    if let Some(sep) = args.iter().position(|a| a == "--") {
        let session: Vec<&str> = args[sep + 1..].iter().map(String::as_str).collect();
        if !(session.is_empty() || session == ["demo"]) {
            return Err(format!("unknown launch session {session:?} (only: demo)").into());
        }
    }
    let hosts = match flag(args, "--hostfile") {
        Some(path) => parse_hostfile(&std::fs::read_to_string(path)?)?,
        None => vec![Host::new("localhost")],
    };
    let procs: usize = flag(args, "--procs")
        .map(str::parse)
        .transpose()?
        .unwrap_or(3);
    if procs < 2 {
        return Err("a multi-process launch needs --procs >= 2".into());
    }
    let placement = flag(args, "--placement")
        .map(|raw| {
            raw.split(',')
                .map(|t| t.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .map_err(|_| "bad --placement (expected comma-separated process indices)")?;
    let sever_after: Option<u64> = flag(args, "--sever-after").map(str::parse).transpose()?;

    // Default endpoint: a per-job Unix socket under the temp dir.
    let scratch;
    let endpoint = match flag(args, "--endpoint") {
        Some(e) => {
            opmr::launch::parse_endpoint(e)?; // validate notation up front
            e.to_string()
        }
        None => {
            scratch = std::env::temp_dir().join(format!("opmr-launch-{}", std::process::id()));
            std::fs::create_dir_all(&scratch)?;
            format!("unix:{}", scratch.join("mesh.sock").display())
        }
    };

    let mut spec = JobSpec::new(procs);
    spec.hosts = hosts;
    spec.restart_once = has_flag(args, "--restart-once");
    let all_local = spec.hosts.iter().all(Host::is_local);
    let local = LocalSpawner;
    let ssh = SshSpawner::default();
    let spawner: &dyn Spawner = if all_local { &local } else { &ssh };

    let exe = std::env::current_exe()?;
    let make_cmd = {
        let endpoint = endpoint.clone();
        let placement = placement.clone();
        move |proc: usize, _host: &Host| {
            let mut env = WorkerEnv::new(proc, procs, endpoint.clone());
            env.placement = placement.clone();
            env.sever_after = sever_after;
            env.connect_timeout = Some(Duration::from_secs(30));
            let mut cmd = WorkerCommand::new(&exe).arg("__launch-worker").arg("demo");
            for (k, v) in env.vars() {
                cmd = cmd.env(k, v);
            }
            cmd
        }
    };

    let report = run_job(&spec, spawner, &make_cmd)?;
    let snap = opmr::obs::registry().snapshot();
    println!("{}", launch_summary_json(&report, procs, &snap));
    if report.success() {
        Ok(ExitCode::SUCCESS)
    } else {
        for f in report.failures() {
            eprintln!("worker p{} on {} failed: {}", f.proc, f.host, f.message);
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Hand-rolled JSON (the workspace carries no serde): job outcome plus
/// the launcher-side `launch_*` counters and the workers' summed
/// `transport_*`/`launch_*` counters.
fn launch_summary_json(
    report: &opmr::launch::JobReport,
    procs: usize,
    snap: &opmr::obs::MetricsSnapshot,
) -> String {
    use std::fmt::Write as _;
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"procs\":{procs},\"attempts\":{},\"success\":{}",
        report.attempts,
        report.success()
    );
    out.push_str(",\"outcomes\":[");
    for (i, o) in report.outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"proc\":{},\"host\":\"{}\",\"clean\":{},\"torn_down\":{},\"message\":\"{}\"}}",
            o.proc,
            esc(&o.host),
            o.kind.is_none(),
            o.torn_down,
            esc(&o.message)
        );
    }
    out.push_str("],\"launch\":{");
    let mut first = true;
    for c in &snap.counters {
        if c.name.starts_with("launch_") {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", esc(&c.name), c.value);
        }
    }
    out.push_str("},\"workers\":{");
    let mut first = true;
    for (name, value) in &report.stats {
        if name.starts_with("transport_") || name.starts_with("launch_") {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", esc(name), value);
        }
    }
    out.push_str("}}");
    out
}

/// Hidden worker half of `opmr launch`: runs one process of the demo
/// session, heartbeating on stdout and dumping obs counters at the end.
fn launch_worker(args: &[String]) -> ExitCode {
    match try_launch_worker(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_launch_worker(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(session) = args.first() {
        if session != "demo" {
            return Err(format!("unknown worker session {session:?}").into());
        }
    }
    let env = WorkerEnv::from_env()?
        .ok_or("not launched: the OPMR_LAUNCH_* environment contract is missing")?;
    let hb = HeartbeatEmitter::start(env.proc_index, Duration::from_millis(250));
    let cfg = env.socket_config()?;
    let builder = demo_session()?;
    let outcome = match env.placement.clone() {
        Some(p) => builder.run_multiproc_placed(cfg, env.proc_index, env.num_procs, p)?,
        None => builder.run_multiproc(cfg, env.proc_index, env.num_procs)?,
    };
    if env.proc_index == 0 {
        // Forwarded by the supervisor as `[p0] stable-digest …`; the CI
        // smoke compares it against the in-process demo's digest.
        println!(
            "stable-digest {:016x}",
            report::stable_digest(&outcome.report)
        );
    }
    drop(hb);
    emit_stats(&mut std::io::stdout().lock())?;
    Ok(())
}

/// Split the demo across OS processes: the analyzer (and the report)
/// stay in process 0; application ranks run in re-executed workers and
/// every event pack crosses the Unix-domain socket mesh.
fn try_demo_socket(procs: usize) -> Result<(), Box<dyn std::error::Error>> {
    use opmr::runtime::{Endpoint, SocketConfig};
    let cfg = |path: std::path::PathBuf| {
        SocketConfig::new(Endpoint::Unix(path)).connect_timeout(std::time::Duration::from_secs(30))
    };

    // Worker half: re-executed by the parent with the endpoint in the
    // environment.
    if let Ok(path) = std::env::var("OPMR_DEMO_SOCK") {
        let proc_index: usize = std::env::var("OPMR_DEMO_PROC")?.parse()?;
        let num_procs: usize = std::env::var("OPMR_DEMO_PROCS")?.parse()?;
        demo_session()?.run_multiproc(cfg(path.into()), proc_index, num_procs)?;
        return Ok(());
    }

    if procs < 2 {
        return Err("--transport socket needs at least 2 processes (--procs)".into());
    }
    let dir = std::env::temp_dir().join(format!("opmr-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("mesh.sock");
    let exe = std::env::current_exe()?;
    let mut children: Vec<(usize, std::process::Child)> = (1..procs)
        .map(|p| {
            std::process::Command::new(&exe)
                .args(["demo", "--transport", "socket"])
                .env("OPMR_DEMO_SOCK", &path)
                .env("OPMR_DEMO_PROC", p.to_string())
                .env("OPMR_DEMO_PROCS", procs.to_string())
                .spawn()
                .map(|c| (p, c))
        })
        .collect::<Result<_, _>>()?;

    // Run the coordinator's half on a thread so a worker that dies
    // during startup surfaces as a typed failure immediately, instead of
    // leaving the parent blocked until the mesh accept budget expires.
    let builder = demo_session()?;
    let coordinator = std::thread::spawn(move || builder.run_multiproc(cfg(path), 0, procs));
    while !coordinator.is_finished() {
        let mut first_failure = None;
        for (p, c) in children.iter_mut() {
            let Some(status) = c.try_wait()? else {
                continue;
            };
            if let Some((kind, what)) = classify_exit(status) {
                first_failure = Some((*p, kind, what));
                break;
            }
        }
        if let Some((p, kind, what)) = first_failure {
            for (_, other) in children.iter_mut() {
                let _ = other.kill();
                let _ = other.wait();
            }
            let _ = std::fs::remove_dir_all(&dir);
            return Err(format!("demo worker p{p} {what} ({kind:?})").into());
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    let outcome = coordinator
        .join()
        .map_err(|_| "demo coordinator thread panicked")??;
    for (p, mut c) in children {
        let status = c.wait()?;
        if let Some((kind, what)) = classify_exit(status) {
            return Err(format!("demo worker p{p} {what} ({kind:?})").into());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("{}", outcome.markdown());
    eprintln!(
        "(socket transport, {procs} OS processes; stable digest {:016x})",
        report::stable_digest(&outcome.report)
    );
    Ok(())
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn simulate_cmd(args: &[String]) -> ExitCode {
    let bench = match by_name(flag(args, "--bench").unwrap_or("SP")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(class) = Class::parse(flag(args, "--class").unwrap_or("C")) else {
        eprintln!("error: bad --class (use S, W, A, B, C or D)");
        return ExitCode::from(2);
    };
    let ranks: usize = flag(args, "--ranks")
        .unwrap_or("256")
        .parse()
        .unwrap_or(256);
    let iters: u32 = flag(args, "--iters").unwrap_or("10").parse().unwrap_or(10);
    let machine: Machine = match flag(args, "--machine").unwrap_or("tera100") {
        "curie" => curie(),
        _ => tera100(),
    };
    let tool = match flag(args, "--tool").unwrap_or("online") {
        "none" => ToolModel::None,
        "profile" => ToolModel::scorep_profile(),
        "trace" => ToolModel::scorep_trace(),
        "scalasca" => ToolModel::scalasca(),
        _ => ToolModel::online_coupling(1.0),
    };

    let w = match bench.build(class, ranks, &machine, Some(iters)) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (reference, run) = match simulate(&w, &machine, &ToolModel::None)
        .and_then(|r| simulate(&w, &machine, &tool).map(|t| (r, t)))
    {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{}.{class} on {ranks} ranks ({}), {iters} simulated iterations",
        bench.name(),
        machine.name
    );
    println!("  reference      : {:.4} s", reference.elapsed_s);
    println!(
        "  instrumented   : {:.4} s  ({:+.2}% overhead)",
        run.elapsed_s,
        (run.elapsed_s - reference.elapsed_s) / reference.elapsed_s * 100.0
    );
    println!(
        "  events         : {} ({} comm ops)",
        run.stats.events, run.stats.comm_ops
    );
    println!(
        "  measurement    : {:.2} MB, Bi = {:.2} MB/s",
        run.stats.event_bytes as f64 / 1e6,
        run.bi_bps() / 1e6
    );
    println!(
        "  stall / fs     : {:.3} s / {:.3} s (aggregate across ranks)",
        run.stats.stall_ns / 1e9,
        run.stats.fs_ns / 1e9
    );
    ExitCode::SUCCESS
}

fn report_cmd(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: report needs a trace directory");
        return ExitCode::from(2);
    };
    let dir = std::path::PathBuf::from(dir);
    let cfg = opmr::analysis::EngineConfig::default();
    let has_sion = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .any(|e| e.path().extension().is_some_and(|x| x == "sion"))
        })
        .unwrap_or(false);
    let result = if has_sion {
        analyze_sion_dir(&dir, cfg)
    } else {
        analyze_trace_dir(&dir, cfg)
    };
    match result {
        Ok(multi) => {
            println!("{}", report::to_markdown(&multi));
            if let Some(out) = flag(args, "--out") {
                match report::write_artifacts(&multi, std::path::Path::new(out)) {
                    Ok(paths) => eprintln!("wrote {} artifacts under {out}", paths.len()),
                    Err(e) => {
                        eprintln!("error writing artifacts: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stream_table() -> ExitCode {
    let m = tera100();
    println!("VMPI stream throughput (GB/s), Tera 100 model — Figure 14");
    print!("{:>8}", "writers");
    let ratios = [1.0, 2.0, 5.0, 10.0, 25.0, 70.0];
    for r in ratios {
        print!("{:>8}", format!("1:{r:.0}"));
    }
    println!();
    for writers in [64usize, 256, 1024, 2560] {
        print!("{writers:>8}");
        for ratio in ratios {
            let p = stream_model::evaluate(&m, writers, ratio, 1 << 30);
            print!("{:>8.1}", p.throughput_bps / 1e9);
        }
        println!();
    }
    println!(
        "\nfile-system share @2560 cores: {:.1} GB/s; crossover ≈ 1:{:.0}",
        m.fs_share_bps(2560) / 1e9,
        stream_model::crossover_ratio(&m, 2560)
    );
    ExitCode::SUCCESS
}
