//! # opmr — Online Performance Measurement Reduction
//!
//! Root façade crate of the reproduction of *Besnard, Pérache, Jalby —
//! "Event Streaming for Online Performance Measurements Reduction"
//! (ICPP 2013)*. Re-exports every subsystem:
//!
//! * [`runtime`] — in-process MPI-like runtime (ranks as threads, MPMD).
//! * [`vmpi`] — virtualization, partition mapping, VMPI streams.
//! * [`events`] — performance event model and codec.
//! * [`instrument`] — PMPI-equivalent interception and event recording.
//! * [`blackboard`] — the parallel multi-level blackboard engine.
//! * [`analysis`] — profiling knowledge sources and report generation.
//! * [`metrics`] — time-resolved standard metrics: windowed per-rank
//!   series (load balance, communication efficiency, serialization /
//!   transfer, waitstate fraction) folded online from the event stream.
//! * [`netsim`] — discrete-event simulator for paper-scale experiments.
//! * [`workloads`] — NAS-MPI and EulerMHD communication-kernel generators.
//! * [`reduce`] — TBON reduction overlay (tree topology, windowed
//!   in-network aggregation between instrumented partitions and analyzer).
//! * [`serve`] — live report serving: versioned snapshot store, delta
//!   encoding and the query/subscription protocol over VMPI streams.
//! * [`core`] — the `Session` façade tying everything together.

pub use opmr_analysis as analysis;
pub use opmr_blackboard as blackboard;
pub use opmr_core as core;
pub use opmr_events as events;
pub use opmr_instrument as instrument;
pub use opmr_launch as launch;
pub use opmr_metrics as metrics;
pub use opmr_netsim as netsim;
pub use opmr_obs as obs;
pub use opmr_reduce as reduce;
pub use opmr_runtime as runtime;
pub use opmr_serve as serve;
pub use opmr_vmpi as vmpi;
pub use opmr_workloads as workloads;

pub use opmr_core::session::{Coupling, Session, SessionBuilder};
