#!/bin/bash
# Final deliverable check: counts, artifacts, headline numbers.
set -e
cd /root/repo
echo "=== LoC ==="
wc -l $(find crates src tests examples -name "*.rs") | tail -1
echo "=== tests ==="
grep -E "test result:" test_output.txt | awk '{ok+=$4; fail+=$6} END {print "passed:", ok, "failed:", fail}'
echo "=== benches ==="
grep -c "time:" bench_output.txt
echo "=== artifacts ==="
find out -type f | wc -l
