//! Regression tests for the paper's quantitative *shapes*: who wins, by
//! roughly what factor, where crossovers fall. These pin the simulated
//! figures so calibration drift is caught.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::netsim::stream_model::{crossover_ratio, evaluate, stream_throughput_bps};
use opmr::netsim::{curie, simulate, tera100, ToolModel};
use opmr::workloads::{Benchmark, Class};

/// Simulated iterations per test: enough for steady state, scaled down in
/// debug builds where the DES runs ~5× slower.
fn test_iters() -> u32 {
    if cfg!(debug_assertions) {
        2
    } else {
        6
    }
}

// ---------------------------------------------------------------------
// Figure 14 shapes.
// ---------------------------------------------------------------------

#[test]
fn fig14_peak_anchor() {
    // 2560 writers + 2560 readers ⇒ ~98.5 GB/s on Tera 100.
    let m = tera100();
    let p = evaluate(&m, 2560, 1.0, 1 << 30);
    assert!(
        (p.throughput_bps / 1e9 - 98.5).abs() < 2.0,
        "{}",
        p.throughput_bps
    );
}

#[test]
fn fig14_throughput_monotone_in_both_axes() {
    let m = tera100();
    for ratio in [1.0, 4.0, 16.0] {
        let mut last = 0.0;
        for writers in [64, 256, 1024, 2560] {
            let t = evaluate(&m, writers, ratio, 1 << 30).throughput_bps;
            assert!(t >= last, "writers axis at ratio {ratio}");
            last = t;
        }
    }
    for writers in [256, 2560] {
        let mut last = f64::INFINITY;
        for ratio in [1.0, 2.0, 5.0, 10.0, 30.0, 70.0] {
            let t = evaluate(&m, writers, ratio, 1 << 30).throughput_bps;
            assert!(t <= last, "ratio axis at {writers} writers");
            last = t;
        }
    }
}

#[test]
fn fig14_crossover_near_25() {
    let m = tera100();
    let x = crossover_ratio(&m, 2560);
    assert!((15.0..40.0).contains(&x), "crossover {x}");
}

#[test]
fn fig14_best_case_beats_fs_by_an_order_of_magnitude() {
    // "98.5 GB/s … compared with … 9.1 GB/s": ~10× at ratio 1:1.
    let m = tera100();
    let stream = stream_throughput_bps(&m, 2560, 2560);
    let fs = m.fs_share_bps(2560);
    let factor = stream / fs;
    assert!((8.0..14.0).contains(&factor), "stream/fs factor {factor}");
}

// ---------------------------------------------------------------------
// Figure 15 shapes.
// ---------------------------------------------------------------------

fn overhead_pct(bench: Benchmark, class: Class, ranks: usize, tool: &ToolModel) -> f64 {
    let m = tera100();
    let w = bench
        .build(class, ranks, &m, Some(test_iters()))
        .expect("workload");
    let t0 = simulate(&w, &m, &ToolModel::None).unwrap().elapsed_s;
    let t1 = simulate(&w, &m, tool).unwrap().elapsed_s;
    (t1 - t0) / t0 * 100.0
}

#[test]
fn fig15_overheads_bounded_like_paper() {
    // "All overheads are lower than 25%."
    let online = ToolModel::online_coupling(1.0);
    for (bench, class) in [
        (Benchmark::Sp, Class::C),
        (Benchmark::Sp, Class::D),
        (Benchmark::Bt, Class::C),
        (Benchmark::Lu, Class::C),
        (Benchmark::Cg, Class::C),
    ] {
        let ranks = if bench == Benchmark::Cg { 256 } else { 225 };
        let o = overhead_pct(bench, class, ranks, &online);
        assert!(
            (-2.0..30.0).contains(&o),
            "{}.{class} overhead {o}%",
            bench.name()
        );
    }
}

#[test]
fn fig15_class_c_overhead_exceeds_class_d() {
    // The Bi correlation: smaller problems, higher event rate, more
    // overhead.
    let online = ToolModel::online_coupling(1.0);
    let c = overhead_pct(Benchmark::Sp, Class::C, 900, &online);
    let d = overhead_pct(Benchmark::Sp, Class::D, 900, &online);
    assert!(c > d, "SP.C {c}% must exceed SP.D {d}%");
}

#[test]
fn fig15_euler_mhd_is_cheapest() {
    let online = ToolModel::online_coupling(1.0);
    let euler = overhead_pct(Benchmark::EulerMhd, Class::C, 256, &online);
    let sp = overhead_pct(Benchmark::Sp, Class::C, 256, &online);
    assert!(
        euler < sp,
        "compute-bound EulerMHD ({euler}%) under SP.C ({sp}%)"
    );
    assert!(euler < 5.0, "EulerMHD overhead {euler}% should be tiny");
}

#[test]
fn bi_anchors_within_order_of_magnitude() {
    let m = tera100();
    let sim = |class| {
        let w = Benchmark::Sp
            .build(class, 900, &m, Some(test_iters()))
            .unwrap();
        simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap()
    };
    let bi_c = sim(Class::C).bi_bps();
    let bi_d = sim(Class::D).bi_bps();
    // Paper: 2.37 GB/s and 334.99 MB/s.
    assert!((0.5e9..10.0e9).contains(&bi_c), "Bi(SP.C)={bi_c}");
    assert!((50.0e6..1.5e9).contains(&bi_d), "Bi(SP.D)={bi_d}");
    assert!(bi_c / bi_d > 3.0, "C/D ratio {}", bi_c / bi_d);
}

// ---------------------------------------------------------------------
// Figure 16 shapes.
// ---------------------------------------------------------------------

fn fig16_overhead(tool: &ToolModel, ranks: usize) -> f64 {
    let m = curie();
    let w = Benchmark::Sp
        .build(Class::D, ranks, &m, Some(test_iters()))
        .unwrap();
    let t0 = simulate(&w, &m, &ToolModel::None).unwrap().elapsed_s;
    let t1 = simulate(&w, &m, tool).unwrap().elapsed_s;
    (t1 - t0) / t0 * 100.0
}

#[test]
fn fig16_online_beats_file_trace_at_scale() {
    // "our online instrumentation has an overhead lower than file based
    // traces despite manipulating larger volumes of data".
    for ranks in [1024usize, 4096] {
        let online = fig16_overhead(&ToolModel::online_coupling(1.0), ranks);
        let trace = fig16_overhead(&ToolModel::scorep_trace(), ranks);
        assert!(
            online < trace,
            "@{ranks}: online {online}% must beat trace {trace}%"
        );
    }
}

#[test]
fn fig16_trace_overhead_grows_with_scale() {
    let small = fig16_overhead(&ToolModel::scorep_trace(), 64);
    let large = fig16_overhead(&ToolModel::scorep_trace(), 4096);
    assert!(
        large > small,
        "FS contention must grow: {small}% → {large}%"
    );
}

#[test]
fn fig16_reference_is_zero_and_tools_nonnegative() {
    let r = fig16_overhead(&ToolModel::None, 256);
    assert!(r.abs() < 1e-9);
    for tool in [
        ToolModel::scalasca(),
        ToolModel::scorep_profile(),
        ToolModel::scorep_trace(),
        ToolModel::online_coupling(1.0),
    ] {
        assert!(fig16_overhead(&tool, 256) >= 0.0);
    }
}

#[test]
fn fig16_volume_growth_matches_paper_band() {
    // Online volumes: 923.93 MB @64 → 333.22 GB @4096 (nominal 500 iters).
    let m = curie();
    let iters = test_iters();
    let vol = |ranks: usize| {
        let w = Benchmark::Sp
            .build(Class::D, ranks, &m, Some(iters))
            .unwrap();
        let r = simulate(&w, &m, &ToolModel::online_coupling(1.0)).unwrap();
        r.stats.event_bytes as f64 * (500.0 / iters as f64)
    };
    let v64 = vol(64);
    let v4096 = vol(4096);
    // Same order of magnitude as the paper, and strongly super-linear
    // growth (per-rank event counts grow with √P pipeline depth).
    assert!((0.1e9..10e9).contains(&v64), "{v64}");
    assert!((30e9..3e12).contains(&v4096), "{v4096}");
    assert!(v4096 / v64 > 64.0, "growth factor {}", v4096 / v64);
}

// ---------------------------------------------------------------------
// Figures 17/18 shapes.
// ---------------------------------------------------------------------

#[test]
fn fig18_lu_density_shows_neighbour_gradient() {
    let m = tera100();
    let w = Benchmark::Lu.build(Class::D, 1024, &m, Some(1)).unwrap();
    // Corner rank 0 sends fewer messages than interior rank 33 (32×32 grid).
    let corner: usize = w.programs[0]
        .body
        .iter()
        .filter(|o| matches!(o, opmr::netsim::Op::Send { .. }))
        .count();
    let interior: usize = w.programs[33]
        .body
        .iter()
        .filter(|o| matches!(o, opmr::netsim::Op::Send { .. }))
        .count();
    assert!(corner < interior);
    assert_eq!(interior, 2 * corner, "corner has half the neighbours");
}

#[test]
fn fig18_bt_8281_simulates_with_symmetry() {
    // BT.D on 8281 ranks: the DES must complete and produce the size
    // symmetry the paper observes (small cv on p2p bytes).
    let m = tera100();
    let w = Benchmark::Bt.build(Class::D, 8281, &m, Some(1)).unwrap();
    let r = simulate(&w, &m, &ToolModel::None).unwrap();
    assert_eq!(r.per_rank_send_bytes.len(), 8281);
    let max = *r.per_rank_send_bytes.iter().max().unwrap() as f64;
    let min = *r.per_rank_send_bytes.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    // Interior/edge differences stay bounded (paper: 660.93 vs 664.87 MB,
    // i.e. a small spread; our open-boundary grid is coarser: interior
    // ranks send through 6 sweeps, edge/corner ranks 2-3 — within 4×).
    assert!(max / min <= 4.0, "p2p size spread {max}/{min}");
}
