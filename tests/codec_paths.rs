//! Acceptance for the compressed event hot path: every combination of
//! pack encoding (fixed / delta-varint) and block compression (none /
//! LZ4-class), over every transport shape, must produce a **byte
//! identical** analysis report — pinned by the timing-scrubbed
//! [`stable_digest`]. The chaos flavor additionally severs every busy
//! socket link mid-stream while envelopes travel compressed, proving
//! the retransmit path resends bit-identical compressed frames.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;
use common::fresh_unix_endpoint;

use opmr::analysis::report::stable_digest;
use opmr::core::{Coupling, Session, SessionBuilder};
use opmr::events::{Compression, PackEncoding};
use opmr::runtime::{LinkFault, SocketConfig, Src, TagSel};
use std::time::Duration;

/// The seeded workload every run replays: a 4-rank ring with collectives
/// generating a deterministic event stream.
fn ring_session() -> SessionBuilder {
    Session::builder().analyzer_ranks(2).app("ring", 4, |imp| {
        let world = imp.comm_world();
        let (r, n) = (imp.rank(), imp.size());
        for round in 0..12 {
            let req = imp
                .isend(&world, (r + 1) % n, round, vec![r as u8; 1024])
                .expect("isend");
            imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                .expect("recv");
            imp.wait(req).expect("wait");
            if round % 4 == 0 {
                imp.barrier(&world).expect("barrier");
            }
        }
        imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
    })
}

/// Plain fixed-layout, delta-varint, and delta + LZ4 runs of the same
/// seeded workload: one digest. The encoding is a wire concern; if a
/// single event survives differently the digest moves.
#[test]
fn report_digest_is_identical_across_encodings_and_compression() {
    let plain = ring_session().run().expect("fixed/uncompressed session");
    let want = stable_digest(&plain.report);
    let ring_events = plain
        .report
        .apps
        .iter()
        .find(|a| a.name == "ring")
        .expect("ring chapter")
        .events;
    assert!(ring_events > 0, "workload must generate events");

    let delta = ring_session()
        .pack_encoding(PackEncoding::Delta)
        .run()
        .expect("delta session");
    assert_eq!(
        stable_digest(&delta.report),
        want,
        "delta-varint packs must decode to the identical analysis"
    );

    let compressed = ring_session()
        .pack_encoding(PackEncoding::Delta)
        .compression(Compression::Lz4)
        .run()
        .expect("delta+lz4 session");
    assert_eq!(
        stable_digest(&compressed.report),
        want,
        "block compression must be invisible to the analysis"
    );
}

/// The compressed hot path threads through the TBON overlay too: a
/// pass-through reduction tree carrying delta-encoded, LZ4-compressed
/// blocks delivers the byte-identical analysis of the plain direct run.
#[test]
fn compressed_tbon_passthrough_is_byte_identical() {
    let plain = ring_session().run().expect("direct session");
    let want = stable_digest(&plain.report);
    let tree = ring_session()
        .coupling(Coupling::Tbon { fanout: 2 })
        .pack_encoding(PackEncoding::Delta)
        .compression(Compression::Lz4)
        .run()
        .expect("compressed tbon session");
    assert_eq!(
        stable_digest(&tree.report),
        want,
        "the reduce tree must forward compressed delta packs losslessly"
    );
}

/// The compressed hot path actually moves fewer bytes: the stream layer's
/// `bytes_on_wire` counter grows by less than `bytes_logical` during a
/// compressed run (both grow equally when compression is off).
#[test]
fn compressed_stream_path_saves_wire_bytes() {
    let counter = |name: &str| opmr::obs::registry().counter(name).get();
    let logical0 = counter("vmpi_stream_bytes_logical_total");
    let wire0 = counter("vmpi_stream_bytes_on_wire_total");
    ring_session()
        .pack_encoding(PackEncoding::Delta)
        .compression(Compression::Lz4)
        .run()
        .expect("compressed session");
    let logical = counter("vmpi_stream_bytes_logical_total") - logical0;
    let wire = counter("vmpi_stream_bytes_on_wire_total") - wire0;
    assert!(logical > 0, "the session must stream event blocks");
    assert!(
        wire < logical,
        "lz4 must shave wire bytes (logical {logical}, wire {wire})"
    );
}

/// Chaos replay over the *compressed* socket path: every busy link is
/// severed once mid-stream while envelopes travel LZ4-compressed and
/// packs are delta-encoded. The reconnect layer retransmits the exact
/// compressed bytes, so the report digest cannot move a bit from the
/// plain in-process run.
#[test]
fn chaos_replay_over_compressed_socket_path_is_byte_identical() {
    let direct = ring_session().run().expect("in-process session");
    let want = stable_digest(&direct.report);

    const PROCS: usize = 2;
    let endpoint = fresh_unix_endpoint("codec-chaos");
    let cfg = |ep| {
        SocketConfig::new(ep)
            .connect_timeout(Duration::from_secs(20))
            .compression(Compression::Lz4)
            .link_fault(LinkFault {
                sever_after_frames: 5,
            })
    };
    let compressed_session = || {
        ring_session()
            .pack_encoding(PackEncoding::Delta)
            .compression(Compression::Lz4)
    };
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || compressed_session().run_multiproc(cfg(ep), 1, PROCS))
    };
    let sock = compressed_session()
        .run_multiproc(cfg(endpoint), 0, PROCS)
        .expect("compressed chaos session, process 0");
    worker.join().unwrap().expect("compressed chaos worker");

    assert_eq!(
        stable_digest(&sock.report),
        want,
        "chaos + compression must stay byte-identical to the plain run"
    );
}
