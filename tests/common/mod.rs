//! Helpers shared by the backend-parameterized integration suites
//! (`transport_conformance`, `chaos`, `poison`, `socket_negative`).
//!
//! The central piece is [`run_socket_threads`]: it runs one job
//! description on the socket backend with every "process" hosted as a
//! thread of the calling test process. Each thread executes a full
//! `Launcher::run_multiproc` — bind/dial/handshake, framed envelopes,
//! reader threads, teardown — over a private Unix-domain mesh, exactly
//! what N separate OS processes would do, while keeping the test's
//! `Arc<Mutex<_>>` observation collectors addressable.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use opmr::runtime::{
    Endpoint, Launcher, MultiprocError, MultiprocTopology, PartitionAssign, RankFailure,
    SocketConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static JOB_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fresh Unix-domain endpoint in a private temp directory.
pub fn fresh_unix_endpoint(tag: &str) -> Endpoint {
    let dir = std::env::temp_dir().join(format!(
        "opmr-sock-{}-{}-{}",
        std::process::id(),
        tag,
        JOB_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test socket dir");
    Endpoint::Unix(dir.join("mesh.sock"))
}

/// Runs one job on the socket backend with `procs` thread-hosted
/// processes (round-robin partition assignment) and merges the
/// per-process rank failures into one list, sorted by world rank — the
/// same shape `Launcher::run` reports. Panics if the mesh itself fails
/// to assemble: conformance scenarios assert rank-level outcomes, and a
/// handshake failure would silently vacuate them.
pub fn run_socket_threads(launcher: Launcher, procs: usize) -> Vec<RankFailure> {
    run_socket_threads_with(launcher, procs, |_, cfg| cfg)
}

/// [`run_socket_threads`] with a per-process [`SocketConfig`] customizer
/// (`(proc_index, base_config) -> config`) — the hook the codec
/// negotiation scenarios use to give different processes different
/// compression advertisements.
pub fn run_socket_threads_with(
    launcher: Launcher,
    procs: usize,
    customize: impl Fn(usize, SocketConfig) -> SocketConfig,
) -> Vec<RankFailure> {
    let endpoint = fresh_unix_endpoint("job");
    let mut handles = Vec::new();
    for p in 0..procs {
        let l = launcher.clone();
        let cfg = customize(
            p,
            SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20)),
        );
        let topo = MultiprocTopology::new(cfg, p, procs).assign(PartitionAssign::RoundRobin);
        handles.push(
            std::thread::Builder::new()
                .name(format!("sock-proc{p}"))
                .spawn(move || l.run_multiproc(topo))
                .expect("spawn socket proc thread"),
        );
    }
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("socket proc thread panicked") {
            Ok(()) => {}
            Err(MultiprocError::Launch(e)) => failures.extend(e.failures),
            Err(MultiprocError::Socket(e)) => panic!("socket mesh failed to assemble: {e}"),
        }
    }
    failures.sort_by_key(|f| f.world_rank);
    failures
}
