//! Chaos tests: seeded transport-fault injection over the two canonical
//! topologies (the quickstart instrumented session and a raw
//! writer→reader stream pipeline).
//!
//! Two properties are asserted for every fault plan:
//!
//! 1. **Determinism** — the same seed produces byte-identical per-writer
//!    delivery and the same analysis report; and because the recovery
//!    layer is transparent, both equal the fault-free run.
//! 2. **Liveness** — every injected fault is either recovered or surfaced
//!    as a typed error ([`VmpiError::Timeout`], [`VmpiError::PeerLost`]);
//!    nothing deadlocks. Every blocking read in this file carries a
//!    `read_timeout`, so a liveness bug fails the test instead of hanging
//!    the suite.
//!
//! Fault plans are restricted to the stream data tags
//! ([`opmr::vmpi::stream::data_tag_range`]): handshake protocols (the
//! partition registry, the map pivot exchange) have no retry path by
//! design, exactly like MPI implementations keep their own control
//! traffic on a reliable channel.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;

use opmr::core::{Coupling, Session};
use opmr::events::EventKind;
use opmr::reduce::{run_node, NodeConfig, ReduceStats, Tree};
use opmr::runtime::{FaultPlan, Launcher, Src, TagSel};
use opmr::vmpi::map::map_partitions_directed;
use opmr::vmpi::stream::data_tag_range;
use opmr::vmpi::{Balance, Map, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const WRITERS: usize = 3;
const BLOCK: usize = 64; // > fault-layer control exemption (32 bytes)
const BLOCKS_PER_WRITER: usize = 200;

/// The six seeded plans of the acceptance checklist: drop, duplicate,
/// delay, reorder, a slow rank, and a mixed storm. (Writer-crash has its
/// own harness below because it is *not* transparent.)
fn recovery_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan::seeded(101)
                .with_drop(0.15)
                .with_only_tags(data_tag_range()),
        ),
        (
            "duplicate",
            FaultPlan::seeded(202)
                .with_dup(0.25)
                .with_only_tags(data_tag_range()),
        ),
        (
            "delay",
            FaultPlan::seeded(303)
                .with_delay(0.20, Duration::from_micros(200))
                .with_only_tags(data_tag_range()),
        ),
        (
            "reorder",
            FaultPlan::seeded(404)
                .with_reorder(0.25)
                .with_only_tags(data_tag_range()),
        ),
        (
            "slow-rank",
            FaultPlan::seeded(505)
                .with_slow_rank(0, Duration::from_micros(300))
                .with_only_tags(data_tag_range()),
        ),
        (
            "mixed-storm",
            FaultPlan::seeded(606)
                .with_drop(0.10)
                .with_dup(0.10)
                .with_reorder(0.10)
                .with_delay(0.10, Duration::from_micros(50))
                .with_only_tags(data_tag_range()),
        ),
    ]
}

/// FNV-1a over a byte stream: cheap, order-sensitive digest.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-writer delivery observation: order-sensitive byte digest, the block
/// size sequence, and total fault-recovery work observed at both ends.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Delivery {
    digests: HashMap<usize, u64>,
    block_sizes: HashMap<usize, Vec<usize>>,
    totals: HashMap<usize, u64>,
}

/// Which transport hosts a pipeline run.
#[derive(Clone, Copy, Debug)]
enum Backend {
    InProc,
    /// Two thread-hosted processes over a Unix-domain mesh (writers and
    /// reader land in different processes under round-robin assignment),
    /// via the shared harness in `tests/common`.
    Socket,
}

/// Stream pipeline topology: `WRITERS` ranks each push a deterministic
/// byte pattern to one reader; returns what the reader observed plus
/// (writer retransmits, reader duplicate-drops) as fault evidence.
fn run_pipeline(plan: Option<FaultPlan>) -> (Delivery, u64, u64) {
    run_pipeline_on(Backend::InProc, plan)
}

fn run_pipeline_on(backend: Backend, plan: Option<FaultPlan>) -> (Delivery, u64, u64) {
    let seen = Arc::new(Mutex::new(Delivery::default()));
    let seen2 = Arc::clone(&seen);
    let rexmit = Arc::new(Mutex::new(0u64));
    let rexmit2 = Arc::clone(&rexmit);
    let dups = Arc::new(Mutex::new(0u64));
    let dups2 = Arc::clone(&dups);

    let mut launcher = Launcher::new();
    if let Some(p) = plan {
        launcher = launcher.fault_plan(p);
    }
    let launcher = launcher
        .partition("w", WRITERS, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_retries(16, Duration::from_micros(100));
            let mut st = WriteStream::open_to(&v, vec![WRITERS], cfg, 1).unwrap();
            let me = v.rank() as u8;
            for i in 0..BLOCKS_PER_WRITER {
                // Rank-keyed, position-keyed pattern so any reordering or
                // corruption shifts the order-sensitive digest.
                let block: Vec<u8> = (0..BLOCK)
                    .map(|j| me ^ (i as u8).wrapping_add(j as u8))
                    .collect();
                st.write(&block).unwrap();
            }
            *rexmit2.lock().unwrap() += st.retransmits();
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let mut st = ReadStream::open_from(&v, (0..WRITERS).collect(), cfg, 1).unwrap();
            let mut out = Delivery::default();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        let d = out.digests.entry(b.source).or_insert(0);
                        *d = fnv1a(*d, &b.data);
                        out.block_sizes
                            .entry(b.source)
                            .or_default()
                            .push(b.data.len());
                        *out.totals.entry(b.source).or_insert(0) += b.data.len() as u64;
                    }
                    Ok(None) => break,
                    Err(e) => panic!("chaos reader must never fail here: {e}"),
                }
            }
            *dups2.lock().unwrap() = st.dups_dropped();
            *seen2.lock().unwrap() = out;
        });
    match backend {
        Backend::InProc => launcher.run().unwrap(),
        Backend::Socket => {
            let failures = common::run_socket_threads(launcher, 2);
            assert!(
                failures.is_empty(),
                "socket pipeline ranks failed: {failures:?}"
            );
        }
    }

    let delivery = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
    let r = *rexmit.lock().unwrap();
    let d = *dups.lock().unwrap();
    (delivery, r, d)
}

#[test]
fn pipeline_recovery_is_transparent_and_deterministic_under_every_plan() {
    let (clean, r0, d0) = run_pipeline(None);
    assert_eq!(r0, 0, "fault-free run retransmits nothing");
    assert_eq!(d0, 0, "fault-free run sees no duplicates");
    assert_eq!(clean.totals.len(), WRITERS);
    for w in 0..WRITERS {
        assert_eq!(clean.totals[&w], (BLOCK * BLOCKS_PER_WRITER) as u64);
    }

    for (name, plan) in recovery_plans() {
        let (a, ra, da) = run_pipeline(Some(plan.clone()));
        let (b, rb, db) = run_pipeline(Some(plan));
        // Same seed ⇒ identical delivery AND identical recovery work.
        assert_eq!(a, b, "plan {name}: same seed must replay identically");
        assert_eq!((ra, da), (rb, db), "plan {name}: fault schedule differs");
        // Transparent recovery ⇒ equal to the fault-free run, byte order
        // and block boundaries included.
        assert_eq!(a, clean, "plan {name}: recovery must be transparent");
    }
}

#[test]
fn injected_faults_actually_fire() {
    // The transparency test would pass vacuously if the plans never hit;
    // prove the drop plan forces retransmissions and the duplicate plan
    // exercises the reader's dedup path.
    let (_, retransmits, _) = run_pipeline(Some(
        FaultPlan::seeded(101)
            .with_drop(0.15)
            .with_only_tags(data_tag_range()),
    ));
    assert!(
        retransmits > 0,
        "15% drop over {} blocks must force resends",
        WRITERS * BLOCKS_PER_WRITER
    );
    let (_, _, dups) = run_pipeline(Some(
        FaultPlan::seeded(202)
            .with_dup(0.25)
            .with_only_tags(data_tag_range()),
    ));
    assert!(dups > 0, "25% duplication must reach the dedup path");
}

#[test]
fn socket_pipeline_recovery_is_transparent_for_seeded_plans() {
    // The full six-plan sweep runs on the in-process backend above; over
    // the socket mesh a smoke subset pins the same two properties —
    // determinism and transparency — across a real process boundary, and
    // additionally requires the clean delivery to be byte-identical to
    // the in-process backend's.
    let (clean, r0, d0) = run_pipeline_on(Backend::Socket, None);
    assert_eq!(
        (r0, d0),
        (0, 0),
        "fault-free socket run does no recovery work"
    );
    let (inproc_clean, ..) = run_pipeline(None);
    assert_eq!(clean, inproc_clean, "backends must deliver identical bytes");

    let smoke = ["drop", "duplicate", "mixed-storm"];
    for (name, plan) in recovery_plans()
        .into_iter()
        .filter(|(n, _)| smoke.contains(n))
    {
        let (a, ra, da) = run_pipeline_on(Backend::Socket, Some(plan.clone()));
        let (b, rb, db) = run_pipeline_on(Backend::Socket, Some(plan));
        assert_eq!(a, b, "plan {name}: same seed must replay over sockets");
        assert_eq!((ra, da), (rb, db), "plan {name}: socket schedule differs");
        assert_eq!(a, clean, "plan {name}: socket recovery must be transparent");
    }
}

/// Per-kind profile row: (kind, hits, bytes).
type ProfileRow = (EventKind, u64, u64);
/// Topology edge row: ((src, dst), hits, bytes).
type EdgeRow = ((u32, u32), u64, u64);

/// Quickstart topology: the instrumented ring application streaming into
/// the analyzer partition, as in the README. Returns the
/// timing-independent report facts.
fn run_quickstart(
    plan: Option<FaultPlan>,
    coupling: Coupling,
) -> (u64, Vec<ProfileRow>, Vec<EdgeRow>) {
    const ROUNDS: usize = 30;
    const RANKS: usize = 4;
    let mut builder = Session::builder()
        .analyzer_ranks(2)
        .coupling(coupling)
        .stream_config(StreamConfig::new(1024, 3, Balance::RoundRobin))
        .app("ring", RANKS, move |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for i in 0..ROUNDS {
                let req = imp.isend(&w, (r + 1) % n, i as i32, vec![7u8; 64]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(i as i32))
                    .unwrap();
                imp.wait(req).unwrap();
            }
            imp.barrier(&w).unwrap();
        });
    if let Some(p) = plan {
        builder = builder.fault_plan(p);
    }
    let outcome = builder.run().unwrap();
    report_facts(&outcome)
}

/// Timing-independent facts of the first application's report chapter.
fn report_facts(outcome: &opmr::core::SessionOutcome) -> (u64, Vec<ProfileRow>, Vec<EdgeRow>) {
    let app = &outcome.report.apps[0];
    let mut profile: Vec<ProfileRow> = app
        .profile
        .kinds()
        .iter()
        .map(|&k| {
            let s = app.profile.kind(k).unwrap();
            (k, s.hits, s.bytes)
        })
        .collect();
    profile.sort_by_key(|(k, ..)| *k as u32);
    let edges: Vec<EdgeRow> = app
        .topology
        .sorted_edges()
        .into_iter()
        .map(|((s, d), w)| ((s, d), w.hits, w.bytes))
        .collect();
    (app.events, profile, edges)
}

#[test]
fn quickstart_session_report_is_identical_under_faults() {
    let clean = run_quickstart(None, Coupling::Direct);
    assert!(clean.0 > 0, "ring app must produce events");
    for seed in [11u64, 12] {
        let plan = FaultPlan::seeded(seed)
            .with_drop(0.10)
            .with_dup(0.10)
            .with_reorder(0.10)
            .with_only_tags(data_tag_range());
        let faulted = run_quickstart(Some(plan.clone()), Coupling::Direct);
        assert_eq!(
            faulted, clean,
            "seed {seed}: analysis must not observe transport faults"
        );
        let again = run_quickstart(Some(plan), Coupling::Direct);
        assert_eq!(faulted, again, "seed {seed}: report must be reproducible");
    }
}

#[test]
fn tbon_session_report_is_identical_under_faults() {
    // The reduction overlay adds a second streaming hop (leaf → frontier
    // node → root); transport recovery must stay transparent across both,
    // and the ρ=1 overlay itself must not change the report.
    let tbon = Coupling::Tbon { fanout: 2 };
    let clean = run_quickstart(None, Coupling::Direct);
    let tbon_clean = run_quickstart(None, tbon);
    assert_eq!(tbon_clean, clean, "ρ=1 overlay must be invisible");
    for seed in [21u64, 22] {
        let plan = FaultPlan::seeded(seed)
            .with_drop(0.10)
            .with_dup(0.10)
            .with_reorder(0.10)
            .with_only_tags(data_tag_range());
        let faulted = run_quickstart(Some(plan.clone()), tbon);
        assert_eq!(
            faulted, clean,
            "seed {seed}: overlay must not observe transport faults"
        );
        let again = run_quickstart(Some(plan), tbon);
        assert_eq!(faulted, again, "seed {seed}: overlay report must replay");
    }
}

#[test]
fn writer_crash_surfaces_peer_lost_and_survivors_drain() {
    // World layout: writers are ranks 0..2, reader is rank 2. Writer 1 is
    // killed by the fault layer after its third data send; it observes the
    // exhausted retry budget as VmpiError::Timeout and aborts (the model
    // of a process dying without running its close protocol). The reader
    // must see exactly one typed PeerLost for rank 1, keep the survivor's
    // bytes intact and reach EOF — never hang.
    const CRASH_RANK: usize = 1;
    const AFTER_SENDS: u64 = 3;
    let lost = Arc::new(Mutex::new(Vec::<usize>::new()));
    let lost2 = Arc::clone(&lost);
    let survivor_bytes = Arc::new(Mutex::new(HashMap::<usize, u64>::new()));
    let sb2 = Arc::clone(&survivor_bytes);

    Launcher::new()
        .fault_plan(
            FaultPlan::seeded(707)
                .with_crash(CRASH_RANK, AFTER_SENDS)
                .with_only_tags(data_tag_range()),
        )
        .partition("w", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_retries(2, Duration::from_micros(50));
            let mut st = WriteStream::open_to(&v, vec![2], cfg, 1).unwrap();
            for i in 0..BLOCKS_PER_WRITER {
                match st.write(&[v.rank() as u8; BLOCK]) {
                    Ok(()) => {}
                    Err(VmpiError::Timeout) => {
                        assert_eq!(
                            v.rank(),
                            CRASH_RANK,
                            "only the crashed writer may exhaust retries"
                        );
                        assert!(
                            i as u64 >= AFTER_SENDS,
                            "crash fires after {AFTER_SENDS} sends"
                        );
                        st.abort(); // die without the close protocol
                        return;
                    }
                    Err(e) => panic!("unexpected writer error: {e}"),
                }
            }
            assert_ne!(v.rank(), CRASH_RANK, "crashed writer cannot finish");
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let mut st = ReadStream::open_from(&v, vec![0, 1], cfg, 1).unwrap();
            let mut bytes = HashMap::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        assert!(b.data.iter().all(|&x| x as usize == b.source));
                        *bytes.entry(b.source).or_insert(0u64) += b.data.len() as u64;
                    }
                    Ok(None) => break,
                    Err(VmpiError::PeerLost { rank }) => lost2.lock().unwrap().push(rank),
                    Err(e) => panic!("reader must fail typed, got: {e}"),
                }
            }
            *sb2.lock().unwrap() = bytes;
        })
        .run()
        .unwrap();

    let lost = lost.lock().unwrap();
    assert_eq!(&*lost, &[CRASH_RANK], "exactly one typed loss event");
    let bytes = survivor_bytes.lock().unwrap();
    assert_eq!(
        bytes.get(&0).copied(),
        Some((BLOCK * BLOCKS_PER_WRITER) as u64),
        "survivor stream intact"
    );
    // The crashed writer delivered its pre-crash sends and nothing after.
    let crashed = bytes.get(&CRASH_RANK).copied().unwrap_or(0);
    assert_eq!(
        crashed,
        AFTER_SENDS * BLOCK as u64,
        "pre-crash blocks arrive, post-crash blocks never do"
    );
}

/// One TBON chaos run: 3 leaves stream rank-tagged blocks through a
/// 3-node fanout-2 tree while the fault layer kills one leaf writer.
/// Returns (per-leaf blocks delivered at the root, per-node stats).
fn run_tbon_crash(seed: u64) -> (HashMap<u8, u64>, Vec<(usize, ReduceStats)>) {
    const LEAVES: usize = 3;
    const NODES: usize = 3;
    const CRASH_RANK: usize = 1; // leaves are world ranks 0..3
    const AFTER_SENDS: u64 = 3;
    const PER_LEAF: usize = 40;

    let delivered = Arc::new(Mutex::new(HashMap::<u8, u64>::new()));
    let delivered2 = Arc::clone(&delivered);
    let stats = Arc::new(Mutex::new(Vec::<(usize, ReduceStats)>::new()));
    let stats2 = Arc::clone(&stats);

    Launcher::new()
        .fault_plan(
            FaultPlan::seeded(seed)
                .with_crash(CRASH_RANK, AFTER_SENDS)
                .with_only_tags(data_tag_range()),
        )
        .partition("leaves", LEAVES, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree = Tree::new(2, NODES);
            let tree_pid = v.partition_by_name("Reduce").unwrap().id;
            let mut map = Map::new();
            map_partitions_directed(&v, tree_pid, tree_pid, tree.leaf_policy(), &mut map).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_retries(2, Duration::from_micros(50));
            let mut st = WriteStream::open_map(&v, &map, cfg, 1).unwrap();
            for _ in 0..PER_LEAF {
                match st.write(&[v.rank() as u8; BLOCK]) {
                    Ok(()) => {}
                    Err(VmpiError::Timeout) => {
                        assert_eq!(v.rank(), CRASH_RANK, "only the crashed leaf dies");
                        st.abort();
                        return;
                    }
                    Err(e) => panic!("unexpected leaf error: {e}"),
                }
            }
            assert_ne!(v.rank(), CRASH_RANK, "crashed leaf cannot finish");
            st.close().unwrap();
        })
        .partition("Reduce", NODES, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree = Tree::new(2, v.size());
            let mut map = Map::new();
            map_partitions_directed(&v, 0, v.partition_id(), tree.leaf_policy(), &mut map).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let del = Arc::clone(&delivered2);
            let outcome = run_node(
                &v,
                &tree,
                map.peers(),
                cfg,
                1,
                &NodeConfig::default(),
                |b| {
                    *del.lock().unwrap().entry(b[0]).or_insert(0) += 1;
                },
            )
            .unwrap();
            stats2.lock().unwrap().push((v.rank(), outcome.stats));
        })
        .run()
        .unwrap();

    let delivered = Arc::try_unwrap(delivered).unwrap().into_inner().unwrap();
    let mut stats = Arc::try_unwrap(stats).unwrap().into_inner().unwrap();
    stats.sort_by_key(|e| e.0);
    (delivered, stats)
}

#[test]
fn tbon_overlay_surfaces_writer_crash_as_peer_lost_at_internal_node() {
    // Leaf world rank 1 maps to frontier node 2 (round-robin over
    // frontier [1, 2]); the crash must surface as exactly one typed
    // PeerLost at that node's stats, survivors drain completely, and the
    // whole episode replays identically under the same seed.
    let (delivered, stats) = run_tbon_crash(808);

    assert_eq!(
        delivered.get(&0).copied(),
        Some(40),
        "survivor leaf 0 intact"
    );
    assert_eq!(
        delivered.get(&2).copied(),
        Some(40),
        "survivor leaf 2 intact"
    );
    assert_eq!(
        delivered.get(&1).copied().unwrap_or(0),
        3,
        "pre-crash blocks arrive, post-crash blocks never do"
    );

    assert_eq!(stats.len(), 3, "every tree node reports stats");
    let lost_per_node: Vec<u64> = stats.iter().map(|(_, s)| s.peers_lost).collect();
    assert_eq!(
        lost_per_node,
        vec![0, 0, 1],
        "the loss is typed and localized to the adopting frontier node"
    );
    // The overlay above the broken leaf keeps working: the root forwarded
    // everything that survived.
    let root = stats[0].1;
    assert_eq!(root.blocks_in, 83, "root sees 40 + 40 + 3 surviving blocks");
    assert_eq!(root.blocks_forwarded, root.blocks_in);

    // Crash recovery is part of the deterministic replay contract.
    let again = run_tbon_crash(808);
    assert_eq!(again.0, delivered);
    assert_eq!(again.1, stats);
}

#[test]
fn read_timeout_is_typed_not_a_hang() {
    // A reader whose writer is alive but silent must fail with Timeout
    // once its deadline passes (liveness floor for every chaos run).
    Launcher::new()
        .partition("w", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            // Open lazily so the reader is definitely waiting, then close
            // only after the reader has timed out once.
            let u = v.comm_universe();
            let mut st =
                WriteStream::open_to(&v, vec![1], StreamConfig::new(BLOCK, 3, Balance::None), 2)
                    .unwrap();
            v.mpi().recv(&u, Src::Rank(1), TagSel::Tag(42)).unwrap();
            st.write(&[9u8; BLOCK]).unwrap();
            st.close().unwrap();
        })
        .partition("r", 1, |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_read_timeout(Duration::from_millis(50));
            let mut st = ReadStream::open_from(&v, vec![0], cfg, 2).unwrap();
            assert!(
                matches!(st.read(ReadMode::Blocking), Err(VmpiError::Timeout)),
                "silent writer must surface a typed timeout"
            );
            // Unblock the writer; the stream then drains normally.
            let u = v.comm_universe();
            v.mpi().send(&u, 0, 42, bytes::Bytes::new()).unwrap();
            let mut total = 0;
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => total += b.data.len(),
                    Ok(None) => break,
                    Err(VmpiError::Timeout) => continue, // writer still waking
                    Err(e) => panic!("{e}"),
                }
            }
            assert_eq!(total, BLOCK);
        })
        .run()
        .unwrap();
}

// ---------------------------------------------------------------------
// Socket link chaos: every busy mesh link is severed once mid-stream;
// the reconnect layer (epoch handshake + ack/retransmit resume) must
// make the loss invisible to the session — the report digest stays
// byte-identical to the in-process run — while the obs counters prove
// the faults actually fired and were recovered.
// ---------------------------------------------------------------------

/// A session with two ring apps so that, under the derived 3-process
/// placement (analyzer on p0, apps round-robin on p1/p2), both
/// coordinator links carry enough event traffic to cross the sever
/// threshold mid-stream.
fn link_chaos_session() -> opmr::core::SessionBuilder {
    let ring = |imp: &opmr::instrument::InstrumentedMpi| {
        let world = imp.comm_world();
        let (r, n) = (imp.rank(), imp.size());
        for round in 0..40 {
            let req = imp
                .isend(&world, (r + 1) % n, round, vec![r as u8; 512])
                .expect("isend");
            imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                .expect("recv");
            imp.wait(req).expect("wait");
        }
        imp.barrier(&world).expect("barrier");
    };
    Session::builder()
        .analyzer_ranks(2)
        .app("ring_a", 4, ring)
        .app("ring_b", 4, ring)
}

fn obs_counter(name: &str) -> u64 {
    opmr::obs::registry().snapshot().counter(name).unwrap_or(0)
}

#[test]
fn socket_link_chaos_severs_every_busy_link_and_the_report_is_identical() {
    use opmr::analysis::report::stable_digest;
    use opmr::runtime::{LinkFault, SocketConfig};

    let direct = link_chaos_session().run().expect("in-process session");
    let want = stable_digest(&direct.report);

    let severs0 = obs_counter("transport_socket_chaos_severs_total");
    let reconnects0 = obs_counter("transport_socket_reconnects_total");
    let retrans0 = obs_counter("transport_socket_frames_retransmitted_total");
    let lost0 = obs_counter("transport_socket_peer_disconnects_total");

    const PROCS: usize = 3;
    let endpoint = common::fresh_unix_endpoint("link-chaos");
    let cfg = |ep| {
        SocketConfig::new(ep)
            .connect_timeout(Duration::from_secs(20))
            .link_fault(LinkFault {
                sever_after_frames: 5,
            })
    };
    let workers: Vec<_> = (1..PROCS)
        .map(|p| {
            let ep = endpoint.clone();
            std::thread::spawn(move || link_chaos_session().run_multiproc(cfg(ep), p, PROCS))
        })
        .collect();
    let sock = link_chaos_session()
        .run_multiproc(cfg(endpoint), 0, PROCS)
        .expect("chaos session, process 0");
    for w in workers {
        w.join().unwrap().expect("chaos session, worker");
    }

    // Transparency: the session layer never saw the link drops.
    assert_eq!(
        stable_digest(&sock.report),
        want,
        "reconnect must be exactly-once: the report digest cannot move"
    );
    // Evidence: both busy coordinator links were severed once and both
    // sides of each re-established (the three "processes" are threads
    // sharing this registry, so the deltas cover the whole mesh).
    let severs = obs_counter("transport_socket_chaos_severs_total") - severs0;
    let reconnects = obs_counter("transport_socket_reconnects_total") - reconnects0;
    assert!(severs >= 2, "both app links must sever, saw {severs}");
    assert!(
        reconnects >= severs,
        "every severed link must reconnect (severs {severs}, reconnects {reconnects})"
    );
    assert!(
        obs_counter("transport_socket_frames_retransmitted_total") > retrans0,
        "resuming mid-stream must retransmit the unacked suffix"
    );
    // A recovered link is not a lost peer: no run above returned
    // `PeerLost` (every `run_multiproc` came back `Ok` with the data
    // accounted for in the digest). The disconnect *counter* is allowed
    // a small delta — under scheduler starvation a link severed on its
    // final frames can race mesh teardown, where the redial finds the
    // listener already gone; that post-delivery loss is benign and
    // bounded by the number of severs.
    let lost = obs_counter("transport_socket_peer_disconnects_total") - lost0;
    assert!(
        lost <= severs,
        "independent peer losses beyond teardown races (severs {severs}, lost {lost})"
    );
}

/// What one serving chaos run observed.
struct ServingRun {
    facts: (u64, Vec<ProfileRow>, Vec<EdgeRow>),
    client_resyncs: u64,
    server_resyncs: u64,
}

/// Serving topology under chaos: the ring app streams into two serving
/// analyzer ranks while a deliberately lagging subscriber (tiny snapshot
/// ring, one flow-control credit, slower than the publication cadence)
/// rides the same fault-injected transport — `data_tag_range` covers the
/// serve-plane duplex streams exactly like the instrumentation streams.
/// Convergence is asserted inline: whatever mix of deltas and counted
/// resyncs the subscriber experienced, its folded report must end
/// byte-identical to the server's final stored snapshot.
fn run_serving(plan: Option<FaultPlan>) -> ServingRun {
    use opmr::serve::ServeConfig;
    const ROUNDS: i32 = 120;
    let serve = ServeConfig {
        publish_every_packs: 1,
        ring: 2,
        subscriber_credits: 1,
        ..ServeConfig::default()
    };
    // (resyncs seen, final report bytes, versions in arrival order)
    type ClientView = (u64, Vec<u8>, Vec<u64>);
    let observed: Arc<Mutex<ClientView>> = Arc::new(Mutex::new(Default::default()));
    let sink = Arc::clone(&observed);
    let mut builder = Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring", 4, move |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for i in 0..ROUNDS {
                let req = imp.isend(&w, (r + 1) % n, i, vec![5u8; 256]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(i))
                    .unwrap();
                imp.wait(req).unwrap();
            }
            imp.barrier(&w).unwrap();
        })
        .client("laggard", 1, move |c| {
            c.subscribe().unwrap();
            let mut resyncs = 0u64;
            let mut versions = Vec::new();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                versions.push(u.version);
                if u.resync {
                    resyncs += 1;
                }
                if u.finished {
                    let held = c.report().expect("subscribed client holds a report");
                    *sink.lock().unwrap() = (resyncs, held.encoded.to_vec(), versions);
                    break;
                }
                // Slower than the publication cadence, so the two-deep
                // ring overtakes this subscriber and forces resyncs.
                std::thread::sleep(Duration::from_millis(4));
            }
        });
    if let Some(p) = plan {
        builder = builder.fault_plan(p);
    }
    let outcome = builder.run().unwrap();

    let store = outcome.snapshot_store.as_ref().expect("serving store");
    let (client_resyncs, final_bytes, versions) =
        Arc::try_unwrap(observed).unwrap().into_inner().unwrap();
    // Byte-identical convergence, faults or not.
    assert_eq!(
        final_bytes.as_slice(),
        store.current().unwrap().encoded.as_ref(),
        "subscriber did not converge on the server's final snapshot"
    );
    // Versions stay strictly monotone across delta advances and resync
    // jumps alike.
    assert!(!versions.is_empty());
    for w in versions.windows(2) {
        assert!(w[1] > w[0], "version went backwards: {} -> {}", w[0], w[1]);
    }
    let server_resyncs: u64 = outcome.serve_stats.iter().map(|(_, s)| s.resyncs).sum();
    assert_eq!(
        server_resyncs, client_resyncs,
        "every counted resync must reach the subscriber as a typed flag"
    );
    ServingRun {
        facts: report_facts(&outcome),
        client_resyncs,
        server_resyncs,
    }
}

#[test]
fn serving_session_converges_byte_identically_under_faults() {
    let clean = run_serving(None);
    assert!(clean.facts.0 > 0, "ring app must produce events");

    for seed in [31u64, 32] {
        let plan = FaultPlan::seeded(seed)
            .with_drop(0.10)
            .with_delay(0.10, Duration::from_micros(100))
            .with_reorder(0.10)
            .with_only_tags(data_tag_range());
        let faulted = run_serving(Some(plan.clone()));
        // The analysis result is untouched by transport faults — the
        // serving plane recovered everything it needed.
        assert_eq!(
            faulted.facts, clean.facts,
            "seed {seed}: analysis must not observe serve-plane faults"
        );
        let again = run_serving(Some(plan));
        assert_eq!(
            again.facts, faulted.facts,
            "seed {seed}: report must be reproducible under replay"
        );
    }

    // The laggard protocol actually degraded and recovered at least once
    // somewhere in the sweep (run_serving already asserted the per-run
    // client/server resync agreement).
    assert!(
        clean.client_resyncs > 0 && clean.server_resyncs > 0,
        "laggard subscriber never exercised the resync path"
    );
}
