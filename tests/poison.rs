//! Poison suite: malformed, truncated and hostile inputs driven through
//! the *real* pipeline end to end — raw `send_ctx` traffic on the
//! protocols' reserved tags, garbage stream blocks, corrupt frames and
//! injected rank errors. Every scenario asserts two things:
//!
//! 1. The failure surfaces as a **typed error** (a [`VmpiError`] variant,
//!    a [`FrameError`], a counted `decode_errors`, or a
//!    `FailureKind::Errored` entry in [`LaunchError`]) — never a panic.
//!    Run with `RUST_BACKTRACE=1`: a panic anywhere fails the launcher
//!    with `FailureKind::Panicked`, which every test rejects via
//!    `any_panicked()` or by unwrapping a clean outcome.
//! 2. **Healthy ranks keep progressing**: honest peers in the same run
//!    complete their mapping, drain their streams, or finish their
//!    analysis with correct results despite the hostile participant.
//!
//! The hostile ranks speak the real protocols over the real transport by
//! recomputing the reserved tag spaces (`0x0400_0000 | master_pid << 12 |
//! slave_pid` for the map pivot, `0x0500_0000 | stream_id` for stream
//! data), exactly as a corrupted or malicious peer process would.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;

use opmr::analysis::{AnalysisEngine, EngineConfig};
use opmr::events::{try_frame, Event, EventKind, EventPack, FrameBuf, FrameError};
use opmr::runtime::{Context, FailureKind, Launcher, RankFailure, Src, TagSel};
use opmr::vmpi::map::map_partitions_directed;
use opmr::vmpi::{
    Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The map protocol's reserved tag (see `crates/vmpi/src/map.rs`).
fn map_tag(master_pid: i32, slave_pid: i32) -> i32 {
    0x0400_0000 | (master_pid << 12) | slave_pid
}

/// The stream plane's reserved tag (see `crates/vmpi/src/stream.rs`).
fn stream_tag(stream_id: u16) -> i32 {
    0x0500_0000 | stream_id as i32
}

fn cfg() -> StreamConfig {
    // Every blocking read in this file carries a deadline so a liveness
    // bug fails the test instead of hanging the suite.
    StreamConfig::default().with_read_timeout(Duration::from_secs(10))
}

// ---------------------------------------------------------------------
// Scenario 1: a truncated pivot registration becomes an Errored rank
// failure in LaunchError — the process survives, nothing panics. Runs on
// both backends: over the socket mesh the 3 hostile bytes cross a real
// wire into another "process".
// ---------------------------------------------------------------------
fn truncated_registration_job() -> Launcher {
    Launcher::new()
        .partition("hostile", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let master = v.partition(1).unwrap().clone();
            // 3 bytes instead of one u64 world rank.
            v.mpi()
                .send_ctx(
                    Context::Stream,
                    &v.comm_universe(),
                    master.root_world_rank(),
                    map_tag(1, 0),
                    vec![0u8; 3],
                )
                .unwrap();
        })
        .partition_try("analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi)?;
            let mut map = Map::new();
            map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map)?;
            Ok(())
        })
}

fn assert_truncated_registration_failures(failures: &[RankFailure]) {
    assert!(
        failures.iter().all(|f| f.kind != FailureKind::Panicked),
        "typed error paths must not unwind: {failures:?}"
    );
    assert_eq!(
        failures.len(),
        1,
        "only the decoding rank fails: {failures:?}"
    );
    let f = &failures[0];
    assert_eq!(f.partition, "analyzer");
    assert_eq!(f.kind, FailureKind::Errored);
    assert!(
        f.message.contains("malformed pivot message") && f.message.contains("3 bytes"),
        "failure carries the typed error's rendering: {}",
        f.message
    );
}

#[test]
fn truncated_registration_is_an_errored_rank_not_a_panic() {
    let err = truncated_registration_job()
        .run()
        .expect_err("the analyzer rank must fail");
    assert_truncated_registration_failures(&err.failures);
}

#[test]
fn socket_truncated_registration_is_the_same_typed_failure() {
    let failures = common::run_socket_threads(truncated_registration_job(), 2);
    assert_truncated_registration_failures(&failures);
}

// ---------------------------------------------------------------------
// Scenario 2: an oversized registration (u64 + trailing junk) is the
// same typed error with the observed length, not an over-read.
// ---------------------------------------------------------------------
#[test]
fn oversized_registration_is_malformed_not_an_over_read() {
    let err = Launcher::new()
        .partition("hostile", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let master = v.partition(1).unwrap().clone();
            v.mpi()
                .send_ctx(
                    Context::Stream,
                    &v.comm_universe(),
                    master.root_world_rank(),
                    map_tag(1, 0),
                    vec![0u8; 12],
                )
                .unwrap();
        })
        .partition_try("analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi)?;
            let mut map = Map::new();
            map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map)?;
            Ok(())
        })
        .run()
        .expect_err("the analyzer rank must fail");

    assert!(!err.any_panicked(), "{err}");
    assert_eq!(err.failures[0].kind, FailureKind::Errored);
    assert!(
        err.failures[0].message.contains("got 12 bytes"),
        "length is reported: {}",
        err.failures[0].message
    );
}

// ---------------------------------------------------------------------
// Scenario 3: a hostile *pivot* answers the slave correctly but sends a
// truncated peer list to an honest master rank. The honest master gets
// MalformedPivotReply; the slave's mapping still completes correctly.
// ---------------------------------------------------------------------
#[test]
fn hostile_pivot_truncated_peer_list_is_typed_and_slave_progresses() {
    let master_hit: Arc<Mutex<Option<opmr::vmpi::Result<()>>>> = Arc::new(Mutex::new(None));
    let slave_map: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let m_hit = Arc::clone(&master_hit);
    let s_map = Arc::clone(&slave_map);

    Launcher::new()
        // Partition 0: one honest slave rank (world 0).
        .partition("slave", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 1, 1, MapPolicy::RoundRobin, &mut map).unwrap();
            *s_map.lock().unwrap() = map.peers().to_vec();
        })
        // Partition 1: pivot (world 1, hostile) + honest master (world 2).
        .partition("master", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let me = v.partition(1).unwrap().clone();
            let universe = v.comm_universe();
            let tag = map_tag(1, 0);
            if v.mpi().world_rank() == me.root_world_rank() {
                // Hostile pivot: run the registration exchange by hand,
                // assign the slave to the honest master rank, then hand
                // that master a 5-byte "peer list".
                let (_st, data) = v
                    .mpi()
                    .recv_ctx(Context::Stream, &universe, Src::Any, TagSel::Tag(tag))
                    .unwrap();
                let slave_world = opmr::runtime::pod::from_bytes::<u64>(&data).unwrap() as usize;
                let honest_master = me.first_world_rank + 1;
                v.mpi()
                    .send_ctx(
                        Context::Stream,
                        &universe,
                        slave_world,
                        tag,
                        opmr::runtime::pod::bytes_of(&(honest_master as u64)),
                    )
                    .unwrap();
                v.mpi()
                    .send_ctx(Context::Stream, &universe, honest_master, tag, vec![0u8; 5])
                    .unwrap();
            } else {
                let mut map = Map::new();
                let got = map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map);
                assert!(map.is_empty(), "failed mapping must not grow the map");
                *m_hit.lock().unwrap() = Some(got);
            }
        })
        .run()
        .unwrap();

    let got = master_hit.lock().unwrap().take();
    match got {
        Some(Err(VmpiError::MalformedPivotReply {
            what: "peer list of whole u64s",
            len: 5,
        })) => {}
        other => panic!("expected MalformedPivotReply for the peer list, got {other:?}"),
    }
    assert_eq!(
        *slave_map.lock().unwrap(),
        vec![2],
        "the honest slave's mapping completed despite the hostile pivot"
    );
}

// ---------------------------------------------------------------------
// Scenario 4: a hostile writer injects a garbage block (non-empty, too
// short to hold a frame header) on the stream tag. The reader reports
// one ProtocolViolation, isolates that source, drains the honest writer
// in full and terminates with Ok(None). Runs on both backends: over the
// socket mesh the reader decodes the hostile bytes after a wire hop.
// ---------------------------------------------------------------------
type GarbageOutcome = Arc<Mutex<(usize, Vec<VmpiError>)>>;

fn garbage_stream_block_job() -> (Launcher, GarbageOutcome) {
    const STREAM_ID: u16 = 7;
    const HONEST_BYTES: usize = 768;

    let outcome: GarbageOutcome = Arc::new(Mutex::new((0, Vec::new())));
    let out = Arc::clone(&outcome);

    let launcher = Launcher::new()
        // Partition 0: writers (world 0 honest, world 1 hostile).
        .partition("writers", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 1, 1, MapPolicy::RoundRobin, &mut map).unwrap();
            if v.mpi().world_rank() == 0 {
                let mut st = WriteStream::open_map(&v, &map, cfg(), STREAM_ID).unwrap();
                st.write(&vec![0xAB; HONEST_BYTES]).unwrap();
                st.close().unwrap();
            } else {
                // Raw bytes on the stream tag: 4 bytes can hold neither
                // the 9-byte frame header nor the legacy empty EOF.
                v.mpi()
                    .send_ctx(
                        Context::Stream,
                        &v.comm_universe(),
                        map.peers()[0],
                        stream_tag(STREAM_ID),
                        vec![0u8; 4],
                    )
                    .unwrap();
            }
        })
        // Partition 1: the reader (world 2).
        .partition("reader", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, cfg(), STREAM_ID).unwrap();
            let mut bytes = 0usize;
            let mut violations = Vec::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => bytes += b.data.len(),
                    Ok(None) => break,
                    Err(e @ VmpiError::ProtocolViolation { .. }) => violations.push(e),
                    Err(e) => panic!("unexpected stream error: {e}"),
                }
            }
            *out.lock().unwrap() = (bytes, violations);
        });
    (launcher, outcome)
}

fn assert_garbage_stream_outcome(outcome: &GarbageOutcome) {
    let (bytes, violations) = std::mem::take(&mut *outcome.lock().unwrap());
    assert_eq!(
        bytes, 768,
        "the honest writer's data must be delivered in full"
    );
    assert_eq!(violations.len(), 1, "exactly one source is poisoned");
    match &violations[0] {
        VmpiError::ProtocolViolation { expected, got } => {
            assert_eq!(*expected, "stream frame header of 9 bytes");
            assert!(got.contains('4'), "the observed size is reported: {got}");
        }
        other => panic!("expected ProtocolViolation, got {other:?}"),
    }
}

#[test]
fn garbage_stream_block_isolates_the_source_and_honest_data_survives() {
    let (launcher, outcome) = garbage_stream_block_job();
    launcher.run().unwrap();
    assert_garbage_stream_outcome(&outcome);
}

#[test]
fn socket_garbage_stream_block_is_typed_across_the_wire() {
    let (launcher, outcome) = garbage_stream_block_job();
    let failures = common::run_socket_threads(launcher, 2);
    assert!(failures.is_empty(), "no rank may fail: {failures:?}");
    assert_garbage_stream_outcome(&outcome);
}

// ---------------------------------------------------------------------
// Scenario 5: a hostile writer ships well-framed stream blocks whose
// payload is not an event pack. The analysis engine counts them as
// decode errors while the honest writer's events are fully analyzed.
// ---------------------------------------------------------------------
#[test]
fn garbage_event_pack_is_counted_while_honest_events_are_analyzed() {
    const STREAM_ID: u16 = 9;
    const HONEST_EVENTS: usize = 5;

    let outcome: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let out = Arc::clone(&outcome);

    Launcher::new()
        .partition("writers", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 1, 1, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = WriteStream::open_map(&v, &map, cfg(), STREAM_ID).unwrap();
            if v.mpi().world_rank() == 0 {
                // One well-formed pack per block.
                for seq in 0..HONEST_EVENTS {
                    let ev = Event::basic(EventKind::Send, 0, seq as u64 * 100, 10);
                    let pack = EventPack::new(1, 0, seq as u32, vec![ev]).encode();
                    st.write(&pack).unwrap();
                    st.flush().unwrap();
                }
            } else {
                // A perfectly legal stream block that is not a pack.
                st.write(b"this is not an event pack at all").unwrap();
                st.flush().unwrap();
            }
            st.close().unwrap();
        })
        .partition("analyzer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut map = Map::new();
            map_partitions_directed(&v, 0, 1, MapPolicy::RoundRobin, &mut map).unwrap();
            let mut st = ReadStream::open_map(&v, &map, cfg(), STREAM_ID).unwrap();
            let engine = AnalysisEngine::new(EngineConfig::default());
            engine.start();
            while let Some(b) = st.read(ReadMode::Blocking).unwrap() {
                engine.post_block(b.data);
            }
            let report = engine.finish();
            let decode_errors: u64 = report.apps.iter().map(|a| a.decode_errors).sum();
            let honest_events: u64 = report
                .apps
                .iter()
                .filter(|a| a.app_id == 1)
                .map(|a| a.events)
                .sum();
            *out.lock().unwrap() = (decode_errors, honest_events);
        })
        .run()
        .unwrap();

    let (decode_errors, honest_events) = *outcome.lock().unwrap();
    assert_eq!(decode_errors, 1, "the garbage block is counted, not fatal");
    assert_eq!(
        honest_events, HONEST_EVENTS as u64,
        "every honest event still reaches the profile"
    );
}

// ---------------------------------------------------------------------
// Scenario 6: a rank returning a typed error is reported as exactly one
// Errored failure; an unrelated healthy partition completes untouched.
// Runs on both backends: over the socket mesh the failure lives in a
// different "process" than the healthy partition, and its shutdown
// broadcast crosses the wire.
// ---------------------------------------------------------------------
fn injected_error_job() -> (Launcher, Arc<Mutex<usize>>) {
    let healthy = Arc::new(Mutex::new(0usize));
    let h2 = Arc::clone(&healthy);
    let launcher = Launcher::new()
        .partition_try("faulty", 2, move |mpi| {
            if mpi.world_rank() == 0 {
                return Err("injected failure".into());
            }
            Ok(())
        })
        .partition("healthy", 3, move |_mpi| {
            *h2.lock().unwrap() += 1;
        });
    (launcher, healthy)
}

fn assert_injected_error_failures(failures: &[RankFailure], healthy: &Arc<Mutex<usize>>) {
    assert!(
        failures.iter().all(|f| f.kind != FailureKind::Panicked),
        "{failures:?}"
    );
    assert_eq!(failures.len(), 1);
    let f = &failures[0];
    assert_eq!((f.partition.as_str(), f.world_rank), ("faulty", 0));
    assert_eq!(f.kind, FailureKind::Errored);
    assert_eq!(f.message, "injected failure");
    assert_eq!(*healthy.lock().unwrap(), 3, "healthy ranks all completed");
}

#[test]
fn injected_rank_error_is_isolated_from_healthy_partitions() {
    let (launcher, healthy) = injected_error_job();
    let err = launcher.run().expect_err("the faulty rank must surface");
    assert_injected_error_failures(&err.failures, &healthy);
}

#[test]
fn socket_injected_rank_error_is_isolated_across_processes() {
    let (launcher, healthy) = injected_error_job();
    let failures = common::run_socket_threads(launcher, 2);
    assert_injected_error_failures(&failures, &healthy);
}

// ---------------------------------------------------------------------
// Scenario 7: a corrupted framed record is a sticky typed error — the
// buffer refuses to resynchronise on garbage instead of mis-decoding.
// ---------------------------------------------------------------------
#[test]
fn corrupt_frame_is_a_sticky_typed_error() {
    let framed = try_frame(b"snapshot payload").unwrap();
    let mut wire = framed.to_vec();
    let last = wire.len() - 1;
    wire[last] ^= 0x40; // flip one payload bit; the checksum catches it

    let mut fb = FrameBuf::new();
    fb.push(&wire);
    match fb.next_frame() {
        Err(FrameError::Corrupt { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected FrameError::Corrupt, got {other:?}"),
    }
    // Poisoned for good: even a subsequently pushed pristine frame must
    // not be trusted, because stream resynchronisation after corruption
    // is impossible.
    fb.push(&try_frame(b"pristine").unwrap());
    assert!(
        matches!(fb.next_frame(), Err(FrameError::Corrupt { .. })),
        "the poison must stick"
    );

    // A hostile length header is the other typed variant.
    let mut fb = FrameBuf::new();
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.extend_from_slice(&0u32.to_le_bytes());
    fb.push(&huge);
    assert!(
        matches!(fb.next_frame(), Err(FrameError::Oversize { .. })),
        "a hostile length field is rejected before any allocation"
    );
}
