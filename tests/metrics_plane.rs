//! Acceptance tests for the time-resolved standard-metrics plane.
//!
//! Three properties, each over the three irregular workload generators
//! (Irregular, Straggler, Bursty):
//!
//! 1. **Online = offline** — the windowed series the engine folds
//!    incrementally (no trace retention) equals the whole-trace
//!    computation exactly.
//! 2. **Chaos byte-stability** — streaming the same deterministic event
//!    packs through a fault-injected transport (seeded drop / dup /
//!    reorder / delay / slow-rank / storm) leaves the encoded series
//!    byte-identical to the fault-free run.
//! 3. **TBON accuracy** — the series reduced through a fanout-2 tree
//!    (commutative window merges at the frontier) equals the flat fold of
//!    every event.
//!
//! Live timestamps are wall-clock, so these tests synthesize events with
//! a deterministic virtual clock walking the generators' op programs: the
//! packs are fixed byte strings, and only the transport is perturbed.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::analysis::engine::{AnalysisEngine, EngineConfig};
use opmr::events::{Event, EventKind, EventPack};
use opmr::metrics::{MetricsConfig, MetricsSeries};
use opmr::netsim::{tera100, CollKind, Op, Workload};
use opmr::reduce::{run_node, NodeConfig, ReduceOp, Tree};
use opmr::runtime::{FaultPlan, Launcher};
use opmr::vmpi::map::map_partitions_directed;
use opmr::vmpi::stream::data_tag_range;
use opmr::vmpi::{Balance, Map, ReadMode, ReadStream, StreamConfig, Vmpi, WriteStream};
use opmr::workloads::{bursty, irregular, straggler};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const RANKS: usize = 4;
const WINDOW_NS: u64 = 4096;
const EVENTS_PER_PACK: usize = 24;

/// The three generators under test, as prebuilt small workloads.
fn generators() -> Vec<(&'static str, Workload)> {
    let m = tera100();
    vec![
        (
            "irregular",
            irregular::workload(irregular::IrregularParams::small(), RANKS, &m, Some(4)).unwrap(),
        ),
        (
            "straggler",
            straggler::workload(straggler::StragglerParams::small(), RANKS, &m, Some(4)).unwrap(),
        ),
        (
            "bursty",
            bursty::workload(bursty::BurstyParams::small(), RANKS, &m, Some(2)).unwrap(),
        ),
    ]
}

/// Deterministic event synthesis: walk one rank's op program with a
/// virtual clock. Durations are a fixed function of op shape, so the same
/// workload always produces the same events byte for byte.
fn synth_rank_events(w: &Workload, rank: u32) -> Vec<Event> {
    let prog = &w.programs[rank as usize];
    let mut t = 0u64;
    let mut out = Vec::new();
    let mut emit = |t: &mut u64, kind: EventKind, peer: i32, bytes: u64, dur: u64| {
        out.push(Event {
            time_ns: *t,
            duration_ns: dur,
            kind,
            rank,
            peer,
            tag: 0,
            comm: 0,
            bytes,
        });
        *t += dur;
    };
    let ops = prog
        .prologue
        .iter()
        .chain(
            std::iter::repeat_with(|| prog.body.iter())
                .take(prog.iters as usize)
                .flatten(),
        )
        .chain(prog.epilogue.iter());
    for op in ops {
        match *op {
            Op::Compute { ns } => emit(&mut t, EventKind::Compute, -1, 0, ns as u64),
            Op::Send { to, bytes } => {
                emit(&mut t, EventKind::Send, to as i32, bytes, 800 + bytes / 16)
            }
            Op::Recv { from } => {
                emit(&mut t, EventKind::Recv, from as i32, 0, 900);
                emit(&mut t, EventKind::Wait, -1, 0, 250 + u64::from(rank) * 37);
            }
            Op::Exchange { peer, bytes } => {
                emit(
                    &mut t,
                    EventKind::Sendrecv,
                    peer as i32,
                    bytes,
                    1000 + bytes / 16,
                );
                emit(
                    &mut t,
                    EventKind::Waitall,
                    -1,
                    0,
                    300 + u64::from(rank) * 53,
                );
            }
            Op::Coll { kind, bytes, .. } => {
                let ek = match kind {
                    CollKind::Barrier => EventKind::Barrier,
                    CollKind::Bcast => EventKind::Bcast,
                    CollKind::Reduce => EventKind::Reduce,
                    CollKind::Allreduce => EventKind::Allreduce,
                    CollKind::Gather => EventKind::Gather,
                    CollKind::Allgather => EventKind::Allgather,
                    CollKind::Alltoall => EventKind::Alltoall,
                };
                emit(&mut t, ek, -1, bytes, 1500 + bytes / 8);
            }
            Op::FsWrite { bytes } => emit(&mut t, EventKind::PosixWrite, -1, bytes, 700),
            Op::FsMeta => emit(&mut t, EventKind::PosixOpen, -1, 0, 500),
        }
    }
    out
}

/// The per-rank pack sequences of a workload (app 0, fixed chunking).
fn synth_packs(w: &Workload) -> Vec<Vec<EventPack>> {
    (0..w.ranks() as u32)
        .map(|rank| {
            synth_rank_events(w, rank)
                .chunks(EVENTS_PER_PACK)
                .enumerate()
                .map(|(seq, ev)| EventPack::new(0, rank, seq as u32, ev.to_vec()))
                .collect()
        })
        .collect()
}

/// Whole-trace reference fold.
fn offline_series(packs: &[Vec<EventPack>]) -> MetricsSeries {
    let mut s = MetricsSeries::new(WINDOW_NS);
    for rank_packs in packs {
        for p in rank_packs {
            s.fold_pack(&p.events);
        }
    }
    s
}

#[test]
fn online_fold_equals_offline_whole_trace_computation() {
    for (name, w) in generators() {
        let packs = synth_packs(&w);
        let offline = offline_series(&packs);
        assert!(!offline.is_empty(), "{name}: synthesis produced no windows");

        let engine = AnalysisEngine::new(EngineConfig::default());
        engine.enable_metrics(MetricsConfig {
            window_ns: WINDOW_NS,
        });
        engine.start();
        // Interleave ranks to stress order-independence of the fold.
        let max_len = packs.iter().map(Vec::len).max().unwrap();
        for i in 0..max_len {
            for rank_packs in &packs {
                if let Some(p) = rank_packs.get(i) {
                    engine.post_block(p.encode());
                }
            }
        }
        let report = engine.finish();
        let online = report.apps[0]
            .metrics
            .as_ref()
            .expect("metrics KS was enabled");
        assert_eq!(
            online, &offline,
            "{name}: online fold diverged from the whole-trace computation"
        );
        assert_eq!(
            online.encode(),
            offline.encode(),
            "{name}: canonical encodings must agree byte for byte"
        );
    }
}

/// The seeded fault plans of the chaos checklist (tags restricted to the
/// stream data range, like `tests/chaos.rs`).
fn chaos_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan::seeded(101)
                .with_drop(0.15)
                .with_only_tags(data_tag_range()),
        ),
        (
            "duplicate",
            FaultPlan::seeded(202)
                .with_dup(0.25)
                .with_only_tags(data_tag_range()),
        ),
        (
            "delay",
            FaultPlan::seeded(303)
                .with_delay(0.20, Duration::from_micros(200))
                .with_only_tags(data_tag_range()),
        ),
        (
            "reorder",
            FaultPlan::seeded(404)
                .with_reorder(0.25)
                .with_only_tags(data_tag_range()),
        ),
        (
            "slow-rank",
            FaultPlan::seeded(505)
                .with_slow_rank(0, Duration::from_micros(300))
                .with_only_tags(data_tag_range()),
        ),
        (
            "mixed-storm",
            FaultPlan::seeded(606)
                .with_drop(0.10)
                .with_dup(0.10)
                .with_reorder(0.10)
                .with_delay(0.10, Duration::from_micros(50))
                .with_only_tags(data_tag_range()),
        ),
    ]
}

/// Streams the packs through writer ranks into a one-rank analyzer that
/// folds the metrics series online; returns the series' canonical bytes.
fn stream_and_fold(packs: Arc<Vec<Vec<EventPack>>>, plan: Option<FaultPlan>) -> Vec<u8> {
    let writers = packs.len();
    let encoded = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&encoded);
    let mut launcher = Launcher::new();
    if let Some(p) = plan {
        launcher = launcher.fault_plan(p);
    }
    launcher
        .partition("w", writers, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(4096, 3, Balance::None)
                .with_retries(16, Duration::from_micros(100));
            let mut st = WriteStream::open_to(&v, vec![writers], cfg, 1).unwrap();
            for p in &packs[v.rank()] {
                st.write(&p.encode()).unwrap();
                st.flush().unwrap();
            }
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(4096, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let mut st = ReadStream::open_from(&v, (0..writers).collect(), cfg, 1).unwrap();
            let engine = AnalysisEngine::new(EngineConfig::default());
            engine.enable_metrics(MetricsConfig {
                window_ns: WINDOW_NS,
            });
            engine.start();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => engine.post_block(b.data),
                    Ok(None) => break,
                    Err(e) => panic!("metrics chaos reader must never fail: {e}"),
                }
            }
            let report = engine.finish();
            let m = report.apps[0].metrics.as_ref().expect("metrics enabled");
            *sink.lock().unwrap() = m.encode().to_vec();
        })
        .run()
        .unwrap();
    Arc::try_unwrap(encoded).unwrap().into_inner().unwrap()
}

#[test]
fn metric_series_is_byte_stable_under_seeded_chaos_replay() {
    for (name, w) in generators() {
        let packs = Arc::new(synth_packs(&w));
        let offline = offline_series(&packs).encode().to_vec();
        let clean = stream_and_fold(Arc::clone(&packs), None);
        assert_eq!(
            clean, offline,
            "{name}: fault-free streaming must equal the offline fold"
        );
        for (plan_name, plan) in chaos_plans() {
            let faulted = stream_and_fold(Arc::clone(&packs), Some(plan.clone()));
            assert_eq!(
                faulted, clean,
                "{name}/{plan_name}: chaos replay must be byte-identical"
            );
            let again = stream_and_fold(Arc::clone(&packs), Some(plan));
            assert_eq!(
                again, faulted,
                "{name}/{plan_name}: same seed must replay identically"
            );
        }
    }
}

/// Streams each rank's packs through a fanout-2 aggregation tree with the
/// metrics fold enabled at the frontier; returns the root's series.
fn tbon_series(packs: Arc<Vec<Vec<EventPack>>>) -> MetricsSeries {
    const NODES: usize = 3;
    let leaves = packs.len();
    let result = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&result);
    let tree_for_leaves = Tree::new(2, NODES);
    Launcher::new()
        .partition("leaves", leaves, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree_pid = v.partition_by_name("Reduce").unwrap().id;
            let mut map = Map::new();
            map_partitions_directed(
                &v,
                tree_pid,
                tree_pid,
                tree_for_leaves.leaf_policy(),
                &mut map,
            )
            .unwrap();
            let cfg = StreamConfig {
                block_size: 4096,
                ..StreamConfig::default()
            };
            let mut st = WriteStream::open_map(&v, &map, cfg, 1).unwrap();
            for p in &packs[v.rank()] {
                st.write(&p.encode()).unwrap();
                st.flush().unwrap();
            }
            st.close().unwrap();
        })
        .partition("Reduce", NODES, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree = Tree::new(2, v.size());
            let mut map = Map::new();
            map_partitions_directed(&v, 0, v.partition_id(), tree.leaf_policy(), &mut map).unwrap();
            let cfg = StreamConfig {
                block_size: 4096,
                ..StreamConfig::default()
            };
            let node_cfg = NodeConfig {
                op: ReduceOp::Aggregate,
                window_blocks: 4,
                waitstate: false,
                metrics: Some(MetricsConfig {
                    window_ns: WINDOW_NS,
                }),
            };
            let outcome = run_node(&v, &tree, map.peers(), cfg, 1, &node_cfg, |_| {}).unwrap();
            if v.rank() == 0 {
                assert_eq!(outcome.partials.len(), 1, "one application, one partial");
                *sink.lock().unwrap() = outcome.partials[0].metrics.clone();
            }
        })
        .run()
        .unwrap();
    Arc::try_unwrap(result)
        .unwrap()
        .into_inner()
        .unwrap()
        .expect("root partial carries the reduced series")
}

#[test]
fn tbon_reduced_series_matches_flat_computation() {
    for (name, w) in generators() {
        let packs = Arc::new(synth_packs(&w));
        let flat = offline_series(&packs);
        let reduced = tbon_series(Arc::clone(&packs));
        assert_eq!(
            reduced, flat,
            "{name}: tree-merged series must equal the flat fold"
        );
        assert_eq!(
            reduced.encode(),
            flat.encode(),
            "{name}: canonical encodings must agree byte for byte"
        );
    }
}
