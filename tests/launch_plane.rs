//! Launch & supervision plane acceptance: `run_job` drives real OS
//! worker processes (re-executions of this test binary) through the
//! full control-line protocol — spawn, heartbeat liveness, stat
//! aggregation, typed exit classification, kill-all teardown, the
//! restart-once policy — and every outcome is observable in the
//! `launch_*` counter family.
//!
//! Counters are process-global and tests run concurrently, so all
//! counter assertions are before/after deltas.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::launch::{run_job, stat_line, HeartbeatEmitter, JobSpec, LocalSpawner, WorkerCommand};
use opmr::runtime::FailureKind;
use std::time::Duration;

fn counter(name: &str) -> u64 {
    opmr::obs::registry().snapshot().counter(name).unwrap_or(0)
}

/// Builds the worker command: this test binary, re-executed into the
/// env-gated `launch_plane_worker` test below with a behavior mode.
fn worker_cmd(mode: &str, proc: usize, extra: &[(&str, String)]) -> WorkerCommand {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = WorkerCommand::new(exe)
        .arg("--exact")
        .arg("launch_plane_worker")
        .arg("--test-threads=1")
        .arg("--nocapture")
        .env("OPMR_LP_MODE", mode)
        .env("OPMR_LP_PROC", proc.to_string());
    for (k, v) in extra {
        cmd = cmd.env(*k, v.clone());
    }
    cmd
}

/// The worker half. Inert unless `OPMR_LP_MODE` is set.
#[test]
fn launch_plane_worker() {
    let Ok(mode) = std::env::var("OPMR_LP_MODE") else {
        return; // not a worker invocation
    };
    let proc: usize = std::env::var("OPMR_LP_PROC").unwrap().parse().unwrap();
    match mode.as_str() {
        // Heartbeats, a little work, one stat line, clean exit.
        "ok" => {
            let hb = HeartbeatEmitter::start(proc, Duration::from_millis(20));
            println!("ordinary worker chatter");
            std::thread::sleep(Duration::from_millis(150));
            println!("{}", stat_line("lp_test_work_done_total", 7));
            drop(hb);
        }
        // Still heartbeating when a sibling fails: teardown casualty.
        "ok-slow" => {
            let hb = HeartbeatEmitter::start(proc, Duration::from_millis(20));
            std::thread::sleep(Duration::from_secs(30));
            drop(hb);
        }
        // Typed failure: non-zero exit code.
        "fail" => {
            eprintln!("worker {proc} failing on purpose");
            std::process::exit(3);
        }
        // Alive but mute: must be killed by the liveness watchdog.
        "silent" => std::thread::sleep(Duration::from_secs(30)),
        // Fails on the first job attempt, succeeds on the restart.
        "fail-first" => {
            let marker = std::path::PathBuf::from(std::env::var("OPMR_LP_MARKER").unwrap());
            let hb = HeartbeatEmitter::start(proc, Duration::from_millis(20));
            if !marker.exists() {
                std::fs::write(&marker, b"attempt 1").unwrap();
                drop(hb);
                std::process::exit(3);
            }
            std::thread::sleep(Duration::from_millis(50));
            drop(hb);
        }
        other => panic!("unknown worker mode {other:?}"),
    }
}

#[test]
fn three_local_workers_run_to_clean_exit_with_aggregated_stats() {
    let spawned0 = counter("launch_children_spawned_total");
    let clean0 = counter("launch_clean_exits_total");
    let beats0 = counter("launch_heartbeats_total");

    let mut spec = JobSpec::new(3);
    spec.heartbeat_timeout = Duration::from_secs(5);
    let report = run_job(&spec, &LocalSpawner, &|proc, _host| {
        worker_cmd("ok", proc, &[])
    })
    .expect("job launches");

    assert!(report.success(), "all workers clean: {:?}", report.outcomes);
    assert_eq!(report.attempts, 1);
    assert_eq!(report.outcomes.len(), 3);
    assert!(report.outcomes.iter().all(|o| !o.torn_down));
    // The `@opmr-stat` lines of all three workers are summed.
    assert_eq!(
        report.stats.get("lp_test_work_done_total").copied(),
        Some(21),
        "3 workers x 7 units each"
    );
    assert_eq!(counter("launch_children_spawned_total") - spawned0, 3);
    assert_eq!(counter("launch_clean_exits_total") - clean0, 3);
    assert!(
        counter("launch_heartbeats_total") > beats0,
        "heartbeats must flow through the control-line protocol"
    );
}

#[test]
fn child_failure_is_classified_and_tears_down_the_survivors() {
    let failures0 = counter("launch_child_failures_total");
    let mut spec = JobSpec::new(3);
    spec.heartbeat_timeout = Duration::from_secs(5);
    let report = run_job(&spec, &LocalSpawner, &|proc, _host| {
        // Process 1 exits 3 immediately; its siblings would happily run
        // for 30 s — the supervisor must not wait for them.
        worker_cmd(if proc == 1 { "fail" } else { "ok-slow" }, proc, &[])
    })
    .expect("job launches");

    assert!(!report.success());
    assert_eq!(report.attempts, 1, "no restart without the policy");
    // Exactly one root cause, typed as an error exit…
    let roots: Vec<_> = report.failures().collect();
    assert_eq!(roots.len(), 1, "one root cause: {:?}", report.outcomes);
    assert_eq!(roots[0].proc, 1);
    assert_eq!(roots[0].kind, Some(FailureKind::Errored));
    assert!(roots[0].message.contains("code 3"), "{}", roots[0].message);
    // …and the survivors were killed as teardown casualties, not
    // counted as independent failures.
    for o in &report.outcomes {
        if o.proc != 1 {
            assert!(o.torn_down, "p{} must be a teardown casualty", o.proc);
        }
    }
    assert!(counter("launch_child_failures_total") > failures0);
}

#[test]
fn stale_heartbeat_is_a_liveness_kill_classified_as_a_crash() {
    let timeouts0 = counter("launch_heartbeat_timeouts_total");
    let mut spec = JobSpec::new(2);
    spec.heartbeat_timeout = Duration::from_millis(400);
    let report = run_job(&spec, &LocalSpawner, &|proc, _host| {
        worker_cmd(if proc == 1 { "silent" } else { "ok-slow" }, proc, &[])
    })
    .expect("job launches");

    assert!(!report.success());
    let roots: Vec<_> = report.failures().collect();
    assert_eq!(roots.len(), 1, "one root cause: {:?}", report.outcomes);
    assert_eq!(roots[0].proc, 1);
    assert_eq!(roots[0].kind, Some(FailureKind::Panicked));
    assert!(
        roots[0].message.contains("heartbeat"),
        "{}",
        roots[0].message
    );
    assert!(counter("launch_heartbeat_timeouts_total") > timeouts0);
}

#[test]
fn restart_once_relaunches_the_whole_job_exactly_once() {
    let restarts0 = counter("launch_restarts_total");
    let marker =
        std::env::temp_dir().join(format!("opmr-lp-marker-{}-{}", std::process::id(), line!()));
    let _ = std::fs::remove_file(&marker);

    let mut spec = JobSpec::new(2);
    spec.heartbeat_timeout = Duration::from_secs(5);
    spec.restart_once = true;
    let extra = [("OPMR_LP_MARKER", marker.display().to_string())];
    let report = run_job(&spec, &LocalSpawner, &|proc, _host| {
        worker_cmd("fail-first", proc, &extra)
    })
    .expect("job launches");
    let _ = std::fs::remove_file(&marker);

    assert_eq!(report.attempts, 2, "first attempt fails, restart succeeds");
    assert!(
        report.success(),
        "the restarted job must run clean: {:?}",
        report.outcomes
    );
    assert!(counter("launch_restarts_total") > restarts0);
}

#[test]
fn spawn_failure_is_a_typed_error_not_a_leaked_job() {
    let spec = JobSpec::new(2);
    let err = run_job(&spec, &LocalSpawner, &|_proc, _host| {
        WorkerCommand::new("/nonexistent/opmr-launch-no-such-binary")
    })
    .expect_err("spawning a missing binary cannot succeed");
    assert!(
        matches!(err, opmr::launch::LaunchPlaneError::Spawn { .. }),
        "{err}"
    );
}
