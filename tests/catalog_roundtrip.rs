//! Catalog round-trip: every benchmark in the catalog constructs, runs on
//! the discrete-event simulator, and is advertised by `opmr demo`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::netsim::{simulate, tera100, ToolModel};
use opmr::workloads::{by_name, Benchmark, Class, BENCHMARKS};

/// The smallest rank count >= 2 the benchmark accepts at class S (BT/SP
/// need perfect squares, CG powers of two, FT is capped by the grid).
fn smallest_ranks(bench: Benchmark, class: Class) -> usize {
    let m = tera100();
    (2..=16)
        .find(|&n| bench.build(class, n, &m, Some(1)).is_ok())
        .unwrap_or_else(|| panic!("{} accepts no rank count in 2..=16", bench.name()))
}

/// Every catalog entry constructs at class S on a small rank count and
/// simulates one iteration producing events — including the three
/// irregular generators added for the metrics plane.
#[test]
fn every_catalog_entry_builds_and_simulates_one_step() {
    let m = tera100();
    for bench in BENCHMARKS {
        let ranks = smallest_ranks(bench, Class::S);
        let w = bench
            .build(Class::S, ranks, &m, Some(1))
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", bench.name()));
        let r = simulate(&w, &m, &ToolModel::online_coupling(1.0))
            .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", bench.name()));
        assert!(
            r.stats.events > 0,
            "{} produced no events on {ranks} ranks",
            bench.name()
        );
        // Name lookup round-trips (case-insensitive, as the CLI uses it).
        assert_eq!(by_name(bench.name()).unwrap(), bench);
        assert_eq!(by_name(&bench.name().to_lowercase()).unwrap(), bench);
    }
}

/// `opmr demo` prints the workload catalog: one listing line per entry,
/// so new generators cannot be added without surfacing in the CLI.
#[test]
fn demo_listing_advertises_every_catalog_entry() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_opmr"))
        .arg("demo")
        .output()
        .expect("opmr demo runs");
    assert!(out.status.success(), "demo exited with {}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let listing = stdout
        .split("workload catalog")
        .nth(1)
        .expect("demo prints the catalog listing");
    for bench in BENCHMARKS {
        assert!(
            listing.contains(bench.name()),
            "{} missing from the demo listing",
            bench.name()
        );
    }
}
