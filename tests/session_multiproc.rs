//! Acceptance: a full `Session` split across OS processes over the
//! socket transport produces **byte-identical** analysis output to the
//! in-process run — proven by comparing the timing-scrubbed
//! [`stable_digest`] of the final report across three launch shapes:
//!
//! 1. plain in-process `run()`;
//! 2. two thread-hosted processes over a Unix-domain socket mesh;
//! 3. two genuine OS processes (the worker re-executes this binary).
//!
//! The placement policy is derived, not configured: the analyzer
//! partition, clients, and the `__obs` self-monitor stay in process 0
//! with the shared engine; user application ranks run in the workers, so
//! every event pack crosses a real wire before reduction.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;
use common::fresh_unix_endpoint;

use opmr::analysis::report::stable_digest;
use opmr::core::{Session, SessionBuilder, SessionError, SessionOutcome};
use opmr::runtime::{Endpoint, SocketConfig, Src, TagSel};
use std::time::Duration;

/// A quickstart-shaped job, sized for CI: a 4-rank ring with collectives
/// plus a 2-rank analyzer partition. Every process of a multi-process
/// session must build the identical session, so both the parent and the
/// re-executed worker call this.
fn demo_session() -> SessionBuilder {
    Session::builder().analyzer_ranks(2).app("ring", 4, |imp| {
        let world = imp.comm_world();
        let (r, n) = (imp.rank(), imp.size());
        for round in 0..10 {
            let req = imp
                .isend(&world, (r + 1) % n, round, vec![r as u8; 1024])
                .expect("isend");
            imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                .expect("recv");
            imp.wait(req).expect("wait");
            if round % 5 == 0 {
                imp.barrier(&world).expect("barrier");
            }
        }
        imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
    })
}

fn socket_cfg(endpoint: Endpoint) -> SocketConfig {
    SocketConfig::new(endpoint).connect_timeout(Duration::from_secs(20))
}

fn run_proc(endpoint: Endpoint, proc_index: usize) -> Result<SessionOutcome, SessionError> {
    demo_session().run_multiproc(socket_cfg(endpoint), proc_index, 2)
}

// ---------------------------------------------------------------------
// Shape 1 vs shape 2: in-process vs thread-hosted socket processes.
// ---------------------------------------------------------------------
#[test]
fn socket_session_report_is_byte_identical_to_inproc() {
    let direct = demo_session().run().expect("in-process session");
    let want = stable_digest(&direct.report);

    let endpoint = fresh_unix_endpoint("session");
    let worker = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || run_proc(endpoint, 1))
    };
    let sock = run_proc(endpoint, 0).expect("socket session, process 0");
    let remote = worker.join().unwrap().expect("socket session, process 1");

    assert_eq!(
        stable_digest(&sock.report),
        want,
        "the socket-transport report must be byte-identical to in-process"
    );
    assert_eq!(
        sock.report.apps.len(),
        direct.report.apps.len(),
        "same chapters in both reports"
    );
    // Every process pre-registers the app chapters by name, but only
    // process 0's engine ever receives packs: the worker's report is an
    // empty shell.
    assert!(
        remote
            .report
            .apps
            .iter()
            .all(|a| a.events == 0 && a.packs == 0),
        "only process 0 (which hosts the engine) observes events"
    );
}

// ---------------------------------------------------------------------
// Distributed analysis gathers partials inside one process; asking for
// it across processes is a typed configuration error, not a hang.
// ---------------------------------------------------------------------
#[test]
fn distributed_mode_is_rejected_with_a_typed_config_error() {
    let endpoint = fresh_unix_endpoint("distributed");
    let Err(err) = demo_session()
        .distributed()
        .run_multiproc(socket_cfg(endpoint), 0, 2)
    else {
        panic!("distributed + multi-process must not launch")
    };
    match err {
        SessionError::Config(msg) => {
            assert!(msg.contains("distributed"), "names the conflict: {msg}")
        }
        other => panic!("expected a Config error, got: {other}"),
    }
}

// ---------------------------------------------------------------------
// Launcher-driven placement: an explicit placement vector (app partition
// i → process placement[i]) must not change a byte of the analysis, and
// invalid placements are typed configuration errors, not hangs.
// ---------------------------------------------------------------------
#[test]
fn explicit_placement_keeps_the_report_byte_identical() {
    let direct = demo_session().run().expect("in-process session");
    let want = stable_digest(&direct.report);

    // Three processes, but the single app partition is pinned to p2 —
    // the derived policy would have used p1, so this exercises a
    // genuinely different mesh shape.
    let endpoint = fresh_unix_endpoint("placed");
    let run_placed = |proc_index: usize| {
        let endpoint = endpoint.clone();
        move || demo_session().run_multiproc_placed(socket_cfg(endpoint), proc_index, 3, vec![2])
    };
    let w1 = std::thread::spawn(run_placed(1));
    let w2 = std::thread::spawn(run_placed(2));
    let sock = run_placed(0)().expect("placed session, process 0");
    w1.join().unwrap().expect("placed session, process 1");
    w2.join().unwrap().expect("placed session, process 2");

    assert_eq!(
        stable_digest(&sock.report),
        want,
        "explicit placement must not change the analysis output"
    );
}

#[test]
fn invalid_placements_are_typed_config_errors() {
    // Wrong arity: one app, two placement entries.
    let endpoint = fresh_unix_endpoint("placed-arity");
    match demo_session().run_multiproc_placed(socket_cfg(endpoint), 0, 3, vec![1, 2]) {
        Err(SessionError::Config(msg)) => {
            assert!(msg.contains("placement"), "names the field: {msg}")
        }
        other => {
            let _ = other.map(|_| ());
            panic!("expected a Config error")
        }
    }
    // Out-of-range target: process 7 in a 3-process job.
    let endpoint = fresh_unix_endpoint("placed-range");
    match demo_session().run_multiproc_placed(socket_cfg(endpoint), 0, 3, vec![7]) {
        Err(SessionError::Config(msg)) => {
            assert!(msg.contains('7'), "names the bad target: {msg}")
        }
        other => {
            let _ = other.map(|_| ());
            panic!("expected a Config error")
        }
    }
}

// ---------------------------------------------------------------------
// Shape 3: two genuine OS processes. The worker half below re-executes
// this binary (inert unless the env var is set), exactly like a real
// multi-process deployment would launch one session per host.
// ---------------------------------------------------------------------
#[test]
fn session_worker() {
    let Ok(path) = std::env::var("OPMR_SMP_WORKER_SOCK") else {
        return; // not a worker invocation
    };
    run_proc(Endpoint::Unix(path.into()), 1).expect("worker session");
}

#[test]
fn session_spans_two_os_processes_with_identical_output() {
    let direct = demo_session().run().expect("in-process session");
    let want = stable_digest(&direct.report);

    let endpoint = fresh_unix_endpoint("osproc");
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "session_worker", "--test-threads=1"])
        .env("OPMR_SMP_WORKER_SOCK", path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let sock = run_proc(endpoint.clone(), 0).expect("socket session, process 0");
    let status = child.wait().unwrap();
    assert!(status.success(), "worker process failed: {status}");

    assert_eq!(
        stable_digest(&sock.report),
        want,
        "analysis output across OS processes must be byte-identical"
    );
    let ring = sock
        .report
        .apps
        .iter()
        .find(|a| a.name == "ring")
        .expect("ring chapter present");
    assert_eq!(ring.ranks, 4);
    assert!(ring.events > 0 && ring.packs > 0);
}
