//! Socket backend negative paths: every way the mesh can fail to
//! assemble or a peer can die mid-job must surface as a **typed**
//! [`SocketError`] / [`VmpiError`] — never a panic — and tick the
//! matching `transport_socket_*` observability counter.
//!
//! Counters are process-global, and test binaries run their tests
//! concurrently, so every assertion is a before/after delta (`>=`), not
//! an absolute value.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;
use common::fresh_unix_endpoint;

use opmr::runtime::{
    Endpoint, Launcher, MultiprocError, MultiprocTopology, PartitionAssign, SocketConfig,
    SocketError, Src, TagSel,
};
use opmr::vmpi::{Balance, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn counter(name: &str) -> u64 {
    opmr::obs::registry().snapshot().counter(name).unwrap_or(0)
}

/// Minimal two-partition job: one message across the partition (and thus
/// process) boundary, verified at the receiver.
fn tiny_job() -> Launcher {
    Launcher::new()
        .partition("a", 1, |mpi| {
            let w = mpi.world();
            mpi.send(&w, 1, 7, vec![1, 2, 3]).unwrap();
        })
        .partition("b", 1, |mpi| {
            let w = mpi.world();
            let (_, d) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(7)).unwrap();
            assert_eq!(d, vec![1, 2, 3]);
        })
}

// ---------------------------------------------------------------------
// Nobody is listening: the dialer times out with a typed error.
// ---------------------------------------------------------------------
#[test]
fn dialing_an_unbound_endpoint_is_a_typed_connect_timeout() {
    let before = counter("transport_socket_connect_timeouts_total");
    let cfg = SocketConfig::new(fresh_unix_endpoint("unbound"))
        .connect_timeout(Duration::from_millis(200));
    let topo = MultiprocTopology::new(cfg, 1, 2).assign(PartitionAssign::RoundRobin);
    let err = tiny_job()
        .run_multiproc(topo)
        .expect_err("no coordinator exists");
    match err {
        MultiprocError::Socket(SocketError::ConnectTimeout { waited_ms, .. }) => {
            assert!(
                waited_ms >= 200,
                "reports how long it waited: {waited_ms}ms"
            );
        }
        other => panic!("expected ConnectTimeout, got: {other}"),
    }
    assert!(
        counter("transport_socket_connect_timeouts_total") > before,
        "the timeout must be counted"
    );
}

// ---------------------------------------------------------------------
// A peer never shows up: the coordinator times out with a typed error
// naming how many peers are missing.
// ---------------------------------------------------------------------
#[test]
fn missing_peer_is_a_typed_accept_timeout() {
    let before = counter("transport_socket_connect_timeouts_total");
    let cfg = SocketConfig::new(fresh_unix_endpoint("lonely"))
        .connect_timeout(Duration::from_millis(200));
    let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
    let err = tiny_job()
        .run_multiproc(topo)
        .expect_err("process 1 never dials in");
    match err {
        MultiprocError::Socket(SocketError::AcceptTimeout { missing, .. }) => {
            assert_eq!(missing, 1, "exactly one peer is missing");
        }
        other => panic!("expected AcceptTimeout, got: {other}"),
    }
    assert!(
        counter("transport_socket_connect_timeouts_total") > before,
        "the timeout must be counted"
    );
}

// ---------------------------------------------------------------------
// A rogue connection spews garbage before any handshake: the coordinator
// rejects it (counted), keeps accepting, and the real job completes.
// ---------------------------------------------------------------------
#[test]
fn garbage_before_handshake_is_rejected_and_the_job_completes() {
    let before = counter("transport_socket_handshake_rejected_total");
    let endpoint = fresh_unix_endpoint("rogue");
    let Endpoint::Unix(path) = endpoint.clone() else {
        unreachable!()
    };
    let launcher = tiny_job();

    let spawn_proc = |p: usize| {
        let l = launcher.clone();
        let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20));
        let topo = MultiprocTopology::new(cfg, p, 2).assign(PartitionAssign::RoundRobin);
        std::thread::spawn(move || l.run_multiproc(topo))
    };

    // Coordinator first, so the rogue connection is the first accepted.
    let coord = spawn_proc(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut rogue = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("rogue could not reach the coordinator: {e}"),
        }
    };
    // A hostile length header (u32::MAX): instantly unframeable, so the
    // coordinator rejects the connection before reading a payload.
    rogue
        .write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0])
        .unwrap();
    rogue.flush().unwrap();

    // Only now let the honest peer dial in.
    let peer = spawn_proc(1);
    coord
        .join()
        .unwrap()
        .expect("coordinator survives the rogue");
    peer.join().unwrap().expect("peer survives the rogue");
    drop(rogue);

    assert!(
        counter("transport_socket_handshake_rejected_total") > before,
        "the rejected rogue must be counted"
    );
}

// ---------------------------------------------------------------------
// The processes disagree about the topology: a typed handshake failure
// on both sides, no partial mesh.
// ---------------------------------------------------------------------
#[test]
fn topology_mismatch_is_a_typed_handshake_failure_on_both_sides() {
    let before = counter("transport_socket_handshake_rejected_total");
    let endpoint = fresh_unix_endpoint("mismatch");
    // Three partitions so Block ([0,0,1]) and RoundRobin ([0,1,0]) derive
    // different rank→process maps, and therefore different topology
    // hashes in the Hello exchange.
    let launcher = Launcher::new()
        .partition("p0", 1, |_| {})
        .partition("p1", 1, |_| {})
        .partition("p2", 1, |_| {});
    let mut handles = Vec::new();
    for (p, assign) in [
        (0, PartitionAssign::Block),
        (1, PartitionAssign::RoundRobin),
    ] {
        let l = launcher.clone();
        let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_millis(1500));
        let topo = MultiprocTopology::new(cfg, p, 2).assign(assign);
        handles.push(std::thread::spawn(move || l.run_multiproc(topo)));
    }
    for h in handles {
        let err = h.join().unwrap().expect_err("the mesh must not assemble");
        match err {
            // The coordinator rejects the mismatched Hello and then times
            // out waiting for a valid one; the dialer observes its
            // connection die mid-handshake. Both are typed socket errors.
            MultiprocError::Socket(
                SocketError::AcceptTimeout { .. } | SocketError::Handshake { .. },
            ) => {}
            other => panic!("expected a typed socket error, got: {other}"),
        }
    }
    assert!(
        counter("transport_socket_handshake_rejected_total") > before,
        "the mismatched Hello must be counted as rejected"
    );
}

// ---------------------------------------------------------------------
// A peer process dies mid-stream: the survivor sees exactly one typed
// PeerLost, counts the disconnect, and its job still terminates.
// ---------------------------------------------------------------------

const DISCONNECT_BLOCK: usize = 64;
const DISCONNECT_BLOCKS_SENT: usize = 3;

/// Reader in process 0, writer in process 1 (round-robin assignment).
/// The writer pushes three blocks and then dies without any close
/// protocol — modelled with `std::process::abort` in a real child OS
/// process below.
fn disconnect_job(observed: Arc<Mutex<(usize, Vec<usize>)>>) -> Launcher {
    let cfg = || {
        StreamConfig::new(DISCONNECT_BLOCK, 3, Balance::None)
            .with_read_timeout(Duration::from_secs(20))
    };
    Launcher::new()
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![1], cfg(), 5).unwrap();
            let mut blocks = 0usize;
            let mut lost = Vec::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        assert!(b.data.iter().all(|&x| x == 0x5A));
                        blocks += 1;
                    }
                    Ok(None) => break,
                    Err(VmpiError::PeerLost { rank }) => {
                        lost.push(rank);
                        break;
                    }
                    Err(e) => panic!("survivor must fail typed, got: {e}"),
                }
            }
            *observed.lock().unwrap() = (blocks, lost);
        })
        .partition("w", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![0], cfg(), 5).unwrap();
            for _ in 0..DISCONNECT_BLOCKS_SENT {
                st.write(&[0x5A; DISCONNECT_BLOCK]).unwrap();
            }
            // Die like a crashed process: no close protocol, no teardown.
            std::process::abort();
        })
}

/// Spawned copy of this test binary: hosts the writer process and aborts
/// mid-stream. Guarded by an env var so it is inert in a normal run.
#[test]
fn midstream_disconnect_worker() {
    let Ok(path) = std::env::var("OPMR_NEG_WORKER_SOCK") else {
        return; // not a worker invocation
    };
    let cfg =
        SocketConfig::new(Endpoint::Unix(path.into())).connect_timeout(Duration::from_secs(20));
    let topo = MultiprocTopology::new(cfg, 1, 2).assign(PartitionAssign::RoundRobin);
    let sink = Arc::new(Mutex::new((0, Vec::new())));
    // The writer aborts the whole process, so this never returns.
    let _ = disconnect_job(sink).run_multiproc(topo);
    unreachable!("the worker process must have aborted");
}

#[test]
fn midstream_peer_death_is_one_typed_peer_lost_and_counted() {
    let before = counter("transport_socket_peer_disconnects_total");
    let endpoint = fresh_unix_endpoint("abort");
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "midstream_disconnect_worker", "--test-threads=1"])
        .env("OPMR_NEG_WORKER_SOCK", path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let observed = Arc::new(Mutex::new((0usize, Vec::new())));
    let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20));
    let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
    let local = disconnect_job(Arc::clone(&observed)).run_multiproc(topo);
    let status = child.wait().unwrap();

    assert!(!status.success(), "the worker must have died by abort");
    local.expect("the surviving process finishes its job cleanly");
    let (blocks, lost) = std::mem::take(&mut *observed.lock().unwrap());
    assert_eq!(
        blocks, DISCONNECT_BLOCKS_SENT,
        "bytes already on the wire are delivered before the loss"
    );
    assert_eq!(lost, vec![1], "exactly one typed loss, naming the writer");
    assert!(
        counter("transport_socket_peer_disconnects_total") > before,
        "the disconnect must be counted"
    );
}

// ---------------------------------------------------------------------
// An invalid socket configuration is rejected with a typed error before
// any I/O happens — no bind, no dial, no partial mesh.
// ---------------------------------------------------------------------
#[test]
fn invalid_socket_config_is_a_typed_error_before_any_io() {
    let bad_cases = vec![
        SocketConfig::new(fresh_unix_endpoint("badcfg")).retry_budget(0),
        SocketConfig::new(fresh_unix_endpoint("badcfg")).connect_timeout(Duration::ZERO),
        SocketConfig::new(fresh_unix_endpoint("badcfg")).backoff_base(Duration::from_secs(600)),
    ];
    for cfg in bad_cases {
        let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
        match tiny_job().run_multiproc(topo) {
            Err(MultiprocError::Socket(SocketError::InvalidConfig { what })) => {
                assert!(!what.is_empty(), "the defect is named");
            }
            other => panic!("expected a typed InvalidConfig, got: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Retry-budget exhaustion: the *coordinator* process dies mid-stream, so
// the surviving higher-indexed process redials it — every attempt is
// refused, the budget runs out, and the survivor sees exactly one typed
// PeerLost. The reconnect counters prove the dialer actually tried.
// ---------------------------------------------------------------------

/// Reader survives in process 1; the writer (process 0, the coordinator)
/// aborts after three blocks. Mirrors `disconnect_job` with the roles
/// swapped across the process boundary so the *dialer* side of the
/// reconnect protocol is the survivor.
fn coordinator_death_job(observed: Arc<Mutex<(usize, Vec<usize>)>>) -> Launcher {
    let cfg = || {
        StreamConfig::new(DISCONNECT_BLOCK, 3, Balance::None)
            .with_read_timeout(Duration::from_secs(20))
    };
    Launcher::new()
        .partition("w", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = WriteStream::open_to(&v, vec![1], cfg(), 5).unwrap();
            for _ in 0..DISCONNECT_BLOCKS_SENT {
                st.write(&[0x5A; DISCONNECT_BLOCK]).unwrap();
            }
            std::process::abort();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let mut st = ReadStream::open_from(&v, vec![0], cfg(), 5).unwrap();
            let mut blocks = 0usize;
            let mut lost = Vec::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        assert!(b.data.iter().all(|&x| x == 0x5A));
                        blocks += 1;
                    }
                    Ok(None) => break,
                    Err(VmpiError::PeerLost { rank }) => {
                        lost.push(rank);
                        break;
                    }
                    Err(e) => panic!("survivor must fail typed, got: {e}"),
                }
            }
            *observed.lock().unwrap() = (blocks, lost);
        })
}

fn exhaustion_cfg(endpoint: Endpoint) -> SocketConfig {
    SocketConfig::new(endpoint)
        .connect_timeout(Duration::from_secs(20))
        .retry_budget(3)
        .backoff_base(Duration::from_millis(10))
}

/// Spawned copy of this binary: hosts the aborting coordinator.
#[test]
fn budget_exhaustion_worker() {
    let Ok(path) = std::env::var("OPMR_NEG_COORD_SOCK") else {
        return; // not a worker invocation
    };
    let cfg = exhaustion_cfg(Endpoint::Unix(path.into()));
    let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
    let sink = Arc::new(Mutex::new((0, Vec::new())));
    // The writer aborts the whole process, so this never returns.
    let _ = coordinator_death_job(sink).run_multiproc(topo);
    unreachable!("the worker process must have aborted");
}

#[test]
fn retry_budget_exhaustion_is_one_typed_peer_lost_and_counted() {
    let attempts0 = counter("transport_socket_reconnect_attempts_total");
    let exhausted0 = counter("transport_socket_reconnect_exhausted_total");
    let endpoint = fresh_unix_endpoint("exhaust");
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "budget_exhaustion_worker", "--test-threads=1"])
        .env("OPMR_NEG_COORD_SOCK", path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let observed = Arc::new(Mutex::new((0usize, Vec::new())));
    let topo = MultiprocTopology::new(exhaustion_cfg(endpoint.clone()), 1, 2)
        .assign(PartitionAssign::RoundRobin);
    let local = coordinator_death_job(Arc::clone(&observed)).run_multiproc(topo);
    let status = child.wait().unwrap();

    assert!(!status.success(), "the coordinator must have died by abort");
    local.expect("the surviving process finishes its job cleanly");
    let (blocks, lost) = std::mem::take(&mut *observed.lock().unwrap());
    assert_eq!(
        blocks, DISCONNECT_BLOCKS_SENT,
        "bytes already on the wire are delivered before the loss"
    );
    assert_eq!(lost, vec![0], "exactly one typed loss, naming the writer");
    let attempts = counter("transport_socket_reconnect_attempts_total") - attempts0;
    assert!(
        attempts >= 3,
        "the dialer must spend its whole retry budget, attempted {attempts}"
    );
    assert!(
        counter("transport_socket_reconnect_exhausted_total") > exhausted0,
        "running out of budget must be counted"
    );
}

// ---------------------------------------------------------------------
// A stale-epoch redial — a connection presenting a reconnect frame from
// some other (or long-dead) session — is answered with a typed NAK and
// counted, and the real job is unaffected.
// ---------------------------------------------------------------------
#[test]
fn stale_epoch_redial_is_nakked_typed_and_counted() {
    use std::io::Read as _;
    let before = counter("transport_socket_reconnect_stale_epoch_total");
    let endpoint = fresh_unix_endpoint("stale");
    let Endpoint::Unix(path) = endpoint.clone() else {
        unreachable!()
    };
    // Partition bodies idle long enough for the rogue to hit the
    // coordinator's retained (post-handshake) listener mid-job.
    let launcher = Launcher::new()
        .partition("a", 1, |mpi| {
            std::thread::sleep(Duration::from_millis(700));
            let w = mpi.world();
            mpi.send(&w, 1, 7, vec![1, 2, 3]).unwrap();
        })
        .partition("b", 1, |mpi| {
            let w = mpi.world();
            let (_, d) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(7)).unwrap();
            assert_eq!(d, vec![1, 2, 3]);
        });
    let spawn_proc = |p: usize| {
        let l = launcher.clone();
        let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20));
        let topo = MultiprocTopology::new(cfg, p, 2).assign(PartitionAssign::RoundRobin);
        std::thread::spawn(move || l.run_multiproc(topo))
    };
    let coord = spawn_proc(0);
    let peer = spawn_proc(1);

    // Give the handshake time to finish so the acceptor (not the mesh
    // assembly) owns the listener, then present a reconnect frame wired
    // for a bogus session epoch: kind, magic, version, proc=1, epoch,
    // rx_seq — exactly the layout a genuine redial uses.
    std::thread::sleep(Duration::from_millis(300));
    let mut rogue = UnixStream::connect(&path).expect("coordinator listener is retained");
    let mut reconn = Vec::with_capacity(23);
    reconn.push(8u8); // K_RECONN
    reconn.extend_from_slice(&0x4F50_4D52u32.to_le_bytes()); // MAGIC "OPMR"
    reconn.extend_from_slice(&2u16.to_le_bytes()); // VERSION
    reconn.extend_from_slice(&1u16.to_le_bytes()); // claims to be process 1
    reconn.extend_from_slice(&0xDEAD_BEEF_DEAD_BEEFu64.to_le_bytes()); // stale epoch
    reconn.extend_from_slice(&0u64.to_le_bytes()); // rx_seq
    rogue
        .write_all(&opmr::events::frame(&reconn))
        .expect("send stale reconn");
    rogue.flush().unwrap();

    // The reply is a framed `[K_RECONN_NAK, NAK_STALE_EPOCH]`.
    rogue
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = Vec::new();
    let mut buf = [0u8; 64];
    loop {
        match rogue.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    assert!(
        reply.len() >= 10,
        "expected a framed NAK reply, got {} bytes",
        reply.len()
    );
    let payload = &reply[8..]; // [len u32][crc u32] framing header
    assert_eq!(payload[0], 10, "reply kind must be K_RECONN_NAK");
    assert_eq!(payload[1], 1, "reason must be NAK_STALE_EPOCH");

    // The real job is untouched by the rogue.
    coord.join().unwrap().expect("coordinator finishes its job");
    peer.join().unwrap().expect("peer finishes its job");
    assert!(
        counter("transport_socket_reconnect_stale_epoch_total") > before,
        "the stale-epoch rejection must be counted"
    );
}
