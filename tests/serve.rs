//! Acceptance tests for live report serving (`Coupling::Serving`).
//!
//! The contract under test: a client attached to a running session
//! observes a monotonically versioned stream where applying the delta
//! chain to its first full snapshot reproduces the server's stored
//! snapshot *byte-identically* at every version, and a deliberately slow
//! subscriber degrades to a typed, stats-counted snapshot resync instead
//! of unbounded server-side buffering.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::runtime::{Src, TagSel};
use opmr::serve::proto::ALL_RANKS;
use opmr::serve::{ServeConfig, ServeError};
use opmr::vmpi::{Balance, StreamConfig};
use opmr::{Coupling, Session, SessionBuilder};
use parking_lot::Mutex;
use std::sync::Arc;

/// Ring workload chatty enough to cross many pack boundaries (and thus
/// many publication windows) with a small stream block size. An optional
/// start gate lets subscriber tests hold the workload back until their
/// subscription is provably registered at the server — without it the
/// whole run can finish before the subscribe request is processed,
/// leaving the subscriber a single final snapshot.
fn ring_app(
    rounds: i32,
    gate: Option<Arc<std::sync::Barrier>>,
) -> impl Fn(&opmr::instrument::InstrumentedMpi) + Send + Sync + 'static {
    move |imp| {
        if let Some(g) = &gate {
            g.wait();
        }
        let w = imp.comm_world();
        let n = imp.size();
        let r = imp.rank();
        for round in 0..rounds {
            let req = imp.isend(&w, (r + 1) % n, round, vec![3u8; 256]).unwrap();
            imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                .unwrap();
            imp.wait(req).unwrap();
            if round % 16 == 0 {
                imp.barrier(&w).unwrap();
            }
        }
        imp.allreduce_sum(&w, &[r as u64]).unwrap();
    }
}

fn serving_session(
    rounds: i32,
    serve: ServeConfig,
    gate: Option<Arc<std::sync::Barrier>>,
) -> SessionBuilder {
    Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        // Small blocks => frequent packs => frequent publications.
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring", 4, ring_app(rounds, gate))
}

#[derive(Clone, Copy)]
struct Seen {
    version: u64,
    delta: bool,
    resync: bool,
    finished: bool,
}

#[test]
fn subscriber_delta_chain_is_byte_identical_to_server() {
    let serve = ServeConfig {
        publish_every_packs: 2,
        ring: 4096, // retain everything: this test audits every version
        ..ServeConfig::default()
    };
    type SeenLog = Vec<(Seen, Vec<u8>)>;
    let seen: Arc<Mutex<SeenLog>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    // 4 ring ranks + the observer: the workload starts only once the
    // subscription is registered server-side (proven by the version_info
    // round-trip — the server answers requests from one client in order).
    // The workload must outlast a single serve-loop drain burst, or every
    // version (including the final one) can be published inside one loop
    // iteration and the first pumped update is already the final snapshot.
    let gate = Arc::new(std::sync::Barrier::new(5));
    let observer_gate = Arc::clone(&gate);
    let outcome = serving_session(600, serve, Some(gate))
        .client("observer", 1, move |c| {
            c.subscribe().unwrap();
            c.version_info().unwrap();
            observer_gate.wait();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                let held = c.report().expect("subscribed client holds a report");
                assert_eq!(held.version, u.version);
                sink.lock().push((
                    Seen {
                        version: u.version,
                        delta: u.delta,
                        resync: u.resync,
                        finished: u.finished,
                    },
                    held.encoded.to_vec(),
                ));
                if u.finished {
                    break;
                }
            }
        })
        .run()
        .unwrap();

    let store = outcome.snapshot_store.expect("serving retains the store");
    let seen = seen.lock();
    assert!(
        seen.len() >= 3,
        "expected several versions, saw {}",
        seen.len()
    );

    // Monotone, contiguous, no resyncs (nothing ever left the ring).
    let (first, _) = &seen[0];
    assert!(!first.delta, "subscriptions open with a full snapshot");
    for window in seen.windows(2) {
        let (a, _) = &window[0];
        let (b, _) = &window[1];
        assert_eq!(b.version, a.version + 1, "delta chain must not skip");
        assert!(b.delta, "steady-state updates arrive as deltas");
    }
    assert!(seen.iter().all(|(s, _)| !s.resync));
    assert!(seen.iter().any(|(s, _)| s.delta), "no delta was applied");

    // The acceptance bar: the client's folded report is byte-identical to
    // the server's stored snapshot at every observed version.
    for (s, bytes) in seen.iter() {
        let entry = store.get(s.version).expect("ring retained everything");
        assert_eq!(
            bytes.as_slice(),
            entry.encoded.as_ref(),
            "version {} diverged",
            s.version
        );
        assert_eq!(s.finished, entry.is_final);
    }
    let (last, _) = seen.last().unwrap();
    assert!(last.finished);
    assert_eq!(last.version, store.current().unwrap().version);

    // The serving plane did not disturb the analysis result.
    assert_eq!(outcome.report.apps.len(), 1);
    assert_eq!(outcome.report.apps[0].ranks, 4);
    let resyncs: u64 = outcome.serve_stats.iter().map(|(_, s)| s.resyncs).sum();
    assert_eq!(resyncs, 0);
}

#[test]
fn slow_subscriber_degrades_to_counted_resync() {
    let serve = ServeConfig {
        publish_every_packs: 1,
        ring: 2, // tiny ring: a lagging subscriber falls off quickly
        subscriber_credits: 1,
        ..ServeConfig::default()
    };
    let seen: Arc<Mutex<Vec<Seen>>> = Arc::new(Mutex::new(Vec::new()));
    let last_bytes: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let bytes_sink = Arc::clone(&last_bytes);
    let gate = Arc::new(std::sync::Barrier::new(5));
    let laggard_gate = Arc::clone(&gate);
    // Long enough that the laggard provably falls off the two-deep ring
    // even when the whole test binary is competing for cores.
    let outcome = serving_session(400, serve, Some(gate))
        .client("laggard", 1, move |c| {
            c.subscribe().unwrap();
            c.version_info().unwrap();
            laggard_gate.wait();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                sink.lock().push(Seen {
                    version: u.version,
                    delta: u.delta,
                    resync: u.resync,
                    finished: u.finished,
                });
                if u.finished {
                    *bytes_sink.lock() = c.report().unwrap().encoded.to_vec();
                    break;
                }
                // Deliberately slower than the publication cadence.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
        .run()
        .unwrap();

    let store = outcome.snapshot_store.expect("serving retains the store");
    let seen = seen.lock();

    // The slow consumer fell off the two-deep ring and was resynced — the
    // typed signal on the wire...
    assert!(
        seen.iter().any(|s| s.resync),
        "laggard never saw a resync over {} updates",
        seen.len()
    );
    // ...and the counted signal in the serving stats.
    let resyncs: u64 = outcome.serve_stats.iter().map(|(_, s)| s.resyncs).sum();
    assert!(resyncs > 0, "server counted no resyncs");

    // Versions stay strictly monotone even across resync jumps, and the
    // client still converges on the server's final bytes.
    for w in seen.windows(2) {
        assert!(w[1].version > w[0].version, "version went backwards");
    }
    assert_eq!(
        last_bytes.lock().as_slice(),
        store.current().unwrap().encoded.as_ref(),
        "laggard did not converge on the final snapshot"
    );
}

#[test]
fn point_queries_answer_mid_run() {
    let serve = ServeConfig {
        publish_every_packs: 2,
        ..ServeConfig::default()
    };
    type Probe = (u64, u64, Vec<u64>);
    let probed: Arc<Mutex<Option<Probe>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&probed);
    let outcome = serving_session(60, serve, None)
        .client("prober", 2, move |c| {
            // Mid-run: wait for the first publication, then interrogate it
            // while the application is still streaming.
            let info = c.wait_version(1).unwrap();
            assert!(info.current >= 1);
            assert_eq!(info.apps, 1);
            let (v_mid, profile_mid) = c.query_profile(0, 0, 0, ALL_RANKS).unwrap();
            assert!(v_mid >= 1);
            assert!(profile_mid.events() > 0);

            // Unknown app: typed not-found, not a dead stream.
            match c.query_profile(7, 0, 0, ALL_RANKS) {
                Err(ServeError::NotFound(opmr::serve::proto::NotFoundReason::UnknownApp)) => {}
                other => panic!("expected UnknownApp, got {:?}", other.map(|_| ())),
            }

            // Run out, then interrogate the final version (which covers
            // every rank deterministically).
            let fin = c.wait_version(u64::MAX).unwrap();
            assert!(fin.finished);
            let (v_fin, profile) = c.query_profile(0, 0, 0, ALL_RANKS).unwrap();
            assert!(v_fin >= v_mid);
            assert_eq!(profile.ranks(), 4);

            // Rank-range filtering: ranks [0, 2) of 4.
            let (_, lo, density) = c.query_density(0, 0, 0, 2).unwrap();
            assert_eq!(lo, 0);
            assert_eq!(density.len(), 2);
            assert!(density.iter().all(|&d| d > 0));

            let (_, topo) = c.query_topology(0, 0, 0, ALL_RANKS).unwrap();
            assert!(topo.edge_count() > 0);

            // No wait-state KS in this session: typed absence, not an error.
            let (_, ws) = c.query_waitstate(0, 0, 0, ALL_RANKS).unwrap();
            assert!(ws.is_none());

            sink.lock()
                .get_or_insert((v_fin, density[0], density.clone()));
        })
        .run()
        .unwrap();

    assert!(probed.lock().is_some(), "prober never ran its checks");
    // Two prober ranks spread round-robin over two serving ranks.
    let clients: u64 = outcome.serve_stats.iter().map(|(_, s)| s.clients).sum();
    assert_eq!(clients, 2);
    let queries: u64 = outcome.serve_stats.iter().map(|(_, s)| s.queries).sum();
    assert!(queries >= 10);
}

#[test]
fn metric_time_series_ride_the_delta_chain_byte_identically() {
    use opmr::analysis::wire::decode_partials;

    let serve = ServeConfig {
        publish_every_packs: 2,
        ring: 4096, // retain everything: this test audits every version
        ..ServeConfig::default()
    };
    // Every observed (version, folded snapshot bytes, finished flag).
    type SeenLog = Vec<(u64, Vec<u8>, bool)>;
    let seen: Arc<Mutex<SeenLog>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let gate = Arc::new(std::sync::Barrier::new(5));
    let observer_gate = Arc::clone(&gate);
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        .metrics(100_000) // 0.1 ms windows: many windows over the run
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring", 4, ring_app(600, Some(gate)))
        .client("observer", 1, move |c| {
            c.subscribe().unwrap();
            c.version_info().unwrap();
            observer_gate.wait();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                let held = c.report().expect("subscribed client holds a report");
                sink.lock()
                    .push((u.version, held.encoded.to_vec(), u.finished));
                if u.finished {
                    // Point query against the final version: the metrics
                    // plane answers rank-filtered, like the other planes.
                    let (_, m) = c.query_metrics(0, 0, 0, ALL_RANKS).unwrap();
                    let m = m.expect("metrics KS is enabled in this session");
                    assert!(!m.is_empty(), "query returned an empty series");
                    break;
                }
            }
        })
        .run()
        .unwrap();

    let store = outcome.snapshot_store.expect("serving retains the store");
    let seen = seen.lock();
    assert!(seen.len() >= 3, "expected several versions");

    // The client reconstructs the full window history from the delta
    // chain: at every version its folded bytes equal the server snapshot
    // and carry the metric series. The engine serializes snapshot capture
    // against its metrics fold (the publish gate), so the window count is
    // monotone non-decreasing along the version chain — an older fold can
    // never be published after a newer one.
    let mut last_windows = 0usize;
    let mut metric_deltas = 0usize;
    for (version, bytes, _) in seen.iter() {
        let entry = store.get(*version).expect("ring retained everything");
        assert_eq!(
            bytes.as_slice(),
            entry.encoded.as_ref(),
            "version {version} diverged from the server snapshot"
        );
        let parts = decode_partials(bytes).unwrap();
        let m = parts[0]
            .metrics
            .as_ref()
            .expect("every published snapshot carries the series");
        assert!(
            m.len() >= last_windows,
            "version {version}: window count went backwards ({} < {last_windows}); \
             snapshot publication raced the metrics fold",
            m.len()
        );
        if m.len() != last_windows {
            metric_deltas += 1;
        }
        last_windows = m.len();
    }
    assert!(last_windows > 0, "final snapshot has no metric windows");
    assert!(
        metric_deltas >= 2,
        "the series must actually evolve across the delta chain"
    );

    // The engine's final report and the served snapshot agree on the
    // series bytes.
    let (_, final_bytes, finished) = seen.last().unwrap();
    assert!(finished);
    let served = decode_partials(final_bytes).unwrap();
    let report_m = outcome.report.apps[0]
        .metrics
        .as_ref()
        .expect("session report carries the series");
    assert_eq!(
        served[0].metrics.as_ref().unwrap().encode(),
        report_m.encode(),
        "served series must equal the engine's final fold"
    );
}

#[test]
fn sharded_session_serves_per_shard_chains() {
    use std::collections::BTreeMap;

    let serve = ServeConfig {
        publish_every_packs: 2,
        ring: 4096,
        shards: 2, // apps 0 and 2 land on shard 0, app 1 on shard 1
        ..ServeConfig::default()
    };
    // (shard, version, delta?) per observed update, in arrival order.
    type SeenLog = Vec<(u16, u64, bool)>;
    let seen: Arc<Mutex<SeenLog>> = Arc::new(Mutex::new(Vec::new()));
    let finals: Arc<Mutex<BTreeMap<u16, Vec<u8>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&seen);
    let final_sink = Arc::clone(&finals);
    // Three apps of 2 ranks each (6 workload ranks) plus the observer.
    let gate = Arc::new(std::sync::Barrier::new(7));
    let observer_gate = Arc::clone(&gate);
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring-a", 2, ring_app(300, Some(Arc::clone(&gate))))
        .app("ring-b", 2, ring_app(300, Some(Arc::clone(&gate))))
        .app("ring-c", 2, ring_app(300, Some(gate)))
        .client("observer", 1, move |c| {
            c.subscribe().unwrap();
            c.version_info().unwrap();
            observer_gate.wait();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                assert!(u.shard < 2, "update named an out-of-range shard");
                let held = c.shard_report(u.shard).expect("update landed a report");
                assert_eq!(held.version, u.version);
                sink.lock().push((u.shard, u.version, u.delta));
                if u.finished {
                    let mut out = final_sink.lock();
                    for (s, r) in c.reports() {
                        out.insert(s, r.encoded.to_vec());
                    }
                    break;
                }
            }
        })
        .run()
        .unwrap();

    let store = outcome.snapshot_store.expect("serving retains the store");
    assert_eq!(store.shards(), 2);
    let seen = seen.lock();

    // Each shard's chain is independently monotone and contiguous, and
    // every shard actually published (apps were routed across both).
    let mut last: BTreeMap<u16, u64> = BTreeMap::new();
    for &(shard, version, delta) in seen.iter() {
        match last.get(&shard) {
            None => assert!(!delta, "shard {shard} must open with a snapshot"),
            Some(&prev) => {
                assert_eq!(version, prev + 1, "shard {shard} chain skipped");
                assert!(delta, "shard {shard} steady state arrives as deltas");
            }
        }
        last.insert(shard, version);
    }
    assert_eq!(last.len(), 2, "both shards must deliver updates");
    assert!(seen.iter().filter(|(_, _, d)| *d).count() >= 2);

    // The folded per-shard reports are byte-identical to each shard's
    // final stored snapshot, and the app routing is stable.
    let finals = finals.lock();
    for shard in 0..2u16 {
        let entry = store.shard(shard as usize).current().unwrap();
        assert!(entry.is_final, "shard {shard} never finalized");
        assert_eq!(
            finals.get(&shard).map(Vec::as_slice),
            Some(entry.encoded.as_ref()),
            "shard {shard} diverged from the server"
        );
    }
    let (parts, versions) = store.assemble_current().unwrap();
    assert_eq!(versions.len(), 2);
    assert_eq!(parts.len(), 3, "cross-shard assembly covers every app");
    for app in &parts {
        assert_eq!(store.shard_of_app(app.app_id), (app.app_id % 2) as usize);
    }
    assert_eq!(outcome.report.apps.len(), 3);
}

#[test]
fn tree_fanout_replicates_identical_bytes_to_every_subscriber() {
    let serve = ServeConfig {
        publish_every_packs: 2,
        ring: 4096,
        fan_out: Some(2), // 3 serving ranks: root 0 feeds frontier {1, 2}
        ..ServeConfig::default()
    };
    let fanout_before = opmr::obs::registry()
        .snapshot()
        .counter_family("reduce_fanout_records_total");
    // Every subscriber's full (version -> bytes) log, one slot per rank.
    type VersionLog = Vec<(u64, Vec<u8>)>;
    let logs: Arc<Mutex<Vec<VersionLog>>> = Arc::new(Mutex::new(vec![Vec::new(); 4]));
    let sink = Arc::clone(&logs);
    let next_slot = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    // 4 ring ranks + 4 subscribers.
    let gate = Arc::new(std::sync::Barrier::new(8));
    let sub_gate = Arc::clone(&gate);
    let outcome = Session::builder()
        .analyzer_ranks(3)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring", 4, ring_app(400, Some(gate)))
        .client("subscribers", 4, move |c| {
            let slot = next_slot.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            c.subscribe().unwrap();
            c.version_info().unwrap();
            sub_gate.wait();
            let mut log = Vec::new();
            loop {
                let u = c.next_update().unwrap().expect("stream ended early");
                let held = c.shard_report(u.shard).expect("update landed a report");
                log.push((u.version, held.encoded.to_vec()));
                if u.finished {
                    break;
                }
            }
            sink.lock()[slot] = log;
        })
        .run()
        .unwrap();

    let store = outcome.snapshot_store.expect("serving retains the store");
    let logs = logs.lock();

    // Every subscriber converged on the exact stored bytes at every
    // version it observed — the tree forwarded root-framed deltas
    // verbatim, so there is nothing rank-dependent to diverge on.
    for (slot, log) in logs.iter().enumerate() {
        assert!(
            log.len() >= 2,
            "subscriber {slot} saw too few updates ({})",
            log.len()
        );
        for (version, bytes) in log {
            let entry = store.get(*version).expect("ring retained everything");
            assert_eq!(
                bytes.as_slice(),
                entry.encoded.as_ref(),
                "subscriber {slot} diverged at version {version}"
            );
        }
        let (last_v, _) = log.last().unwrap();
        assert_eq!(*last_v, store.current().unwrap().version);
    }

    // The replication provably rode the overlay: the root framed each
    // update once and the per-level fan-out counters moved.
    let fanout_after = opmr::obs::registry()
        .snapshot()
        .counter_family("reduce_fanout_records_total");
    assert!(
        fanout_after > fanout_before,
        "tree fan-out counters never moved"
    );
    let fanned: u64 = outcome
        .serve_stats
        .iter()
        .map(|(_, s)| s.fanout_records)
        .sum();
    assert!(fanned > 0, "the root never published onto the tree");
    let delivered: u64 = outcome.serve_stats.iter().map(|(_, s)| s.deltas_sent).sum();
    assert!(delivered > 0, "frontier delivered no tree deltas");
}

#[test]
fn tenant_quotas_reject_typed_and_counted_without_collateral() {
    use opmr::serve::{QuotaKind, TenantQuota};

    let serve = ServeConfig {
        publish_every_packs: 2,
        ring: 4096,
        tenant_quotas: vec![(
            "greedy".to_string(),
            TenantQuota {
                max_subscriptions: 1,
                max_queries_per_sec: 0,
                max_delta_bytes_per_sec: 0,
            },
        )],
        ..ServeConfig::default()
    };
    let rejected = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let admitted = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let polite_done = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let rej = Arc::clone(&rejected);
    let adm = Arc::clone(&admitted);
    let pol = Arc::clone(&polite_done);
    // A single serving rank so the subscription cap is a global fact,
    // not a per-serving-rank one.
    let outcome = Session::builder()
        .analyzer_ranks(1)
        .coupling(Coupling::Serving)
        .serve_config(serve)
        .stream_config(StreamConfig::new(1024, 4, Balance::None))
        .app("ring", 4, ring_app(200, None))
        .client_try("greedy", 3, move |c| {
            c.subscribe()?;
            // The refusal is typed and arrives on the update stream; an
            // admitted subscription folds updates through to the final.
            loop {
                match c.next_update() {
                    Err(ServeError::QuotaExceeded(QuotaKind::Subscriptions)) => {
                        rej.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Ok(());
                    }
                    Ok(Some(u)) if u.finished => {
                        adm.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Ok(());
                    }
                    Ok(Some(_)) => {}
                    Ok(None) => return Err("stream ended before final".into()),
                    Err(e) => return Err(e.into()),
                }
            }
        })
        .client_try("polite", 2, move |c| {
            c.subscribe()?;
            loop {
                match c.next_update()? {
                    Some(u) if u.finished => break,
                    Some(_) => {}
                    None => return Err("stream ended before final".into()),
                }
            }
            c.version_info()?;
            pol.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        })
        .run()
        .unwrap();

    // Exactly one greedy rank held the sole subscription slot; the two
    // others were refused with the typed subscription-quota signal.
    assert_eq!(rejected.load(std::sync::atomic::Ordering::Relaxed), 2);
    assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), 1);
    // Compliant tenants were untouched: both polite ranks subscribed,
    // folded to the final version and kept querying.
    assert_eq!(polite_done.load(std::sync::atomic::Ordering::Relaxed), 2);

    // The refusals are visible in the serving stats — typed on the wire
    // AND counted server-side.
    let stats_rejections: u64 = outcome
        .serve_stats
        .iter()
        .map(|(_, s)| s.quota_rejections)
        .sum();
    assert_eq!(stats_rejections, 2);
}

#[test]
fn clients_require_serving_coupling() {
    let res = Session::builder()
        .app("ring", 2, ring_app(4, None))
        .client("observer", 1, |_c| {})
        .run();
    assert!(matches!(res, Err(opmr::core::SessionError::Config(_))));
}
