//! Cross-crate integration tests: the full online pipeline against ground
//! truth, and the online-vs-post-mortem equivalence the paper claims
//! ("streamed analysis is very close to post-mortem analysis").

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::analysis::report;
use opmr::core::{LiveOptions, Session, TraceSession};
use opmr::events::EventKind;
use opmr::netsim::tera100;
use opmr::runtime::{Src, TagSel};
use opmr::workloads::{Benchmark, Class};

#[test]
fn online_profile_matches_ground_truth_counts() {
    const ROUNDS: usize = 40;
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app("counted", 6, move |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for i in 0..ROUNDS {
                let req = imp
                    .isend(&w, (r + 1) % n, i as i32, vec![1u8; 100])
                    .unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(i as i32))
                    .unwrap();
                imp.wait(req).unwrap();
            }
            imp.barrier(&w).unwrap();
        })
        .run()
        .unwrap();

    let app = &outcome.report.apps[0];
    let p = &app.profile;
    // Exact ground truth: 6 ranks × 40 rounds of isend/recv/wait + barrier
    // + init + finalize.
    assert_eq!(p.kind(EventKind::Isend).unwrap().hits, 6 * ROUNDS as u64);
    assert_eq!(p.kind(EventKind::Recv).unwrap().hits, 6 * ROUNDS as u64);
    assert_eq!(p.kind(EventKind::Wait).unwrap().hits, 6 * ROUNDS as u64);
    assert_eq!(p.kind(EventKind::Barrier).unwrap().hits, 6);
    assert_eq!(p.kind(EventKind::Init).unwrap().hits, 6);
    assert_eq!(p.kind(EventKind::Finalize).unwrap().hits, 6);
    assert_eq!(
        p.kind(EventKind::Isend).unwrap().bytes,
        6 * ROUNDS as u64 * 100
    );
    // Topology: a clean directed ring.
    assert_eq!(app.topology.edge_count(), 6);
    for r in 0..6u32 {
        let w = app.topology.edge(r, (r + 1) % 6).unwrap();
        assert_eq!(w.hits, ROUNDS as u64);
        assert_eq!(w.bytes, ROUNDS as u64 * 100);
    }
    // Recorder totals equal what the engine saw (nothing lost in flight).
    let produced: u64 = outcome.recorders.iter().map(|(_, s)| s.events).sum();
    assert_eq!(produced, app.events);
}

#[test]
fn online_equals_post_mortem() {
    // The same deterministic workload through both chains.
    let m = tera100();
    let make = || {
        Benchmark::Cg
            .build(Class::S, 8, &m, Some(3))
            .expect("CG.S @8")
    };

    let online = Session::builder()
        .analyzer_ranks(2)
        .app_workload("cg", make(), LiveOptions::default())
        .run()
        .unwrap();

    let dir = std::env::temp_dir().join(format!("opmr_equiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace = TraceSession::new(&dir)
        .app_workload("cg", make(), LiveOptions::default())
        .run()
        .unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    let a = &online.report.apps[0];
    let b = &trace.report.apps[0];
    assert_eq!(a.events, b.events);
    for kind in a.profile.kinds() {
        let (sa, sb) = (a.profile.kind(kind).unwrap(), b.profile.kind(kind));
        let sb = sb.unwrap_or_else(|| panic!("{} missing post-mortem", kind.name()));
        assert_eq!(sa.hits, sb.hits, "{} hits", kind.name());
        assert_eq!(sa.bytes, sb.bytes, "{} bytes", kind.name());
    }
    // Identical communication matrices.
    assert_eq!(a.topology.edge_count(), b.topology.edge_count());
    for ((s, d), w) in a.topology.sorted_edges() {
        let other = b.topology.edge(s, d).expect("edge present post-mortem");
        assert_eq!(w.hits, other.hits);
        assert_eq!(w.bytes, other.bytes);
    }
    // And the online chain left no trace bytes behind (by construction),
    // while the baseline did write to disk.
    assert!(trace.trace_bytes > 0);
}

#[test]
fn every_benchmark_runs_live_end_to_end() {
    let m = tera100();
    for (bench, ranks) in [
        (Benchmark::Bt, 9usize),
        (Benchmark::Sp, 9),
        (Benchmark::Lu, 8),
        (Benchmark::Cg, 8),
        (Benchmark::Ft, 8),
        (Benchmark::EulerMhd, 9),
    ] {
        let w = bench.build(Class::S, ranks, &m, Some(2)).expect("builds");
        let expected_events = w.total_comm_ops();
        let outcome = Session::builder()
            .analyzer_ranks(2)
            .app_workload(bench.name(), w, LiveOptions::default())
            .run()
            .unwrap_or_else(|e| panic!("{} live run failed: {e}", bench.name()));
        let app = &outcome.report.apps[0];
        assert_eq!(app.ranks as usize, ranks, "{}", bench.name());
        // comm ops + init/finalize per rank; Exchange maps to 1 sendrecv.
        let mpi_events: u64 = app
            .profile
            .kinds()
            .iter()
            .filter(|k| k.is_mpi() && !matches!(k, EventKind::Init | EventKind::Finalize))
            .map(|&k| app.profile.kind(k).unwrap().hits)
            .sum();
        assert_eq!(
            mpi_events,
            expected_events,
            "{}: every generated comm op must be observed",
            bench.name()
        );
        assert_eq!(app.decode_errors, 0);
    }
}

#[test]
fn multi_app_report_renders_everywhere() {
    let m = tera100();
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app_workload(
            "cg",
            Benchmark::Cg.build(Class::S, 8, &m, Some(2)).unwrap(),
            LiveOptions::default(),
        )
        .app_workload(
            "euler",
            Benchmark::EulerMhd.build(Class::S, 6, &m, Some(2)).unwrap(),
            LiveOptions::default(),
        )
        .run()
        .unwrap();
    assert_eq!(outcome.report.apps.len(), 2);

    let md = report::to_markdown(&outcome.report);
    assert!(md.contains("## Application `cg`"));
    assert!(md.contains("## Application `euler`"));
    let tex = report::to_latex(&outcome.report);
    assert_eq!(tex.matches("\\chapter{").count(), 2);

    let dir = std::env::temp_dir().join(format!("opmr_render_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let paths = report::write_artifacts(&outcome.report, &dir).unwrap();
    assert!(paths.len() >= 8, "md, tex, dots, matrices, pgms");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn analyzer_ratio_sweep_preserves_results() {
    // The writer/reader ratio changes resources, never results.
    let m = tera100();
    let mut baselines: Option<u64> = None;
    for analyzers in [1usize, 2, 4] {
        let outcome = Session::builder()
            .analyzer_ranks(analyzers)
            .app_workload(
                "lu",
                Benchmark::Lu.build(Class::S, 8, &m, Some(2)).unwrap(),
                LiveOptions::default(),
            )
            .run()
            .unwrap();
        let events = outcome.report.apps[0].events;
        match baselines {
            None => baselines = Some(events),
            Some(b) => assert_eq!(events, b, "ratio 1:{analyzers} changed observed events"),
        }
    }
}

#[test]
fn self_monitoring_streams_registry_through_the_pipeline() {
    // Dogfooding: with self-monitoring enabled, a hidden one-rank app
    // samples the process-wide observability registry and streams the
    // samples through the same VMPI stream machinery those metrics
    // measure, landing in the analysis engine like any other profiled
    // application.
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app("ring", 4, |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for i in 0..20 {
                let req = imp.isend(&w, (r + 1) % n, i, vec![3u8; 512]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(i))
                    .unwrap();
                imp.wait(req).unwrap();
            }
            imp.barrier(&w).unwrap();
        })
        .self_monitor(std::time::Duration::from_millis(2))
        .run()
        .unwrap();

    // The monitor shows up as one more application chapter.
    assert_eq!(outcome.report.apps.len(), 2);
    let obs_app = outcome
        .report
        .apps
        .iter()
        .find(|a| a.name == opmr::core::SELF_MONITOR_APP)
        .expect("self-monitor chapter");
    assert_eq!(obs_app.ranks, 1);

    // Its profile is exclusively metric samples (Marker events keyed by
    // registry id) plus the facade's own Init/Finalize pair.
    let markers = obs_app.profile.kind(EventKind::Marker).unwrap().hits;
    assert!(markers > 0, "no metric samples reached the engine");
    assert_eq!(markers, obs_app.events - 2, "init + finalize + markers");

    // The samples travelled a real stream: the monitor's recorder packed
    // them onto the wire, and the engine decoded every one of them.
    let (_, obs_rec) = outcome
        .recorders
        .iter()
        .find(|(n, _)| n == opmr::core::SELF_MONITOR_APP)
        .expect("self-monitor recorder stats");
    assert!(obs_rec.packs >= 1);
    assert!(obs_rec.wire_bytes > 0);
    assert_eq!(obs_rec.events, obs_app.events, "events lost in flight");

    // And the registry snapshot on the outcome saw the whole session's
    // stream traffic, the monitor's included.
    let m = &outcome.metrics;
    assert!(m.counter("vmpi_stream_blocks_sent_total").unwrap() > 0);
    assert!(m.counter("vmpi_stream_write_bytes_total").unwrap() > obs_rec.wire_bytes);
    assert!(m.counter("runtime_envelopes_delivered_total").unwrap() > 0);
}
