//! System-level property tests: arbitrary valid workloads must simulate
//! deadlock-free with conserved accounting, and live sessions must never
//! lose events.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::core::{LiveOptions, Session};
use opmr::netsim::{simulate, tera100, ToolModel};
use opmr::workloads::{Benchmark, Class};
use proptest::prelude::*;

fn arb_bench_ranks() -> impl Strategy<Value = (Benchmark, usize)> {
    prop_oneof![
        (1usize..=5).prop_map(|k| (Benchmark::Bt, k * k)),
        (1usize..=5).prop_map(|k| (Benchmark::Sp, k * k)),
        (1usize..=20).prop_map(|n| (Benchmark::Lu, n)),
        (0u32..=5).prop_map(|m| (Benchmark::Cg, 1usize << m)),
        (1usize..=16).prop_map(|n| (Benchmark::Ft, n)),
        (1usize..=20).prop_map(|n| (Benchmark::EulerMhd, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every valid (benchmark, rank count, class, iters) simulates without
    /// deadlock; instrumented time never undercuts reference time; event
    /// accounting matches the static op census.
    #[test]
    fn any_valid_workload_simulates(
        (bench, ranks) in arb_bench_ranks(),
        class_idx in 0usize..2,
        iters in 1u32..4,
    ) {
        let class = [Class::S, Class::W][class_idx];
        let m = tera100();
        let w = bench.build(class, ranks, &m, Some(iters)).expect("valid combination");
        let reference = simulate(&w, &m, &ToolModel::None).expect("no deadlock");
        prop_assert!(reference.elapsed_s > 0.0);
        prop_assert_eq!(reference.stats.comm_ops, w.total_comm_ops());

        let online = simulate(&w, &m, &ToolModel::online_coupling(1.0)).expect("no deadlock");
        prop_assert!(online.elapsed_s >= reference.elapsed_s * 0.999);
        prop_assert!(online.stats.events > 0);
        prop_assert_eq!(online.stats.event_bytes, online.stats.events * 48);

        // Determinism.
        let again = simulate(&w, &m, &ToolModel::None).expect("no deadlock");
        prop_assert_eq!(again.per_rank_s, reference.per_rank_s);
    }

    /// Live sessions: whatever the instrumented ranks record arrives intact
    /// at the analyzer (no loss, no duplication), for arbitrary small
    /// topologies and analyzer counts.
    #[test]
    fn live_sessions_conserve_events(
        ranks in 2usize..7,
        analyzers in 1usize..4,
        rounds in 1usize..12,
    ) {
        let outcome = Session::builder()
            .analyzer_ranks(analyzers)
            .app("prop", ranks, move |imp| {
                let w = imp.comm_world();
                let (r, n) = (imp.rank(), imp.size());
                for i in 0..rounds {
                    let req = imp.isend(&w, (r + 1) % n, i as i32, vec![0u8; 64]).unwrap();
                    imp.recv(
                        &w,
                        opmr::runtime::Src::Rank((r + n - 1) % n),
                        opmr::runtime::TagSel::Tag(i as i32),
                    )
                    .unwrap();
                    imp.wait(req).unwrap();
                }
            })
            .run()
            .unwrap();
        let app = &outcome.report.apps[0];
        let produced: u64 = outcome.recorders.iter().map(|(_, s)| s.events).sum();
        prop_assert_eq!(produced, app.events);
        // init + finalize + 3 events per round per rank.
        prop_assert_eq!(app.events as usize, ranks * (2 + 3 * rounds));
        prop_assert_eq!(app.decode_errors, 0);
    }

    /// Live workload runs conserve the generated op census.
    #[test]
    fn live_workloads_observe_every_op(
        (bench, ranks) in prop_oneof![
            Just((Benchmark::Cg, 4usize)),
            Just((Benchmark::EulerMhd, 6)),
            Just((Benchmark::Lu, 6)),
            Just((Benchmark::Ft, 4)),
        ],
        iters in 1u32..4,
    ) {
        let m = tera100();
        let w = bench.build(Class::S, ranks, &m, Some(iters)).expect("valid");
        let expect = w.total_comm_ops();
        let outcome = Session::builder()
            .analyzer_ranks(2)
            .app_workload("p", w, LiveOptions::default())
            .run()
            .unwrap();
        let app = &outcome.report.apps[0];
        let mpi_events: u64 = app
            .profile
            .kinds()
            .iter()
            .filter(|k| {
                k.is_mpi()
                    && !matches!(
                        k,
                        opmr::events::EventKind::Init | opmr::events::EventKind::Finalize
                    )
            })
            .map(|&k| app.profile.kind(k).unwrap().hits)
            .sum();
        prop_assert_eq!(mpi_events, expect);
    }
}
