//! Integration tests for the extension features: wait-state analysis,
//! selective-trace proxy, SIONlib-style containers and custom knowledge
//! sources through the session façade.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr::analysis::Selection;
use opmr::core::{LiveOptions, Session, TraceSession};
use opmr::events::EventKind;
use opmr::instrument::read_sion;
use opmr::netsim::tera100;
use opmr::runtime::{Src, TagSel};
use opmr::workloads::{Benchmark, Class};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("opmr_ext_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn waitstate_detects_engineered_late_sender() {
    // Rank 0 computes ~5 ms before sending; rank 1 posts its receive
    // immediately: the wait-state module must attribute ~5 ms to rank 0.
    let outcome = Session::builder()
        .analyzer_ranks(1)
        .waitstate()
        .app("late", 2, |imp| {
            let w = imp.comm_world();
            if imp.rank() == 0 {
                imp.compute(std::time::Duration::from_millis(5)).unwrap();
                imp.send(&w, 1, 0, vec![1u8; 64]).unwrap();
            } else {
                imp.recv(&w, Src::Rank(0), TagSel::Tag(0)).unwrap();
            }
        })
        .run()
        .unwrap();
    let ws = outcome.report.apps[0]
        .waitstate
        .as_ref()
        .expect("waitstate enabled");
    assert_eq!(ws.matched, 1);
    assert_eq!(ws.unmatched, 0);
    assert!(
        ws.total_late_sender_ns > 3_000_000,
        "engineered 5 ms late sender, saw {} ns",
        ws.total_late_sender_ns
    );
    assert_eq!(ws.worst_culprits(1)[0].0, 0, "rank 0 is the culprit");
    // And the report renders it.
    let md = opmr::analysis::report::to_markdown(&outcome.report);
    assert!(md.contains("Wait states"));
    assert!(md.contains("late-sender culprit"));
}

#[test]
fn waitstate_balanced_ring_has_little_wait() {
    let outcome = Session::builder()
        .waitstate()
        .app("balanced", 4, |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for i in 0..20 {
                let req = imp.isend(&w, (r + 1) % n, i, vec![0u8; 32]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(i))
                    .unwrap();
                imp.wait(req).unwrap();
            }
        })
        .run()
        .unwrap();
    let ws = outcome.report.apps[0].waitstate.as_ref().unwrap();
    assert_eq!(ws.matched, 80);
    // Balanced ring: residual wait is scheduling noise. Assert per-transfer
    // mean well under the 5 ms engineered in the late-sender test.
    let mean = ws.total_late_sender_ns as f64 / ws.matched as f64;
    assert!(
        mean < 2_000_000.0,
        "mean late-sender {mean} ns per transfer"
    );
}

#[test]
fn trace_proxy_writes_selected_events_alongside_online_analysis() {
    let dir = tmpdir("proxy");
    let outcome = Session::builder()
        .trace_proxy(
            &dir,
            Selection {
                kinds: Some(vec![EventKind::Send]),
                ..Selection::default()
            },
        )
        .app("sel", 3, |imp| {
            let w = imp.comm_world();
            let r = imp.rank();
            if r > 0 {
                imp.send(&w, 0, 1, vec![0u8; 128]).unwrap();
            } else {
                for _ in 0..2 {
                    imp.recv(&w, Src::Any, TagSel::Any).unwrap();
                }
            }
            imp.barrier(&w).unwrap();
        })
        .run()
        .unwrap();
    let (path, seen, written) = outcome.report.apps[0].proxy.as_ref().expect("proxy on");
    assert_eq!(*written, 2, "exactly the two sends survive");
    assert!(*seen > *written, "selection actually filtered");
    let packs = opmr::analysis::read_proxy_trace(path).unwrap();
    let events: Vec<_> = packs.iter().flat_map(|p| p.events.iter()).collect();
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| e.kind == EventKind::Send));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sion_container_equals_per_rank_traces() {
    let m = tera100();
    let make = || Benchmark::EulerMhd.build(Class::S, 6, &m, Some(2)).unwrap();

    let dir_files = tmpdir("files");
    let per_rank = TraceSession::new(&dir_files)
        .app_workload("euler", make(), LiveOptions::default())
        .run()
        .unwrap();

    let dir_sion = tmpdir("sion");
    let sion = TraceSession::new(&dir_sion)
        .sion()
        .app_workload("euler", make(), LiveOptions::default())
        .run()
        .unwrap();

    // One container instead of six files.
    let count_files = |d: &PathBuf, ext: &str| {
        std::fs::read_dir(d)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == ext)
            })
            .count()
    };
    assert_eq!(count_files(&dir_files, "opmr"), 6);
    assert_eq!(count_files(&dir_sion, "sion"), 1);
    assert_eq!(count_files(&dir_sion, "opmr"), 0);

    // Identical analysis results through both containers.
    let (a, b) = (&per_rank.report.apps[0], &sion.report.apps[0]);
    assert_eq!(a.events, b.events);
    for kind in a.profile.kinds() {
        assert_eq!(
            a.profile.kind(kind).map(|s| (s.hits, s.bytes)),
            b.profile.kind(kind).map(|s| (s.hits, s.bytes)),
            "{}",
            kind.name()
        );
    }
    // The multiplexed container demultiplexes cleanly.
    let chunks = read_sion(&dir_sion.join("app0.sion")).unwrap();
    assert_eq!(chunks.len(), 6);
    assert!(chunks.iter().all(|c| !c.is_empty()));

    std::fs::remove_dir_all(&dir_files).unwrap();
    std::fs::remove_dir_all(&dir_sion).unwrap();
}

#[test]
fn custom_ks_via_engine_setup() {
    use opmr::blackboard::{type_id, KnowledgeSource};
    use opmr::events::EventPack;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    let outcome = Session::builder()
        .engine_setup(move |engine| {
            let ty = type_id("app0", "events");
            let c = Arc::clone(&c2);
            engine.blackboard().register(KnowledgeSource::new(
                "counter",
                vec![ty],
                move |_bb, entries| {
                    if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                        c.fetch_add(pack.events.len() as u64, Ordering::Relaxed);
                    }
                },
            ));
        })
        .app("plain", 2, |imp| {
            imp.barrier(&imp.comm_world()).unwrap();
        })
        .run()
        .unwrap();
    assert_eq!(
        count.load(std::sync::atomic::Ordering::Relaxed),
        outcome.report.apps[0].events,
        "custom KS saw every event the stock profiler saw"
    );
}

#[test]
fn distributed_analyzer_equals_shared_engine() {
    // Section VI: per-analyzer-rank engines + MPI merge must produce the
    // same aggregates as the shared engine.
    let m = tera100();
    let make = || Benchmark::Cg.build(Class::S, 8, &m, Some(2)).unwrap();

    let shared = Session::builder()
        .analyzer_ranks(3)
        .waitstate()
        .app_workload("cg", make(), LiveOptions::default())
        .run()
        .unwrap();
    let dist = Session::builder()
        .analyzer_ranks(3)
        .waitstate()
        .distributed()
        .app_workload("cg", make(), LiveOptions::default())
        .run()
        .unwrap();

    let (a, b) = (&shared.report.apps[0], &dist.report.apps[0]);
    assert_eq!(a.events, b.events);
    assert_eq!(a.packs, b.packs);
    assert_eq!(a.name, b.name);
    // Two separate live runs: counts and volumes are deterministic, call
    // durations are wall-clock and are not compared.
    for kind in a.profile.kinds() {
        assert_eq!(
            a.profile.kind(kind).map(|s| (s.hits, s.bytes)),
            b.profile.kind(kind).map(|s| (s.hits, s.bytes)),
            "{}",
            kind.name()
        );
    }
    assert_eq!(a.topology.edge_count(), b.topology.edge_count());
    for ((s, d), w) in a.topology.sorted_edges() {
        assert_eq!(
            b.topology.edge(s, d).map(|x| (x.hits, x.bytes)),
            Some((w.hits, w.bytes))
        );
    }
    // Wait-state matching is channel-local, so distributed matching finds
    // the same transfers (each writer's events land on one analyzer rank).
    let (wa, wb) = (a.waitstate.as_ref().unwrap(), b.waitstate.as_ref().unwrap());
    assert_eq!(wa.matched + wa.unmatched, wb.matched + wb.unmatched);
}
