//! Backend-parameterized transport conformance suite.
//!
//! Every scenario here runs twice — once on the in-process backend
//! (`Launcher::run`) and once on the socket backend
//! (`Launcher::run_multiproc`, its "processes" hosted as threads of this
//! test process over a Unix-domain mesh) — with **identical assertions**.
//! The suite pins the delivery contract the [`opmr::runtime::Transport`]
//! trait promises, so a new backend is proven by adding one line to the
//! `conformance!` list, not by writing new tests:
//!
//! * envelope ordering: FIFO per `(source, tag)`, no overtaking;
//! * mailbox depth and back-pressure: eager sends complete immediately,
//!   over-limit sends block until the receiver posts (rendezvous);
//! * the stream open/close/EOF protocol end to end;
//! * a crashed writer surfaces as **exactly one** typed `PeerLost`;
//! * a seeded `FaultPlan` replays identically (and identically across
//!   backends — injection sits above the transport).
//!
//! One scenario runs the socket backend across two genuine OS processes
//! (the test binary re-executes itself) to prove the wire protocol does
//! not secretly rely on shared memory.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

mod common;
use common::{fresh_unix_endpoint, run_socket_threads, run_socket_threads_with};

use opmr::events::Compression;
use opmr::runtime::{
    Endpoint, FaultPlan, Launcher, MultiprocTopology, PartitionAssign, RankFailure, SocketConfig,
    Src, TagSel,
};
use opmr::vmpi::stream::data_tag_range;
use opmr::vmpi::{Balance, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which transport hosts the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    InProc,
    /// Socket mesh over a Unix-domain endpoint, hosted as threads of this
    /// test process (each thread runs a full `run_multiproc`, exactly
    /// what an OS process would).
    Socket,
}

/// Runs the job on the requested backend; returns the failed ranks
/// (empty = clean run). Socket jobs get one "process" per partition so
/// every cross-partition edge crosses the wire.
fn run_job(backend: Backend, launcher: Launcher) -> Vec<RankFailure> {
    match backend {
        Backend::InProc => match launcher.run() {
            Ok(()) => Vec::new(),
            Err(e) => e.failures,
        },
        Backend::Socket => {
            let procs = launcher.partition_count().max(2);
            run_socket_threads(launcher, procs)
        }
    }
}

/// Generates an `inproc_*` and a `socket_*` test per scenario. The CI
/// backend matrix selects one half via `cargo test inproc_` / `socket_`.
macro_rules! conformance {
    ($($name:ident),* $(,)?) => {
        mod inproc {
            use super::*;
            $(#[test] fn $name() { super::$name(Backend::InProc); })*
        }
        mod socket {
            use super::*;
            $(#[test] fn $name() { super::$name(Backend::Socket); })*
        }
    };
}

conformance!(
    envelopes_are_fifo_per_source_and_tag,
    eager_sends_complete_without_a_receiver,
    rendezvous_blocks_until_the_receiver_posts,
    mailbox_absorbs_a_burst_deeper_than_the_eager_window,
    stream_open_close_eof_protocol,
    writer_crash_is_exactly_one_typed_peer_lost,
    seeded_fault_plan_replays_identically,
    compressed_session_delivers_identically,
    legacy_peer_negotiates_session_down,
    hostile_codec_advertisement_is_rejected_and_counted,
);

/// FNV-1a over a byte stream: cheap, order-sensitive digest.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Scenario 1: envelope ordering.
// ---------------------------------------------------------------------

/// Three senders each interleave two tag lanes to one sink; the sink
/// drains each `(source, tag)` lane and must observe every lane's
/// sequence numbers strictly in send order (MPI non-overtaking).
fn envelopes_are_fifo_per_source_and_tag(backend: Backend) {
    const SENDERS: usize = 3;
    const PER_LANE: u32 = 50;
    let sink_rank = SENDERS; // world layout: senders 0..3, sink 3

    let launcher = Launcher::new()
        .partition("senders", SENDERS, move |mpi| {
            let w = mpi.world();
            for seq in 0..PER_LANE {
                for tag in [1i32, 2] {
                    let mut payload = seq.to_le_bytes().to_vec();
                    payload.push(tag as u8);
                    mpi.send(&w, sink_rank, tag, payload).unwrap();
                }
            }
        })
        .partition("sink", 1, move |mpi| {
            let w = mpi.world();
            // Drain lanes in a fixed interleaving so ordering bugs in
            // *either* lane of *either* source surface deterministically.
            for seq in 0..PER_LANE {
                for src in 0..SENDERS {
                    for tag in [1i32, 2] {
                        let (st, data) = mpi.recv(&w, Src::Rank(src), TagSel::Tag(tag)).unwrap();
                        assert_eq!(st.source, src);
                        assert_eq!(st.tag, tag);
                        let got = u32::from_le_bytes(data[0..4].try_into().unwrap());
                        assert_eq!(
                            got, seq,
                            "lane (src {src}, tag {tag}) overtook: got {got}, want {seq}"
                        );
                        assert_eq!(data[4], tag as u8);
                    }
                }
            }
        });
    assert!(run_job(backend, launcher).is_empty());
}

// ---------------------------------------------------------------------
// Scenario 2-4: mailbox depth and back-pressure.
// ---------------------------------------------------------------------

/// Small sends are eager: the send completes before any receive is
/// posted, on every backend.
fn eager_sends_complete_without_a_receiver(backend: Backend) {
    let launcher = Launcher::new()
        .partition("a", 1, |mpi| {
            let w = mpi.world();
            let mut req = mpi.isend(&w, 1, 5, vec![1u8; 128]).unwrap();
            assert!(
                req.is_complete(),
                "a 128-byte send is below the eager limit and must not wait"
            );
            req.wait().unwrap();
            mpi.barrier(&w).unwrap();
        })
        .partition("b", 1, |mpi| {
            let w = mpi.world();
            // Receive only after the barrier proves the send completed.
            mpi.barrier(&w).unwrap();
            let (_, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(5)).unwrap();
            assert_eq!(data.len(), 128);
        });
    assert!(run_job(backend, launcher).is_empty());
}

/// Over-limit sends use the rendezvous protocol: the sender observes real
/// back-pressure until the receiver posts. Sender and receiver share a
/// partition, so the pair is colocated on every backend — rendezvous is a
/// *local* contract (remote edges turn socket flow control into the
/// back-pressure instead).
fn rendezvous_blocks_until_the_receiver_posts(backend: Backend) {
    const BIG: usize = 256 * 1024; // default eager limit is 64 KiB
    let launcher = Launcher::new()
        .partition("pair", 2, move |mpi| {
            let w = mpi.world();
            if mpi.world_rank() == 0 {
                let mut req = mpi.isend(&w, 1, 9, vec![0xAB; BIG]).unwrap();
                // The receiver sleeps before posting; a completed request
                // here would mean the backend broke the rendezvous gate.
                std::thread::sleep(Duration::from_millis(30));
                assert!(
                    !req.is_complete(),
                    "an over-limit send completed with no receiver posted"
                );
                req.wait().unwrap();
            } else {
                std::thread::sleep(Duration::from_millis(60));
                let (_, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(9)).unwrap();
                assert_eq!(data.len(), BIG);
                assert!(data.iter().all(|&b| b == 0xAB));
            }
        })
        // Second partition so the socket run still spans two processes.
        .partition("bystander", 1, |_mpi| {});
    assert!(run_job(backend, launcher).is_empty());
}

/// A sink that never yields mid-burst still absorbs hundreds of eager
/// envelopes: mailbox depth is bounded by memory, not by a window, and
/// delivery never silently drops under burst pressure.
fn mailbox_absorbs_a_burst_deeper_than_the_eager_window(backend: Backend) {
    const BURST: u32 = 400;
    let launcher = Launcher::new()
        .partition("blaster", 1, move |mpi| {
            let w = mpi.world();
            for seq in 0..BURST {
                mpi.send(&w, 1, 3, seq.to_le_bytes().to_vec()).unwrap();
            }
            // Only now allow the sink to start draining.
            mpi.send(&w, 1, 4, vec![]).unwrap();
        })
        .partition("sink", 1, move |mpi| {
            let w = mpi.world();
            // Wait for the burst to be fully sent before touching tag 3:
            // everything below sat queued in the mailbox.
            mpi.recv(&w, Src::Rank(0), TagSel::Tag(4)).unwrap();
            for seq in 0..BURST {
                let (_, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(3)).unwrap();
                assert_eq!(u32::from_le_bytes(data[..].try_into().unwrap()), seq);
            }
        });
    assert!(run_job(backend, launcher).is_empty());
}

// ---------------------------------------------------------------------
// Scenario 5: stream open / close / EOF.
// ---------------------------------------------------------------------

/// The vmpi stream protocol — open handshake, data blocks, close, reader
/// EOF — end to end across partitions (and therefore across the wire on
/// the socket backend).
fn stream_open_close_eof_protocol(backend: Backend) {
    const BLOCK: usize = 64;
    const BLOCKS: usize = 100;
    let seen = Arc::new(Mutex::new((0u64, 0usize))); // (digest, blocks)
    let seen2 = Arc::clone(&seen);

    let launcher = Launcher::new()
        .partition("writer", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_read_timeout(Duration::from_secs(20));
            let mut st = WriteStream::open_to(&v, vec![1], cfg, 1).unwrap();
            for i in 0..BLOCKS {
                let block: Vec<u8> = (0..BLOCK).map(|j| (i + j) as u8).collect();
                st.write(&block).unwrap();
            }
            st.close().unwrap();
        })
        .partition("reader", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_read_timeout(Duration::from_secs(20));
            let mut st = ReadStream::open_from(&v, vec![0], cfg, 1).unwrap();
            let mut digest = 0u64;
            let mut blocks = 0usize;
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        digest = fnv1a(digest, &b.data);
                        blocks += 1;
                    }
                    Ok(None) => break, // EOF: close protocol completed
                    Err(e) => panic!("clean stream must not fail: {e}"),
                }
            }
            *seen2.lock().unwrap() = (digest, blocks);
        });
    assert!(run_job(backend, launcher).is_empty());

    let (digest, blocks) = *seen.lock().unwrap();
    assert_eq!(blocks, BLOCKS, "every block arrives before EOF");
    // The expected digest, computed independently of any transport.
    let mut want = 0u64;
    for i in 0..BLOCKS {
        let block: Vec<u8> = (0..BLOCK).map(|j| (i + j) as u8).collect();
        want = fnv1a(want, &block);
    }
    assert_eq!(digest, want, "stream bytes must survive the wire intact");
}

// ---------------------------------------------------------------------
// Scenario 6: writer crash → exactly one typed PeerLost.
// ---------------------------------------------------------------------

/// The fault layer kills one of two writers mid-stream. The reader (a
/// different partition — a different process on the socket backend) must
/// observe **exactly one** `VmpiError::PeerLost` naming the crashed rank,
/// keep the survivor's bytes intact, and reach EOF without hanging.
fn writer_crash_is_exactly_one_typed_peer_lost(backend: Backend) {
    const BLOCK: usize = 64;
    const BLOCKS: usize = 120;
    const CRASH_RANK: usize = 1;
    const AFTER_SENDS: u64 = 3;
    let lost = Arc::new(Mutex::new(Vec::<usize>::new()));
    let lost2 = Arc::clone(&lost);
    let survivor = Arc::new(Mutex::new(HashMap::<usize, u64>::new()));
    let survivor2 = Arc::clone(&survivor);

    let launcher = Launcher::new()
        .fault_plan(
            FaultPlan::seeded(707)
                .with_crash(CRASH_RANK, AFTER_SENDS)
                .with_only_tags(data_tag_range()),
        )
        .partition("w", 2, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_retries(2, Duration::from_micros(50));
            let mut st = WriteStream::open_to(&v, vec![2], cfg, 1).unwrap();
            for i in 0..BLOCKS {
                match st.write(&[v.rank() as u8; BLOCK]) {
                    Ok(()) => {}
                    Err(VmpiError::Timeout) => {
                        assert_eq!(v.rank(), CRASH_RANK);
                        assert!(i as u64 >= AFTER_SENDS);
                        st.abort(); // die without the close protocol
                        return;
                    }
                    Err(e) => panic!("unexpected writer error: {e}"),
                }
            }
            assert_ne!(v.rank(), CRASH_RANK, "crashed writer cannot finish");
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let mut st = ReadStream::open_from(&v, vec![0, 1], cfg, 1).unwrap();
            let mut bytes = HashMap::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        assert!(b.data.iter().all(|&x| x as usize == b.source));
                        *bytes.entry(b.source).or_insert(0u64) += b.data.len() as u64;
                    }
                    Ok(None) => break,
                    Err(VmpiError::PeerLost { rank }) => lost2.lock().unwrap().push(rank),
                    Err(e) => panic!("reader must fail typed, got: {e}"),
                }
            }
            *survivor2.lock().unwrap() = bytes;
        });
    assert!(run_job(backend, launcher).is_empty());

    assert_eq!(
        &*lost.lock().unwrap(),
        &[CRASH_RANK],
        "exactly one typed loss event, naming the crashed rank"
    );
    let bytes = survivor.lock().unwrap();
    assert_eq!(bytes.get(&0).copied(), Some((BLOCK * BLOCKS) as u64));
    assert_eq!(
        bytes.get(&CRASH_RANK).copied().unwrap_or(0),
        AFTER_SENDS * BLOCK as u64,
        "pre-crash blocks arrive, post-crash blocks never do"
    );
}

// ---------------------------------------------------------------------
// Scenario 7: seeded fault determinism.
// ---------------------------------------------------------------------

/// One seeded drop+dup+reorder pipeline run: returns the reader's
/// order-sensitive digest per writer.
fn faulted_pipeline_digest(backend: Backend, seed: u64) -> HashMap<usize, u64> {
    const BLOCK: usize = 64;
    const BLOCKS: usize = 150;
    const WRITERS: usize = 2;
    let seen = Arc::new(Mutex::new(HashMap::new()));
    let seen2 = Arc::clone(&seen);

    let launcher = Launcher::new()
        .fault_plan(
            FaultPlan::seeded(seed)
                .with_drop(0.12)
                .with_dup(0.12)
                .with_reorder(0.12)
                .with_only_tags(data_tag_range()),
        )
        .partition("w", WRITERS, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_retries(16, Duration::from_micros(100));
            let mut st = WriteStream::open_to(&v, vec![WRITERS], cfg, 1).unwrap();
            let me = v.rank() as u8;
            for i in 0..BLOCKS {
                let block: Vec<u8> = (0..BLOCK)
                    .map(|j| me ^ (i as u8).wrapping_add(j as u8))
                    .collect();
                st.write(&block).unwrap();
            }
            st.close().unwrap();
        })
        .partition("r", 1, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin)
                .with_read_timeout(Duration::from_secs(30));
            let mut st = ReadStream::open_from(&v, (0..WRITERS).collect(), cfg, 1).unwrap();
            let mut digests: HashMap<usize, u64> = HashMap::new();
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => {
                        let d = digests.entry(b.source).or_insert(0);
                        *d = fnv1a(*d, &b.data);
                    }
                    Ok(None) => break,
                    Err(e) => panic!("recovered pipeline must not fail: {e}"),
                }
            }
            *seen2.lock().unwrap() = digests;
        });
    assert!(run_job(backend, launcher).is_empty());
    Arc::try_unwrap(seen).unwrap().into_inner().unwrap()
}

/// The same seed must replay the exact same delivery — the fault schedule
/// lives above the transport and draws from per-edge sequence counters.
fn seeded_fault_plan_replays_identically(backend: Backend) {
    let a = faulted_pipeline_digest(backend, 4242);
    let b = faulted_pipeline_digest(backend, 4242);
    assert_eq!(a, b, "same seed, same backend: delivery must be identical");
    assert_eq!(a.len(), 2);
    assert!(a.values().all(|&d| d != 0));
}

/// Stronger than per-backend determinism: the *transports themselves*
/// must not perturb the fault schedule, so the digest matches across
/// backends too (and equals the fault-free content by recovery
/// transparency — already pinned per backend above).
#[test]
fn seeded_fault_schedule_matches_across_backends() {
    let inproc = faulted_pipeline_digest(Backend::InProc, 9001);
    let socket = faulted_pipeline_digest(Backend::Socket, 9001);
    assert_eq!(
        inproc, socket,
        "fault injection must sit above the transport: same seed, same bytes"
    );
}

// ---------------------------------------------------------------------
// Scenario 8-10: envelope codec negotiation.
// ---------------------------------------------------------------------

/// Serializes the codec scenarios: their socket-side assertions read
/// process-global transport counters, so two compressed sessions in
/// flight at once would observe each other's increments.
fn codec_scenario_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn codec_counter(name: &str) -> u64 {
    opmr::obs::registry().counter(name).get()
}

/// Byte `j` of message `i`: runs of 96 equal bytes, so envelopes are
/// compressible but not degenerate, and every message differs.
fn codec_payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((i * 7 + j / 96) & 0xFF) as u8).collect()
}

/// Cross-partition exchange of large compressible payloads; the receiver
/// verifies every byte, so a codec that corrupts data fails loudly on
/// any backend.
fn codec_exchange_job(msgs: usize, len: usize) -> Launcher {
    Launcher::new()
        .partition("tx", 1, move |mpi| {
            let w = mpi.world();
            for i in 0..msgs {
                mpi.send(&w, 1, 11, codec_payload(i, len)).unwrap();
            }
        })
        .partition("rx", 1, move |mpi| {
            let w = mpi.world();
            for i in 0..msgs {
                let (_, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(11)).unwrap();
                assert_eq!(data[..], codec_payload(i, len), "message {i} corrupted");
            }
        })
}

/// Both peers advertise LZ4: the session negotiates compressed, large
/// envelopes actually shrink on the wire, and every payload byte
/// survives the inflate on the far side.
fn compressed_session_delivers_identically(backend: Backend) {
    let _g = codec_scenario_lock();
    let before = codec_counter("transport_socket_envelopes_compressed_total");
    let launcher = codec_exchange_job(24, 16 * 1024);
    let failures = match backend {
        Backend::InProc => run_job(backend, launcher),
        Backend::Socket => {
            run_socket_threads_with(launcher, 2, |_, cfg| cfg.compression(Compression::Lz4))
        }
    };
    assert!(failures.is_empty());
    if backend == Backend::Socket {
        let after = codec_counter("transport_socket_envelopes_compressed_total");
        assert!(
            after > before,
            "an lz4<->lz4 session must compress its large envelopes"
        );
    }
}

/// One peer advertises LZ4, the other nothing: the coordinator settles
/// the *session* on the weakest codec, so not a single compressed frame
/// is emitted — exactly what a genuine legacy peer requires.
fn legacy_peer_negotiates_session_down(backend: Backend) {
    let _g = codec_scenario_lock();
    let before = codec_counter("transport_socket_envelopes_compressed_total");
    let launcher = codec_exchange_job(24, 16 * 1024);
    let failures = match backend {
        Backend::InProc => run_job(backend, launcher),
        Backend::Socket => run_socket_threads_with(launcher, 2, |p, cfg| {
            if p == 0 {
                cfg.compression(Compression::Lz4)
            } else {
                cfg // legacy peer: advertises Compression::None
            }
        }),
    };
    assert!(failures.is_empty());
    if backend == Backend::Socket {
        let after = codec_counter("transport_socket_envelopes_compressed_total");
        assert_eq!(
            after, before,
            "a session with a legacy peer must never compress"
        );
    }
}

/// A hostile connection advertising an unknown codec id is rejected
/// with the dedicated counter ticked, and the real mesh assembles and
/// runs to completion around it. On the in-process backend there is no
/// handshake to attack; the scenario degenerates to the clean run.
fn hostile_codec_advertisement_is_rejected_and_counted(backend: Backend) {
    let _g = codec_scenario_lock();
    let launcher = codec_exchange_job(8, 16 * 1024);
    if backend == Backend::InProc {
        assert!(run_job(backend, launcher).is_empty());
        return;
    }

    let before = codec_counter("transport_socket_codec_rejected_total");
    let endpoint = fresh_unix_endpoint("hostile-codec");
    let Endpoint::Unix(path) = endpoint.clone() else {
        unreachable!()
    };

    // Proc 0 (the coordinator) starts first and waits for hellos.
    let l0 = launcher.clone();
    let ep0 = endpoint.clone();
    let coord = std::thread::spawn(move || {
        let cfg = SocketConfig::new(ep0)
            .connect_timeout(Duration::from_secs(20))
            .compression(Compression::Lz4);
        let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
        l0.run_multiproc(topo)
    });

    // The hostile peer dials the coordinator and advertises codec 0x7F
    // in an otherwise well-formed v3 hello.
    let mut hello = vec![1u8]; // K_HELLO
    hello.extend_from_slice(&0x4F50_4D52u32.to_le_bytes()); // MAGIC
    hello.extend_from_slice(&3u16.to_le_bytes()); // VERSION 3
    hello.extend_from_slice(&1u16.to_le_bytes()); // proc index
    hello.extend_from_slice(&0u64.to_le_bytes()); // topo hash (ignored: codec checked first)
    hello.push(0x7F); // no such codec
    hello.extend_from_slice(b"unix:/tmp/hostile");
    let framed = opmr::events::try_frame(&hello).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut sock = loop {
        match std::os::unix::net::UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2))
            }
            Err(e) => panic!("hostile peer never reached the coordinator: {e}"),
        }
    };
    use std::io::{Read, Write};
    sock.write_all(&framed).unwrap();
    // The coordinator answers a bad hello by closing the connection:
    // EOF here proves the rejection landed before we let the real peer
    // join.
    let mut sink = [0u8; 64];
    loop {
        match sock.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => panic!("expected EOF from the coordinator, got {e}"),
        }
    }
    assert_eq!(
        codec_counter("transport_socket_codec_rejected_total"),
        before + 1,
        "unknown codec id must tick the dedicated rejection counter"
    );

    // The real peer now joins; the job must complete untouched.
    let cfg = SocketConfig::new(endpoint)
        .connect_timeout(Duration::from_secs(20))
        .compression(Compression::Lz4);
    let topo = MultiprocTopology::new(cfg, 1, 2).assign(PartitionAssign::RoundRobin);
    launcher.run_multiproc(topo).unwrap();
    coord.join().unwrap().unwrap();
}

// ---------------------------------------------------------------------
// Genuine multi-process: the socket backend across two OS processes.
// ---------------------------------------------------------------------

/// Deterministic cross-partition workload whose result both processes can
/// verify independently: partition "left" streams a seeded pattern to
/// partition "right"; "right" answers with the digest over point-to-point
/// and "left" checks it against its own computation.
fn two_proc_job() -> Launcher {
    const BLOCK: usize = 96;
    const BLOCKS: usize = 80;
    Launcher::new()
        .partition("left", 1, move |mpi| {
            let want = {
                let mut h = 0u64;
                for i in 0..BLOCKS {
                    let block: Vec<u8> = (0..BLOCK).map(|j| (i * 31 + j) as u8).collect();
                    h = fnv1a(h, &block);
                }
                h
            };
            let w = mpi.world();
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_read_timeout(Duration::from_secs(20));
            let mut st = WriteStream::open_to(&v, vec![1], cfg, 7).unwrap();
            for i in 0..BLOCKS {
                let block: Vec<u8> = (0..BLOCK).map(|j| (i * 31 + j) as u8).collect();
                st.write(&block).unwrap();
            }
            st.close().unwrap();
            let (_, echoed) = v.mpi().recv(&w, Src::Rank(1), TagSel::Tag(99)).unwrap();
            let got = u64::from_le_bytes(echoed[..8].try_into().unwrap());
            assert_eq!(got, want, "peer's digest of the streamed bytes diverged");
        })
        .partition("right", 1, move |mpi| {
            let w = mpi.world();
            let v = Vmpi::new(mpi).unwrap();
            let cfg = StreamConfig::new(BLOCK, 3, Balance::None)
                .with_read_timeout(Duration::from_secs(20));
            let mut st = ReadStream::open_from(&v, vec![0], cfg, 7).unwrap();
            let mut h = 0u64;
            loop {
                match st.read(ReadMode::Blocking) {
                    Ok(Some(b)) => h = fnv1a(h, &b.data),
                    Ok(None) => break,
                    Err(e) => panic!("stream failed across processes: {e}"),
                }
            }
            v.mpi().send(&w, 0, 99, h.to_le_bytes().to_vec()).unwrap();
        })
}

/// Spawned copy of this test binary: runs process 1 of the job above.
/// Guarded by an env var so it is inert in a normal test run.
#[test]
fn socket_two_os_process_worker() {
    let Ok(path) = std::env::var("OPMR_CONF_WORKER_SOCK") else {
        return; // not a worker invocation
    };
    let cfg =
        SocketConfig::new(Endpoint::Unix(path.into())).connect_timeout(Duration::from_secs(20));
    let topo = MultiprocTopology::new(cfg, 1, 2).assign(PartitionAssign::RoundRobin);
    two_proc_job().run_multiproc(topo).unwrap();
}

/// The acceptance scenario: one partition per OS process, connected only
/// by the socket mesh. Both sides independently verify the payload
/// digest; the parent additionally requires a clean child exit.
#[test]
fn socket_spans_two_os_processes() {
    let endpoint = fresh_unix_endpoint("osproc");
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args([
            "--exact",
            "socket_two_os_process_worker",
            "--test-threads=1",
        ])
        .env("OPMR_CONF_WORKER_SOCK", path)
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20));
    let topo = MultiprocTopology::new(cfg, 0, 2).assign(PartitionAssign::RoundRobin);
    let local = two_proc_job().run_multiproc(topo);
    let status = child.wait().unwrap();
    local.unwrap();
    assert!(status.success(), "worker process failed: {status:?}");
}

/// The TCP flavor of the endpoint, over loopback, with the same job the
/// Unix-domain scenarios use — proving `Endpoint::Tcp` is not a stub.
#[test]
fn socket_tcp_endpoint_smoke() {
    // Reserve an ephemeral port, then hand the freed address to the mesh.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let endpoint = Endpoint::Tcp(addr);
    let launcher = two_proc_job();
    let mut handles = Vec::new();
    for p in 0..2 {
        let l = launcher.clone();
        let cfg = SocketConfig::new(endpoint.clone()).connect_timeout(Duration::from_secs(20));
        let topo = MultiprocTopology::new(cfg, p, 2).assign(PartitionAssign::RoundRobin);
        handles.push(std::thread::spawn(move || l.run_multiproc(topo)));
    }
    for h in handles {
        h.join().unwrap().unwrap();
    }
}
