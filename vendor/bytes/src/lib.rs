//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//!
//! * [`Bytes`] — cheaply cloneable immutable byte buffer (`Arc<[u8]>` plus
//!   a view range, so `clone`/`slice`/`split_to` never copy payloads);
//! * [`BytesMut`] — growable builder that [`BytesMut::freeze`]s into
//!   [`Bytes`];
//! * [`Buf`] / [`BufMut`] — little-endian cursor traits implemented for
//!   `Bytes`, `&[u8]`, `BytesMut` and `Vec<u8>`.
//!
//! Semantics match the real crate for this subset; performance corners the
//! real crate optimizes (inline storage, vtable specialization) are not
//! reproduced.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied once; the real crate borrows it).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a view of a sub-range without copying.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} of {}", self.len());
        let front = self.slice(0..at);
        self.start += at;
        front
    }

    /// Splits off and returns the tail starting at `at`, keeping the front.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off {at} of {}", self.len());
        let back = self.slice(at..);
        self.end = self.start + at;
        back
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "…(+{})", self.len() - 64)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// ---------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn clear(&mut self) {
        self.buf.clear()
    }

    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len)
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value)
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter)
    }
}

// ---------------------------------------------------------------------
// Buf / BufMut
// ---------------------------------------------------------------------

macro_rules! get_le {
    ($(($name:ident, $ty:ty)),+ $(,)?) => {
        $(
            fn $name(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )+
    };
}

/// Read cursor over a byte source (little-endian accessors only — the wire
/// format of this workspace is entirely little-endian).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The current contiguous front chunk.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice of {} with {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le!(
        (get_u16_le, u16),
        (get_u32_le, u32),
        (get_u64_le, u64),
        (get_i16_le, i16),
        (get_i32_le, i32),
        (get_i64_le, i64),
    );

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} of {}", self.len());
        self.start += cnt;
    }
}

macro_rules! put_le {
    ($(($name:ident, $ty:ty)),+ $(,)?) => {
        $(
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Append-only write cursor (little-endian accessors only).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(
        (put_u16_le, u16),
        (put_u32_le, u32),
        (put_u64_le, u64),
        (put_i16_le, i16),
        (put_i32_le, i32),
        (put_i64_le, i64),
    );

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let front = b.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn buf_roundtrip_le() {
        let mut m = BytesMut::new();
        m.put_u64_le(0xDEAD_BEEF_1234_5678);
        m.put_u16_le(7);
        m.put_i32_le(-5);
        m.put_u8(9);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u64_le(), 0xDEAD_BEEF_1234_5678);
        assert_eq!(b.get_u16_le(), 7);
        assert_eq!(b.get_i32_le(), -5);
        assert_eq!(b.get_u8(), 9);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_buf_advances() {
        let v = [1u8, 2, 3, 4];
        let mut s = &v[..];
        s.advance(1);
        assert_eq!(s.get_u16_le(), u16::from_le_bytes([2, 3]));
        assert_eq!(s.remaining(), 1);
    }
}
