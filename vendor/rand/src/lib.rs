//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open integer
//! ranges. The generator is xorshift64* seeded through splitmix64 —
//! deterministic and statistically fine for load balancing and tests, not
//! cryptographic, and deliberately not stream-compatible with upstream
//! `StdRng` (nothing in the workspace depends on upstream's stream).

use std::ops::Range;

/// Construction of a deterministic generator from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange for Range<$ty> {
                type Output = $ty;
                fn sample(self, rng: &mut dyn RngCore) -> $ty {
                    assert!(self.start < self.end, "gen_range over empty range");
                    let span = (self.end - self.start) as u64;
                    // Modulo bias is < span/2^64 — irrelevant at the range
                    // sizes used here (endpoint counts, partition sizes).
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )+
    };
}

impl_sample_range!(usize, u64, u32, u16, u8);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator with splitmix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 finalizer: spreads low-entropy seeds (0, 1, 2…)
            // over the whole state space and avoids the all-zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
