//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly (poison is swallowed —
//! a panicking holder does not wedge every later locker), and `Condvar::wait`
//! takes `&mut MutexGuard` like the real crate. Only the surface this
//! workspace uses is provided; fairness/parking-lot internals are not
//! reproduced.

use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`].
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot does.
        // Callers in this workspace ignore the return value.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            *g = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        *g += 1; // guard still usable after timeout
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
