//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of proptest that the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for integer
//!   and float ranges, tuples, `Just`, unions, and `collection::vec`;
//! * `any::<T>()` for the primitive types the tests draw;
//! * the [`proptest!`] macro: runs each test body over `cases` seeded inputs
//!   and, on failure, prints the case number, the reproduction seed, and the
//!   generated values.
//!
//! Differences from upstream, deliberate: **no shrinking** (a failure reports
//! the raw counterexample), and the byte-level value stream is not compatible
//! with upstream seeds. Reproduction works by re-running with
//! `PROPTEST_SEED=<printed seed>`, which overrides the per-test default seed.

pub mod test_runner {
    /// Per-block configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case generator (xorshift64* over a mixed seed).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(base_seed: u64, case: u32) -> TestRng {
            // splitmix64 over (seed, case) so consecutive cases are unrelated.
            let mut z = base_seed
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            TestRng {
                state: if z == 0 { 1 } else { z },
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Base seed for a test: `PROPTEST_SEED` env override, else a stable
    /// hash of the test's full path (so runs are reproducible by default).
    pub fn resolve_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                return v;
            }
        }
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` from a seeded rng.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, the arm type of [`Union`] / `prop_oneof!`.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice between boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                    }
                }

                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            )+
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        // Full bit-pattern space, including NaN and infinities, matching
        // upstream's unrestricted `any::<f64>()`.
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64() as usize)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` draws with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod sample {
    /// An index "into any collection": resolved against a concrete length
    /// with [`Index::index`], uniformly.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        pub fn from_raw(raw: usize) -> Index {
            Index { raw }
        }

        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }
}

pub mod prelude {
    pub use crate::sample;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry point: a block of property tests sharing one optional config.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let __seed = $crate::test_runner::resolve_seed(__test_name);
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case);
                let mut __vals: Vec<String> = Vec::new();
                $(
                    let __v = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __vals.push(format!("{} = {:?}", stringify!($pat), &__v));
                    let $pat = __v;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} \
                         (reproduce with PROPTEST_SEED={})",
                        __test_name, __case, __cfg.cases, __seed,
                    );
                    for __v in &__vals {
                        eprintln!("proptest:   {}", __v);
                    }
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategy arms that all yield the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(9, 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(-1i32..16), &mut rng);
            assert!((-1..16).contains(&v));
            let w = Strategy::generate(&(1usize..=5), &mut rng);
            assert!((1..=5).contains(&w));
            let f = Strategy::generate(&(-1.0e12f64..1.0e12), &mut rng);
            assert!((-1.0e12..1.0e12).contains(&f));
        }
    }

    #[test]
    fn same_seed_same_values() {
        let gen = |seed| {
            let mut rng = crate::test_runner::TestRng::for_case(seed, 3);
            crate::collection::vec(0u64..1000, 1..20).generate(&mut rng)
        };
        assert_eq!(gen(11), gen(11));
        assert_ne!(gen(11), gen(12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y)),
            pick in prop_oneof![Just(1usize), (2usize..4).prop_map(|v| v)],
            idx in any::<sample::Index>(),
            v in crate::collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assert!(b >= a);
            prop_assert!(pick >= 1 && pick < 4);
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }
}
