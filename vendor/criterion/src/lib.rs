//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock runner: each
//! bench runs `sample_size` timed iterations after one warmup and reports
//! mean time (plus derived throughput) on stdout. No statistics, plotting,
//! or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for one bench within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: p.to_string(),
        }
    }

    pub fn new(function: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{p}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Times closures handed to it by a bench body.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warmup so first-touch costs (allocator, thread spawn)
        // don't land in the first sample.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// Opaque value sink preventing the optimizer from deleting the benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.name, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, bench: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("  {}/{bench}: no samples", self.name);
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(", {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!(", {:.0} elem/s", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!(
            "  {}/{bench}: {:.3} ms/iter ({} iters{rate})",
            self.name,
            per_iter * 1e3,
            b.iters,
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::from_parameter(5usize), &5usize, |b, &v| {
            b.iter(|| v * 2);
        });
        g.finish();
    }
}
