//! Extending the analyzer with a user-defined knowledge source.
//!
//! The paper stresses that "Knowledge sources can be developed in separated
//! shared libraries … integrating new KSs on the blackboard" with "various
//! levels of integration". This example adds two custom analyses without
//! touching the engine:
//!
//! * a **message-size histogram** KS fully integrated in the data flow
//!   (subscribes to decoded event packs);
//! * a **notification** KS that merely watches for one event type (the
//!   "just refer to a single event for notification purpose" case).
//!
//! ```sh
//! cargo run --example custom_ks
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::blackboard::{type_id, DataEntry, KnowledgeSource};
use opmr::core::{LiveOptions, Session};
use opmr::events::{EventKind, EventPack};
use opmr::netsim::tera100;
use opmr::workloads::{Benchmark, Class};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let histogram: Arc<Mutex<[u64; 8]>> = Arc::new(Mutex::new([0; 8]));
    let barrier_count = Arc::new(AtomicU64::new(0));

    let m = tera100();
    let w = Benchmark::Cg.build(Class::S, 8, &m, Some(3)).expect("CG.S");

    // Build the session but register our KSs on the engine's blackboard
    // before anything runs: we need the engine handle, so go through the
    // lower-level pieces the Session normally hides... the Session exposes
    // nothing pre-run, so instead register from a bootstrap KS that fires
    // on the very first decoded pack (opportunistic reasoning in action).
    let hist2 = Arc::clone(&histogram);
    let bc2 = Arc::clone(&barrier_count);

    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app_workload("cg", w, LiveOptions::default())
        .engine_setup(move |engine| {
            let events_ty = type_id("app0", "events");
            // Fully-integrated KS: message-size histogram (log2 buckets).
            let hist = Arc::clone(&hist2);
            engine.blackboard().register(KnowledgeSource::new(
                "size-histogram",
                vec![events_ty],
                move |_bb, entries| {
                    if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                        let mut h = hist.lock();
                        for e in &pack.events {
                            if e.kind.is_p2p() && e.bytes > 0 {
                                let bucket = (64 - e.bytes.leading_zeros() as usize)
                                    .saturating_sub(6) // 64 B = bucket 0
                                    .min(7);
                                h[bucket] += 1;
                            }
                        }
                    }
                },
            ));
            // Notification-only KS: count barriers as they stream in, and
            // demonstrate posting derived entries other KSs could consume.
            let bc = Arc::clone(&bc2);
            let derived_ty = type_id("app0", "barrier-seen");
            engine.blackboard().register(KnowledgeSource::new(
                "barrier-watch",
                vec![events_ty],
                move |bb, entries| {
                    if let Some(pack) = entries[0].downcast_ref::<EventPack>() {
                        for e in &pack.events {
                            if e.kind == EventKind::Barrier {
                                bc.fetch_add(1, Ordering::Relaxed);
                                bb.post(DataEntry::value(derived_ty, e.rank));
                            }
                        }
                    }
                },
            ));
        })
        .run()
        .expect("session with custom KSs");

    let app = &outcome.report.apps[0];
    println!("CG.S profiled with two custom knowledge sources.\n");
    println!("message-size histogram (p2p):");
    let labels = [
        "64B-127B", "128-255", "256-511", "512-1K", "1K-2K", "2K-4K", "4K-8K", ">=8K",
    ];
    for (label, count) in labels.iter().zip(histogram.lock().iter()) {
        println!("  {label:>9} : {count}");
    }
    println!(
        "\nbarrier-watch KS saw {} barrier events (profiler agrees: {})",
        barrier_count.load(Ordering::Relaxed),
        app.profile
            .kind(EventKind::Barrier)
            .map(|s| s.hits)
            .unwrap_or(0)
    );
}
