//! Paper-scale simulation: what the figures harness does, in one page.
//!
//! ```sh
//! cargo run --release --example paper_scale_sim
//! ```
//!
//! Simulates SP.D on 1024 ranks of the Curie model under every measurement
//! chain of Figure 16 and prints one overhead row, plus the Bi values the
//! paper quotes in Section IV-C.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::netsim::{curie, simulate, tera100, ToolModel};
use opmr::workloads::{Benchmark, Class};

fn main() {
    let curie = curie();
    let ranks = 1024;
    let iters = Some(8);
    let w = Benchmark::Sp
        .build(Class::D, ranks, &curie, iters)
        .expect("SP.D @1024");

    let reference = simulate(&w, &curie, &ToolModel::None).expect("reference");
    println!(
        "SP.D on {ranks} ranks (Curie model): reference {:.2} s/iter-block",
        reference.elapsed_s
    );
    for (name, tool) in [
        ("Scalasca       ", ToolModel::scalasca()),
        ("ScoreP profile ", ToolModel::scorep_profile()),
        ("ScoreP trace   ", ToolModel::scorep_trace()),
        ("Online coupling", ToolModel::online_coupling(1.0)),
    ] {
        let r = simulate(&w, &curie, &tool).expect("tool run");
        let overhead = (r.elapsed_s - reference.elapsed_s) / reference.elapsed_s * 100.0;
        println!(
            "  {name} : {overhead:+6.1}%  (events {:>10}, stall {:.2} s, fs {:.2} s)",
            r.stats.events,
            r.stats.stall_ns / 1e9,
            r.stats.fs_ns / 1e9
        );
    }

    // Section IV-C's Bi anchors, on the Tera 100 model.
    let tera = tera100();
    for (class, paper) in [(Class::C, "2.37 GB/s"), (Class::D, "334.99 MB/s")] {
        let w = Benchmark::Sp
            .build(class, 900, &tera, Some(6))
            .expect("SP @900");
        let r = simulate(&w, &tera, &ToolModel::online_coupling(1.0)).expect("sim");
        println!(
            "Bi(SP.{class}) @900 ranks: {:.2} MB/s   (paper: {paper})",
            r.bi_bps() / 1e6
        );
    }
}
