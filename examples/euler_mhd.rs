//! EulerMHD walkthrough: instrument the 2-D MHD mini-app, inspect the
//! spatial analyses the paper showcases (topology of Figure 17c, density
//! maps of Figure 18) and compare the online report with the classical
//! trace-based workflow on the same run.
//!
//! ```sh
//! cargo run --example euler_mhd
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::analysis::WeightKind;
use opmr::core::{LiveOptions, Session, TraceSession};
use opmr::events::EventKind;
use opmr::netsim::tera100;
use opmr::workloads::euler::{self, EulerParams};

fn main() {
    let m = tera100();
    let params = EulerParams {
        mesh: 512,
        steps: 10,
        ..EulerParams::default()
    };
    let ranks = 16;
    let w = euler::workload(params, ranks, &m, None).expect("euler workload");

    // --- Online run -----------------------------------------------------
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app_workload("euler_mhd", w.clone(), LiveOptions::default())
        .run()
        .expect("online session");
    let app = &outcome.report.apps[0];

    println!("EulerMHD on {ranks} ranks — online profile");
    println!("  events     : {}", app.events);
    println!(
        "  exchanges  : {}",
        app.profile
            .kind(EventKind::Sendrecv)
            .map(|s| s.hits)
            .unwrap_or(0)
    );
    println!(
        "  allreduces : {}",
        app.profile
            .kind(EventKind::Allreduce)
            .map(|s| s.hits)
            .unwrap_or(0)
    );
    println!(
        "  topology   : {} edges, symmetric={} (4-neighbour halo)",
        app.topology.edge_count(),
        app.topology.is_symmetric_in_hits()
    );

    for map in &app.density {
        println!("\n{}", map.ascii());
    }

    let dir = std::path::Path::new("out/euler_mhd");
    std::fs::create_dir_all(dir).expect("out dir");
    std::fs::write(
        dir.join("topology_size.dot"),
        app.topology.to_dot("euler_mhd", WeightKind::Bytes),
    )
    .expect("write dot");
    println!("wrote {}", dir.join("topology_size.dot").display());

    // --- Trace-based baseline on the identical workload ------------------
    let trace_dir = dir.join("traces");
    let trace = TraceSession::new(&trace_dir)
        .app_workload("euler_mhd", w, LiveOptions::default())
        .run()
        .expect("trace session");
    let tapp = &trace.report.apps[0];
    println!("\nClassical trace workflow on the same run:");
    println!(
        "  trace bytes on disk : {} ({} files)",
        trace.trace_bytes,
        std::fs::read_dir(&trace_dir)
            .map(|d| d.count())
            .unwrap_or(0)
    );
    println!(
        "  post-mortem events  : {} (online saw {})",
        tapp.events, app.events
    );
    assert_eq!(
        tapp.profile.kind(EventKind::Sendrecv).map(|s| s.hits),
        app.profile.kind(EventKind::Sendrecv).map(|s| s.hits),
        "streamed analysis must equal post-mortem analysis"
    );
    println!("  profiles match — streaming replaced the file system without losing anything.");
}
