//! Distributed analysis (the paper's Section VI direction): every analyzer
//! rank runs its *own* blackboard engine over its share of the event
//! streams; partial profiles, topologies and wait-state aggregates merge
//! over MPI at the analyzer root when the job ends.
//!
//! ```sh
//! cargo run --release --example distributed_analyzer
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::core::{LiveOptions, Session};
use opmr::netsim::tera100;
use opmr::workloads::{Benchmark, Class};

fn main() {
    let m = tera100();
    let lu = Benchmark::Lu
        .build(Class::S, 12, &m, Some(3))
        .expect("LU.S");
    let cg = Benchmark::Cg.build(Class::S, 8, &m, Some(3)).expect("CG.S");

    let outcome = Session::builder()
        .analyzer_ranks(4)
        .distributed() // one engine per analyzer rank + MPI merge
        .waitstate()
        .app_workload("lu", lu, LiveOptions::default())
        .app_workload("cg", cg, LiveOptions::default())
        .run()
        .expect("distributed session");

    println!(
        "distributed analyzer (4 engines + MPI merge) profiled {} applications:\n",
        outcome.report.apps.len()
    );
    for app in &outcome.report.apps {
        let detected = opmr::analysis::classify(&app.topology);
        println!(
            "  {:>3}: {} events from {} ranks over {} packs; topology: {} \
             ({:.0}% coverage); wait states matched: {}",
            app.name,
            app.events,
            app.ranks,
            app.packs,
            detected.pattern.describe(),
            detected.coverage * 100.0,
            app.waitstate.as_ref().map(|w| w.matched).unwrap_or(0),
        );
    }
    // Note the wait-state counts: matching needs a channel's sender and
    // receiver events on the *same* engine, but the round-robin mapping
    // spreads ranks across analyzer engines — exactly the limitation the
    // paper's planned one-sided distributed blackboard addresses. Matched
    // pairs drop to the engines that happen to hold both endpoints; the
    // rest are reported as unmatched.
    println!("\nfull report:\n");
    println!("{}", outcome.markdown());
}
