//! Multi-instrumentation: the paper's headline scenario — several
//! *different* programs profiled concurrently by one analyzer into a
//! single report with one chapter per application (Figures 5 and 10).
//!
//! ```sh
//! cargo run --example multi_app
//! ```
//!
//! Runs NAS CG and FT kernels plus the EulerMHD mini-app side by side
//! (MPMD), writes the Markdown/LaTeX report and the Graphviz topologies
//! under `out/multi_app/`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::analysis::report;
use opmr::core::{LiveOptions, Session};
use opmr::netsim::tera100;
use opmr::workloads::{Benchmark, Class};

fn main() {
    let m = tera100();
    let cg = Benchmark::Cg
        .build(Class::S, 16, &m, Some(3))
        .expect("CG.S");
    let ft = Benchmark::Ft.build(Class::S, 8, &m, Some(3)).expect("FT.S");
    let euler = Benchmark::EulerMhd
        .build(Class::S, 12, &m, Some(5))
        .expect("EulerMHD");

    let outcome = Session::builder()
        .analyzer_ranks(4)
        .app_workload("cg", cg, LiveOptions::default())
        .app_workload("ft", ft, LiveOptions::default())
        .app_workload("euler_mhd", euler, LiveOptions::default())
        .run()
        .expect("multi-app session");

    println!("{}", report::to_markdown(&outcome.report));

    let dir = std::path::Path::new("out/multi_app");
    let paths = report::write_artifacts(&outcome.report, dir).expect("write artifacts");
    println!("wrote {} artifacts under {}:", paths.len(), dir.display());
    for p in paths.iter().take(8) {
        println!("  {}", p.display());
    }
    println!(
        "\n3 applications, {} total events, one report — no trace files involved.",
        outcome.report.apps.iter().map(|a| a.events).sum::<u64>()
    );
}
