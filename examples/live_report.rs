//! Live report serving: watch an analysis converge while the application
//! is still running.
//!
//! ```sh
//! cargo run --example live_report
//! ```
//!
//! Launches a 6-rank ring application, a 2-rank serving analyzer
//! (`Coupling::Serving`) and two client partitions: a *subscriber* that
//! folds the snapshot-then-deltas stream into a local report and prints
//! each version as it lands, and a *prober* that issues point queries
//! (version info, rank-filtered profile, per-rank event density) against
//! whatever is current mid-run.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::core::{Coupling, Session};
use opmr::runtime::{Src, TagSel};
use opmr::serve::proto::ALL_RANKS;
use opmr::serve::ServeConfig;
use opmr::vmpi::{Balance, StreamConfig};
use std::time::Duration;

fn main() {
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .coupling(Coupling::Serving)
        .serve_config(ServeConfig {
            publish_every_packs: 2,
            ..ServeConfig::default()
        })
        // Small stream blocks => frequent packs => frequent publications.
        .stream_config(StreamConfig::new(2048, 4, Balance::None))
        .app("ring_live", 6, |imp| {
            let w = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            for round in 0..80 {
                let req = imp.isend(&w, (r + 1) % n, round, vec![1u8; 1024]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                    .unwrap();
                imp.wait(req).unwrap();
                // Pace the ring so "live" is observable.
                imp.compute(Duration::from_micros(300)).unwrap();
            }
            imp.barrier(&w).unwrap();
        })
        .client("subscriber", 1, |c| {
            c.subscribe().expect("subscribe");
            loop {
                let u = c
                    .next_update()
                    .expect("subscription update")
                    .expect("stream ended before the final version");
                let held = c.report().expect("subscribed client holds a report");
                let events: u64 = held.parts.iter().map(|p| p.profile.events()).sum();
                println!(
                    "  [subscriber] v{:<3} {}  {:>6} events  lag {:>6.2} ms{}{}",
                    u.version,
                    if u.delta { "delta   " } else { "snapshot" },
                    events,
                    u.lag_ns as f64 / 1e6,
                    if u.resync { "  (resync)" } else { "" },
                    if u.finished { "  FINAL" } else { "" },
                );
                if u.finished {
                    break;
                }
            }
        })
        .client("prober", 1, |c| {
            let info = c.wait_version(2).expect("publications");
            let (v, profile) = c.query_profile(0, 0, 0, ALL_RANKS).expect("profile");
            println!(
                "  [prober] mid-run: versions {}..{}, profile@v{v} holds {} events",
                info.oldest,
                info.current,
                profile.events()
            );
            let fin = c.wait_version(u64::MAX).expect("final version");
            let (_, lo, density) = c.query_density(0, 0, 0, ALL_RANKS).expect("density");
            println!(
                "  [prober] final v{}: per-rank events from rank {lo}: {:?}",
                fin.current, density
            );
        })
        .run()
        .expect("serving session");

    println!("---");
    let store = outcome
        .snapshot_store
        .as_ref()
        .expect("serving retains the store");
    let s = store.stats();
    println!(
        "store: {} versions published, {} evicted from the ring",
        s.published, s.evicted
    );
    for (rank, st) in &outcome.serve_stats {
        println!(
            "serving rank {rank}: {} clients, {} queries, {} snapshots / {} deltas sent, \
             {} resyncs",
            st.clients, st.queries, st.snapshots_sent, st.deltas_sent, st.resyncs
        );
    }
    println!("---");
    println!("{}", outcome.markdown());
}
