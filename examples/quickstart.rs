//! Quickstart: profile one small application online and print its report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Launches (in one process, threads as ranks) a 8-rank application plus a
//! 2-rank analyzer partition. The application's MPI calls are intercepted,
//! streamed as event packs over VMPI streams — no trace file — and reduced
//! by the parallel blackboard into a profiling report. A second run routes
//! the same streams through the TBON reduction overlay (`Coupling::Tbon`)
//! and prints the per-node overlay counters.

use opmr::core::{Coupling, LiveOptions, Session};
use opmr::runtime::{Src, TagSel};

fn ring_session() -> opmr::core::SessionBuilder {
    Session::builder()
        .analyzer_ranks(2)
        .app("ring_demo", 8, |imp| {
            let world = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            // A classic ring with some collectives sprinkled in.
            for round in 0..50 {
                let req = imp
                    .isend(&world, (r + 1) % n, round, vec![r as u8; 4096])
                    .expect("isend");
                imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                    .expect("recv");
                imp.wait(req).expect("wait");
                if round % 10 == 0 {
                    imp.barrier(&world).expect("barrier");
                }
            }
            imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
            imp.compute(std::time::Duration::from_millis(2))
                .expect("compute");
        })
}

fn main() {
    let outcome = ring_session().run().expect("session");

    // LiveOptions is used by workload-driven sessions; mention it so the
    // example doubles as documentation.
    let _ = LiveOptions::default();

    println!("{}", opmr::analysis::report::to_markdown(&outcome.report));
    println!("---");
    println!(
        "session wall time: {:.3} s; packs streamed: {}",
        outcome.wall_s,
        outcome.report.apps.iter().map(|a| a.packs).sum::<u64>()
    );

    // Same application, this time through the in-network reduction
    // overlay: analyzer ranks double as a fanout-2 TBON, the root posts
    // surviving blocks into the engine (ρ = 1 pass-through — the report
    // is identical to the direct run, modulo wall-clock jitter).
    let tbon = ring_session()
        .coupling(Coupling::Tbon { fanout: 2 })
        .run()
        .expect("tbon session");
    println!("---");
    println!("TBON overlay (fanout 2, pass-through) — per-node counters:");
    for (node, s) in &tbon.reduce_stats {
        println!(
            "  node {node}: {} blocks in / {} forwarded, {} B in / {} B out, \
             {} merges, {} windows",
            s.blocks_in, s.blocks_forwarded, s.bytes_in, s.bytes_out, s.merges, s.windows_closed
        );
    }
}
