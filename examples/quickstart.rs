//! Quickstart: profile one small application online and print its report.
//!
//! ```sh
//! cargo run --example quickstart           # human-readable Markdown
//! cargo run --example quickstart -- --json # machine-readable summary
//! ```
//!
//! Launches (in one process, threads as ranks) a 8-rank application plus a
//! 2-rank analyzer partition. The application's MPI calls are intercepted,
//! streamed as event packs over VMPI streams — no trace file — and reduced
//! by the parallel blackboard into a profiling report. A second run routes
//! the same streams through the TBON reduction overlay (`Coupling::Tbon`)
//! and prints the per-node overlay counters.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::core::{Coupling, LiveOptions, Session, SessionOutcome};
use opmr::runtime::{Src, TagSel};

fn ring_session() -> opmr::core::SessionBuilder {
    Session::builder()
        .analyzer_ranks(2)
        .app("ring_demo", 8, |imp| {
            let world = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            // A classic ring with some collectives sprinkled in.
            for round in 0..50 {
                let req = imp
                    .isend(&world, (r + 1) % n, round, vec![r as u8; 4096])
                    .expect("isend");
                imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                    .expect("recv");
                imp.wait(req).expect("wait");
                if round % 10 == 0 {
                    imp.barrier(&world).expect("barrier");
                }
            }
            imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
            imp.compute(std::time::Duration::from_millis(2))
                .expect("compute");
        })
}

/// Hand-rolled JSON (the build is registry-free, so no serde): the session
/// and overlay counters a dashboard or CI script would scrape.
fn to_json(direct: &SessionOutcome, tbon: &SessionOutcome) -> String {
    let mut out = String::from("{\n  \"apps\": [\n");
    for (i, app) in direct.report.apps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ranks\": {}, \"events\": {}, \"packs\": {}, \
             \"wire_bytes\": {}, \"edges\": {}}}",
            app.name,
            app.ranks,
            app.events,
            app.packs,
            app.wire_bytes,
            app.topology.edge_count()
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"wall_s\": {:.6},\n", direct.wall_s));
    let recorder_events: u64 = direct.recorders.iter().map(|(_, s)| s.events).sum();
    out.push_str(&format!("  \"recorder_events\": {recorder_events},\n"));
    // The observability registry is process-wide and cumulative, so the
    // snapshot taken after the second (TBON) run covers both sessions:
    // stream counters, reduce window latencies, mailbox depths, …
    out.push_str(&format!("  \"metrics\": {},\n", tbon.metrics.to_json(2)));
    out.push_str("  \"tbon\": {\n");
    out.push_str(&format!(
        "    \"wall_s\": {:.6},\n    \"nodes\": [\n",
        tbon.wall_s
    ));
    for (i, (node, s)) in tbon.reduce_stats.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "      {{\"node\": {node}, \"blocks_in\": {}, \"blocks_forwarded\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"merges\": {}, \"windows\": {}}}",
            s.blocks_in, s.blocks_forwarded, s.bytes_in, s.bytes_out, s.merges, s.windows_closed
        ));
    }
    out.push_str("\n    ]\n  }\n}");
    out
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // The first run also carries the self-monitoring app: a hidden
    // one-rank partition streams the process's own metric registry
    // through the same VMPI machinery it measures, so the report gains
    // an `__obs` chapter profiling the profiler.
    let outcome = ring_session()
        .self_monitor(std::time::Duration::from_millis(10))
        .run()
        .expect("session");

    // LiveOptions is used by workload-driven sessions; mention it so the
    // example doubles as documentation.
    let _ = LiveOptions::default();

    // Same application, this time through the in-network reduction
    // overlay: analyzer ranks double as a fanout-2 TBON, the root posts
    // surviving blocks into the engine (ρ = 1 pass-through — the report
    // is identical to the direct run, modulo wall-clock jitter).
    let tbon = ring_session()
        .coupling(Coupling::Tbon { fanout: 2 })
        .run()
        .expect("tbon session");

    if json {
        println!("{}", to_json(&outcome, &tbon));
        return;
    }

    println!("{}", opmr::analysis::report::to_markdown(&outcome.report));
    println!("---");
    println!(
        "session wall time: {:.3} s; packs streamed: {}",
        outcome.wall_s,
        outcome.report.apps.iter().map(|a| a.packs).sum::<u64>()
    );
    println!("---");
    println!("TBON overlay (fanout 2, pass-through) — per-node counters:");
    for (node, s) in &tbon.reduce_stats {
        println!(
            "  node {node}: {} blocks in / {} forwarded, {} B in / {} B out, \
             {} merges, {} windows",
            s.blocks_in, s.blocks_forwarded, s.bytes_in, s.bytes_out, s.merges, s.windows_closed
        );
    }
    println!("---");
    println!("observability registry (excerpt; full set via --json):");
    let m = &tbon.metrics;
    println!(
        "  stream: {} blocks sent ({} B), {} EAGAIN polls, {} backpressure waits",
        m.counter("vmpi_stream_blocks_sent_total").unwrap_or(0),
        m.counter("vmpi_stream_write_bytes_total").unwrap_or(0),
        m.counter("vmpi_stream_eagain_total").unwrap_or(0),
        m.counter("vmpi_stream_backpressure_waits_total")
            .unwrap_or(0),
    );
    if let Some(h) = m.histogram("reduce_window_merge_latency_ns") {
        println!(
            "  reduce: {} windows closed, merge latency p50 ≤ {} ns, p99 ≤ {} ns",
            h.count,
            h.quantile(0.5),
            h.quantile(0.99),
        );
    }
    println!(
        "  blackboard: {} entries posted, {} KS invocations",
        m.counter("blackboard_entries_posted_total").unwrap_or(0),
        m.counter("blackboard_ks_invocations_total").unwrap_or(0),
    );
}
