//! Quickstart: profile one small application online and print its report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Launches (in one process, threads as ranks) a 8-rank application plus a
//! 2-rank analyzer partition. The application's MPI calls are intercepted,
//! streamed as event packs over VMPI streams — no trace file — and reduced
//! by the parallel blackboard into a profiling report.

use opmr::core::{LiveOptions, Session};
use opmr::runtime::{Src, TagSel};

fn main() {
    let outcome = Session::builder()
        .analyzer_ranks(2)
        .app("ring_demo", 8, |imp| {
            let world = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            // A classic ring with some collectives sprinkled in.
            for round in 0..50 {
                let req = imp
                    .isend(&world, (r + 1) % n, round, vec![r as u8; 4096])
                    .expect("isend");
                imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                    .expect("recv");
                imp.wait(req).expect("wait");
                if round % 10 == 0 {
                    imp.barrier(&world).expect("barrier");
                }
            }
            imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
            imp.compute(std::time::Duration::from_millis(2))
                .expect("compute");
        })
        .run()
        .expect("session");

    // LiveOptions is used by workload-driven sessions; mention it so the
    // example doubles as documentation.
    let _ = LiveOptions::default();

    println!("{}", opmr::analysis::report::to_markdown(&outcome.report));
    println!("---");
    println!(
        "session wall time: {:.3} s; packs streamed: {}",
        outcome.wall_s,
        outcome.report.apps.iter().map(|a| a.packs).sum::<u64>()
    );
}
