//! Quickstart: profile one small application online and print its report.
//!
//! ```sh
//! cargo run --example quickstart           # human-readable Markdown
//! cargo run --example quickstart -- --json # machine-readable summary
//! cargo run --example quickstart -- --transport socket --procs 2
//!                                          # same job across OS processes
//! ```
//!
//! Launches a 8-rank application plus a 2-rank analyzer partition. The
//! application's MPI calls are intercepted, streamed as event packs over
//! VMPI streams — no trace file — and reduced by the parallel blackboard
//! into a profiling report. A second run routes the same streams through
//! the TBON reduction overlay (`Coupling::Tbon`) and prints the per-node
//! overlay counters.
//!
//! By default everything runs in one process (threads as ranks). With
//! `--transport socket` the example re-executes itself `--procs - 1`
//! times and splits the job across genuine OS processes over a
//! Unix-domain socket mesh: the analyzer stays in process 0, the
//! application ranks run in the workers, and every event pack crosses a
//! real wire. The reported `stable_digest` — an order-sensitive digest of
//! the timing-independent report content — is identical between the two
//! transports.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::analysis::report::{stable_digest, stable_digest_filtered};
use opmr::core::{Coupling, LiveOptions, Session, SessionOutcome};
use opmr::runtime::{Endpoint, SocketConfig, Src, TagSel};
use std::time::Duration;

fn ring_session() -> opmr::core::SessionBuilder {
    Session::builder()
        .analyzer_ranks(2)
        .metrics(500_000) // 0.5 ms windows: the time-resolved metrics plane
        .app("ring_demo", 8, |imp| {
            let world = imp.comm_world();
            let (r, n) = (imp.rank(), imp.size());
            // A classic ring with some collectives sprinkled in.
            for round in 0..50 {
                let req = imp
                    .isend(&world, (r + 1) % n, round, vec![r as u8; 4096])
                    .expect("isend");
                imp.recv(&world, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                    .expect("recv");
                imp.wait(req).expect("wait");
                if round % 10 == 0 {
                    imp.barrier(&world).expect("barrier");
                }
            }
            imp.allreduce_sum(&world, &[r as u64]).expect("allreduce");
            imp.compute(std::time::Duration::from_millis(2))
                .expect("compute");
        })
}

/// The per-app summary rows shared by every JSON shape below.
fn apps_json(outcome: &SessionOutcome) -> String {
    let mut out = String::new();
    for (i, app) in outcome.report.apps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ranks\": {}, \"events\": {}, \"packs\": {}, \
             \"wire_bytes\": {}, \"edges\": {}, \"metric_windows\": {}}}",
            app.name,
            app.ranks,
            app.events,
            app.packs,
            app.wire_bytes,
            app.topology.edge_count(),
            app.metrics.as_ref().map_or(0, |m| m.len())
        ));
    }
    out
}

/// Hand-rolled JSON (the build is registry-free, so no serde): the session
/// and overlay counters a dashboard or CI script would scrape.
fn to_json(direct: &SessionOutcome, tbon: &SessionOutcome) -> String {
    let mut out = String::from("{\n  \"apps\": [\n");
    out.push_str(&apps_json(direct));
    out.push_str("\n  ],\n");
    // The digest skips the `__obs` self-monitor chapter (its sample count
    // depends on scheduling) so it is comparable to a socket-transport run.
    out.push_str(&format!(
        "  \"stable_digest\": \"{:016x}\",\n",
        stable_digest_filtered(&direct.report, |a| a.name != "__obs")
    ));
    out.push_str(&format!("  \"wall_s\": {:.6},\n", direct.wall_s));
    let recorder_events: u64 = direct.recorders.iter().map(|(_, s)| s.events).sum();
    out.push_str(&format!("  \"recorder_events\": {recorder_events},\n"));
    // The observability registry is process-wide and cumulative, so the
    // snapshot taken after the second (TBON) run covers both sessions:
    // stream counters, reduce window latencies, mailbox depths, …
    out.push_str(&format!("  \"metrics\": {},\n", tbon.metrics.to_json(2)));
    out.push_str("  \"tbon\": {\n");
    out.push_str(&format!(
        "    \"wall_s\": {:.6},\n    \"nodes\": [\n",
        tbon.wall_s
    ));
    for (i, (node, s)) in tbon.reduce_stats.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "      {{\"node\": {node}, \"blocks_in\": {}, \"blocks_forwarded\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"merges\": {}, \"windows\": {}}}",
            s.blocks_in, s.blocks_forwarded, s.bytes_in, s.bytes_out, s.merges, s.windows_closed
        ));
    }
    out.push_str("\n    ]\n  }\n}");
    out
}

/// JSON shape for a `--transport socket` run: the report summary, the
/// timing-scrubbed digest, and the socket-transport counters a CI smoke
/// job asserts on.
fn socket_json(outcome: &SessionOutcome, procs: usize) -> String {
    let mut out = String::from("{\n  \"transport\": \"socket\",\n");
    out.push_str(&format!("  \"procs\": {procs},\n"));
    out.push_str("  \"apps\": [\n");
    out.push_str(&apps_json(outcome));
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"wall_s\": {:.6},\n", outcome.wall_s));
    out.push_str(&format!(
        "  \"stable_digest\": \"{:016x}\",\n",
        stable_digest(&outcome.report)
    ));
    out.push_str("  \"socket\": {");
    let counters = [
        "transport_socket_frames_sent_total",
        "transport_socket_frames_received_total",
        "transport_socket_bytes_sent_total",
        "transport_socket_bytes_received_total",
        "transport_socket_connect_timeouts_total",
        "transport_socket_handshake_rejected_total",
        "transport_socket_peer_disconnects_total",
        "transport_socket_reconnect_attempts_total",
        "transport_socket_reconnects_total",
        "transport_socket_reconnect_exhausted_total",
        "transport_socket_frames_retransmitted_total",
    ];
    for (i, name) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{name}\": {}",
            outcome.metrics.counter(name).unwrap_or(0)
        ));
    }
    out.push_str("\n  }\n}");
    out
}

/// Parent half of `--transport socket`: bind a fresh Unix-domain
/// endpoint, re-execute this binary once per worker process, and host
/// process 0 (analyzer + blackboard) ourselves. Only process 0's outcome
/// carries the report.
fn run_socket(json: bool, procs: usize) {
    assert!(procs >= 2, "--transport socket needs at least 2 processes");
    let dir = std::env::temp_dir().join(format!("opmr-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("mesh.sock");

    let exe = std::env::current_exe().expect("current exe");
    let children: Vec<_> = (1..procs)
        .map(|p| {
            std::process::Command::new(&exe)
                .env("OPMR_QS_SOCK", &path)
                .env("OPMR_QS_PROC", p.to_string())
                .env("OPMR_QS_PROCS", procs.to_string())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    let cfg =
        SocketConfig::new(Endpoint::Unix(path.clone())).connect_timeout(Duration::from_secs(30));
    let outcome = ring_session()
        .run_multiproc(cfg, 0, procs)
        .expect("socket session");
    for mut c in children {
        let status = c.wait().expect("wait for worker");
        assert!(status.success(), "worker exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    if json {
        println!("{}", socket_json(&outcome, procs));
        return;
    }
    println!("{}", opmr::analysis::report::to_markdown(&outcome.report));
    println!("---");
    println!(
        "socket transport across {procs} OS processes; wall time: {:.3} s",
        outcome.wall_s
    );
    println!(
        "stable digest: {:016x} (identical to the in-process run)",
        stable_digest(&outcome.report)
    );
    let m = &outcome.metrics;
    println!(
        "socket: {} frames / {} B sent, {} frames / {} B received",
        m.counter("transport_socket_frames_sent_total").unwrap_or(0),
        m.counter("transport_socket_bytes_sent_total").unwrap_or(0),
        m.counter("transport_socket_frames_received_total")
            .unwrap_or(0),
        m.counter("transport_socket_bytes_received_total")
            .unwrap_or(0),
    );
}

fn main() {
    // Worker half of a `--transport socket` run: the parent re-executes
    // this binary with the mesh endpoint in the environment. Workers run
    // the *identical* session; the analyzer partition and engine live in
    // process 0, so a worker's outcome carries no report.
    if let Ok(path) = std::env::var("OPMR_QS_SOCK") {
        let proc_index: usize = std::env::var("OPMR_QS_PROC")
            .expect("OPMR_QS_PROC")
            .parse()
            .expect("proc index");
        let num_procs: usize = std::env::var("OPMR_QS_PROCS")
            .expect("OPMR_QS_PROCS")
            .parse()
            .expect("proc count");
        let cfg =
            SocketConfig::new(Endpoint::Unix(path.into())).connect_timeout(Duration::from_secs(30));
        ring_session()
            .run_multiproc(cfg, proc_index, num_procs)
            .expect("worker session");
        return;
    }

    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let socket = args
        .windows(2)
        .any(|w| w[0] == "--transport" && w[1] == "socket");
    let procs = args
        .windows(2)
        .find(|w| w[0] == "--procs")
        .map(|w| w[1].parse().expect("--procs takes a number"))
        .unwrap_or(2);
    if socket {
        run_socket(json, procs);
        return;
    }

    // The first run also carries the self-monitoring app: a hidden
    // one-rank partition streams the process's own metric registry
    // through the same VMPI machinery it measures, so the report gains
    // an `__obs` chapter profiling the profiler.
    let outcome = ring_session()
        .self_monitor(std::time::Duration::from_millis(10))
        .run()
        .expect("session");

    // LiveOptions is used by workload-driven sessions; mention it so the
    // example doubles as documentation.
    let _ = LiveOptions::default();

    // Same application, this time through the in-network reduction
    // overlay: analyzer ranks double as a fanout-2 TBON, the root posts
    // surviving blocks into the engine (ρ = 1 pass-through — the report
    // is identical to the direct run, modulo wall-clock jitter).
    let tbon = ring_session()
        .coupling(Coupling::Tbon { fanout: 2 })
        .run()
        .expect("tbon session");

    if json {
        println!("{}", to_json(&outcome, &tbon));
        return;
    }

    println!("{}", opmr::analysis::report::to_markdown(&outcome.report));
    println!("---");
    println!(
        "session wall time: {:.3} s; packs streamed: {}",
        outcome.wall_s,
        outcome.report.apps.iter().map(|a| a.packs).sum::<u64>()
    );
    println!(
        "stable digest: {:016x} (timing-scrubbed, `__obs` excluded; \
         identical under `--transport socket`)",
        stable_digest_filtered(&outcome.report, |a| a.name != "__obs")
    );
    println!("---");
    println!("TBON overlay (fanout 2, pass-through) — per-node counters:");
    for (node, s) in &tbon.reduce_stats {
        println!(
            "  node {node}: {} blocks in / {} forwarded, {} B in / {} B out, \
             {} merges, {} windows",
            s.blocks_in, s.blocks_forwarded, s.bytes_in, s.bytes_out, s.merges, s.windows_closed
        );
    }
    println!("---");
    println!("observability registry (excerpt; full set via --json):");
    let m = &tbon.metrics;
    println!(
        "  stream: {} blocks sent ({} B), {} EAGAIN polls, {} backpressure waits",
        m.counter("vmpi_stream_blocks_sent_total").unwrap_or(0),
        m.counter("vmpi_stream_write_bytes_total").unwrap_or(0),
        m.counter("vmpi_stream_eagain_total").unwrap_or(0),
        m.counter("vmpi_stream_backpressure_waits_total")
            .unwrap_or(0),
    );
    if let Some(h) = m.histogram("reduce_window_merge_latency_ns") {
        println!(
            "  reduce: {} windows closed, merge latency p50 ≤ {} ns, p99 ≤ {} ns",
            h.count,
            h.quantile(0.5),
            h.quantile(0.99),
        );
    }
    println!(
        "  blackboard: {} entries posted, {} KS invocations",
        m.counter("blackboard_entries_posted_total").unwrap_or(0),
        m.counter("blackboard_ks_invocations_total").unwrap_or(0),
    );
}
