//! Raw coupling building blocks: the paper's Figures 11 and 12, translated.
//!
//! ```sh
//! cargo run --example stream_pipeline
//! ```
//!
//! Three "instrumented program" partitions map themselves onto one
//! "Analyzer" partition with `VMPI_Map` (round-robin pivot protocol) and
//! push 1 MB blocks through VMPI streams; the analyzer drains with
//! non-blocking reads until every writer closed — the exact code shape of
//! the paper's listings, in the Rust API.

#![allow(clippy::unwrap_used, clippy::expect_used)] // examples favour brevity

use opmr::runtime::Launcher;
use opmr::vmpi::map::map_partitions;
use opmr::vmpi::{
    Balance, Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError, WriteStream,
};
use std::sync::atomic::{AtomicU64, Ordering};

static RECEIVED: AtomicU64 = AtomicU64::new(0);

const BLOCK: usize = 1 << 20;
const BLOCKS_PER_WRITER: usize = 64;

/// Figure 11 — the instrumented-program side.
fn writer_body(vmpi: &Vmpi) {
    // Retrieve the analyzer partition (VMPI_Get_desc_by_name).
    let Some(analyzer) = vmpi.partition_by_name("Analyzer") else {
        eprintln!("Could not locate analyzer partition");
        std::process::exit(1);
    };
    // Map to analyzer (VMPI_Map_partitions, round robin).
    let mut map = Map::new();
    map_partitions(vmpi, analyzer.id, MapPolicy::RoundRobin, &mut map).expect("map");
    // Initialize + open stream (VMPI_Stream_init / VMPI_Stream_open_map "w").
    let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin);
    let mut stream = WriteStream::open_map(vmpi, &map, cfg, 0).expect("open w");
    // Send some data (VMPI_Stream_write) ... close (VMPI_Stream_close).
    let buff = vec![0u8; BLOCK];
    for _ in 0..BLOCKS_PER_WRITER {
        stream.write(&buff).expect("write");
    }
    stream.close().expect("close");
}

/// Figure 12 — the analyzer side.
fn analyzer_body(vmpi: &Vmpi) {
    // Map each partition except myself (additive mapping).
    let mut map = Map::new();
    for pid in 0..vmpi.partition_count() {
        if pid != vmpi.partition_id() {
            map_partitions(vmpi, pid, MapPolicy::RoundRobin, &mut map).expect("map");
        }
    }
    if map.is_empty() {
        return;
    }
    let cfg = StreamConfig::new(BLOCK, 3, Balance::RoundRobin);
    let mut stream = ReadStream::open_map(vmpi, &map, cfg, 0).expect("open r");
    // Read loop: non-blocking reads, EAGAIN → retry, 0 → all closed.
    loop {
        match stream.read(ReadMode::NonBlocking) {
            Ok(Some(block)) => {
                RECEIVED.fetch_add(block.data.len() as u64, Ordering::Relaxed);
                /* process BUFFER */
            }
            Ok(None) => break, // all remote streams are closed
            Err(VmpiError::Again) => std::thread::yield_now(),
            Err(e) => panic!("stream error: {e}"),
        }
    }
}

fn main() {
    let writers_per_app = 4;
    let apps = 3;
    let analyzers = 2;

    let t0 = std::time::Instant::now();
    let mut launcher = Launcher::new();
    for a in 0..apps {
        launcher = launcher.partition(&format!("app{a}"), writers_per_app, |mpi| {
            writer_body(&Vmpi::new(mpi).unwrap());
        });
    }
    launcher
        .partition("Analyzer", analyzers, |mpi| {
            analyzer_body(&Vmpi::new(mpi).unwrap())
        })
        .run()
        .expect("MPMD job");
    let elapsed = t0.elapsed().as_secs_f64();

    let total = RECEIVED.load(Ordering::Relaxed);
    let expect = (apps * writers_per_app * BLOCKS_PER_WRITER * BLOCK) as u64;
    assert_eq!(total, expect, "every block must arrive exactly once");
    println!(
        "{apps} applications × {writers_per_app} writers → {analyzers} analyzers: \
         {:.1} MiB in {elapsed:.3} s ({:.2} GB/s aggregate)",
        total as f64 / (1 << 20) as f64,
        total as f64 / elapsed / 1e9
    );
}
