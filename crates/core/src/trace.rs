//! The classical trace-based baseline (Figure 1).
//!
//! Identical instrumentation, but event packs are written to per-rank
//! trace files; analysis happens post-mortem by replaying every file into
//! the same engine. This is the workflow the paper replaces — kept both as
//! the comparison baseline and as the equivalence oracle: the profile
//! computed post-mortem from traces must equal the one computed online
//! from streams.

use crate::driver::{run_program, LiveOptions};
use crate::session::SessionError;
use opmr_analysis::{AnalysisEngine, EngineConfig, MultiReport};
use opmr_instrument::{read_sion, read_trace_file, InstrumentedMpi, RecorderStats, SionFile};
use opmr_netsim::Workload;
use opmr_runtime::{Launcher, Mpi, RankError};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Replays every `*.opmr` trace file in `dir` through a fresh analysis
/// engine (the post-mortem pass).
pub fn analyze_trace_dir(dir: &Path, cfg: EngineConfig) -> std::io::Result<MultiReport> {
    let engine = AnalysisEngine::new(cfg);
    engine.start();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "opmr"))
        .collect();
    entries.sort();
    for path in entries {
        for pack in read_trace_file(&path)? {
            engine.post_block(pack);
        }
    }
    Ok(engine.finish())
}

/// Replays every `*.sion` container in `dir` through a fresh engine.
pub fn analyze_sion_dir(dir: &Path, cfg: EngineConfig) -> std::io::Result<MultiReport> {
    let engine = AnalysisEngine::new(cfg);
    engine.start();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sion"))
        .collect();
    entries.sort();
    for path in entries {
        for rank_chunks in read_sion(&path)? {
            for pack in rank_chunks {
                engine.post_block(pack);
            }
        }
    }
    Ok(engine.finish())
}

type AppBody = Arc<dyn Fn(&InstrumentedMpi) -> Result<(), RankError> + Send + Sync + 'static>;

struct AppSpec {
    name: String,
    ranks: usize,
    body: AppBody,
}

/// A trace-mode session: same applications, file sink instead of streams.
pub struct TraceSession {
    apps: Vec<AppSpec>,
    dir: PathBuf,
    block_size: usize,
    engine: EngineConfig,
    /// Use one SIONlib-style container per application instead of one file
    /// per rank (the reduced-metadata variant the paper's Score-P runs
    /// use).
    sion: bool,
}

/// Outcome of a trace session.
pub struct TraceOutcome {
    pub report: MultiReport,
    pub recorders: Vec<(String, RecorderStats)>,
    /// Wall time of the instrumented job (excluding post-mortem analysis).
    pub wall_s: f64,
    /// Wall time of the post-mortem analysis pass.
    pub analysis_s: f64,
    /// Total trace bytes on disk.
    pub trace_bytes: u64,
}

impl TraceSession {
    /// Builds a trace session writing under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> TraceSession {
        TraceSession {
            apps: Vec::new(),
            dir: dir.into(),
            block_size: 64 * 1024,
            engine: EngineConfig::default(),
            sion: false,
        }
    }

    /// Switches to the SIONlib-style shared container (one file per
    /// application, multiplexed per-rank chunks).
    pub fn sion(mut self) -> Self {
        self.sion = true;
        self
    }

    /// Pack/block size (bytes).
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes;
        self
    }

    /// Adds an application with a custom body.
    pub fn app<F>(mut self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&InstrumentedMpi) + Send + Sync + 'static,
    {
        self.apps.push(AppSpec {
            name: name.to_string(),
            ranks,
            body: Arc::new(move |imp| {
                body(imp);
                Ok(())
            }),
        });
        self
    }

    /// Adds an application running a generated workload.
    pub fn app_workload(mut self, name: &str, workload: Workload, opts: LiveOptions) -> Self {
        let ranks = workload.ranks();
        let workload = Arc::new(workload);
        self.apps.push(AppSpec {
            name: name.to_string(),
            ranks,
            body: Arc::new(move |imp| {
                run_program(imp, &workload, imp.rank(), &opts)?;
                Ok(())
            }),
        });
        self
    }

    /// Runs instrumentation to trace files, then the post-mortem analysis.
    pub fn run(self) -> Result<TraceOutcome, SessionError> {
        if self.apps.is_empty() {
            return Err(SessionError::Config("no applications added".into()));
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| SessionError::Config(format!("trace dir: {e}")))?;

        let recorders: Arc<Mutex<Vec<(String, RecorderStats)>>> = Arc::new(Mutex::new(Vec::new()));
        let block_size = self.block_size;
        let dir = self.dir.clone();

        let use_sion = self.sion;
        let mut launcher = Launcher::new();
        let mut names = Vec::new();
        for (app_id, spec) in self.apps.into_iter().enumerate() {
            names.push(spec.name.clone());
            let body = spec.body;
            let name = spec.name.clone();
            let recs = Arc::clone(&recorders);
            let dir = dir.clone();
            let container = if use_sion {
                Some(
                    SionFile::create(dir.join(format!("app{app_id}.sion")), spec.ranks as u32)
                        .map_err(|e| SessionError::Config(format!("sion container: {e}")))?,
                )
            } else {
                None
            };
            launcher = launcher.partition_try(&spec.name, spec.ranks, move |mpi: Mpi| {
                let imp = match &container {
                    Some(c) => {
                        InstrumentedMpi::init_sion(mpi, c.clone(), app_id as u16, block_size)?
                    }
                    None => InstrumentedMpi::init_trace(mpi, &dir, app_id as u16, block_size)?,
                };
                body(&imp)?;
                let stats = imp.finalize()?;
                recs.lock().push((name.clone(), stats));
                Ok(())
            });
        }
        let t0 = std::time::Instant::now();
        launcher.run().map_err(SessionError::Launch)?;
        let wall_s = t0.elapsed().as_secs_f64();

        let trace_bytes = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| {
                        e.path()
                            .extension()
                            .is_some_and(|x| x == "opmr" || x == "sion")
                    })
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0);

        let t1 = std::time::Instant::now();
        let mut report = if use_sion {
            analyze_sion_dir(&self.dir, self.engine)
                .map_err(|e| SessionError::Config(format!("post-mortem pass: {e}")))?
        } else {
            analyze_trace_dir(&self.dir, self.engine)
                .map_err(|e| SessionError::Config(format!("post-mortem pass: {e}")))?
        };
        let analysis_s = t1.elapsed().as_secs_f64();
        for (app_id, name) in names.iter().enumerate() {
            if let Some(app) = report.apps.iter_mut().find(|a| a.app_id == app_id as u16) {
                app.name = name.clone();
            }
        }

        let mut recorders = Arc::try_unwrap(recorders)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        recorders.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(TraceOutcome {
            report,
            recorders,
            wall_s,
            analysis_s,
            trace_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::EventKind;
    use opmr_runtime::{Src, TagSel};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("opmr_trace_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn trace_session_produces_report_and_files() {
        let dir = tmpdir("basic");
        let outcome = TraceSession::new(&dir)
            .app("pingpong", 2, |imp| {
                let w = imp.comm_world();
                if imp.rank() == 0 {
                    imp.send(&w, 1, 5, vec![1u8; 128]).unwrap();
                } else {
                    imp.recv(&w, Src::Rank(0), TagSel::Tag(5)).unwrap();
                }
            })
            .run()
            .unwrap();
        assert_eq!(outcome.report.apps.len(), 1);
        let app = &outcome.report.apps[0];
        assert_eq!(app.name, "pingpong");
        assert_eq!(app.profile.kind(EventKind::Send).unwrap().hits, 1);
        assert!(outcome.trace_bytes > 0);
        // Two per-rank trace files exist on disk (the classical workflow).
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "opmr"))
            .collect();
        assert_eq!(files.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_session_rejected() {
        assert!(TraceSession::new(tmpdir("empty")).run().is_err());
    }
}
