//! Online-coupling sessions: the end-to-end user façade.
//!
//! A session assembles one MPMD job (Figure 10): N instrumented
//! application partitions and one "Analyzer" partition. Application ranks
//! initialize the instrumented MPI façade, run their body, finalize;
//! analyzer ranks additively map every application partition, open a read
//! stream across all of them and feed each received block to the shared
//! parallel blackboard engine. When the job ends, the engine is drained
//! and the multi-application report returned — no trace file ever exists.

use crate::driver::{run_program, LiveOptions};
use opmr_analysis::{AnalysisEngine, EngineConfig, MultiReport};
use opmr_instrument::{InstrumentedMpi, RecorderStats};
use opmr_netsim::Workload;
use opmr_reduce::{run_node, NodeConfig, ReduceOp, ReduceStats, Tree};
use opmr_runtime::{Launcher, Mpi, RankError};
use opmr_serve::{run_server, ServeClient, ServeConfig, ServeStats, ShardedStore};
use opmr_vmpi::map::{map_partitions, map_partitions_directed};
use opmr_vmpi::{Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Name of the hidden one-rank application added by
/// [`SessionBuilder::self_monitor`].
pub const SELF_MONITOR_APP: &str = "__obs";

/// How instrumented partitions couple to the analyzer partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Coupling {
    /// The paper's direct partition mapping: every analyzer rank reads its
    /// round-robin share of the writers (Figure 10).
    Direct,
    /// An executable TBON overlay (`opmr-reduce`): analyzer ranks form a
    /// reduction tree of the given fanout; writers attach to the frontier
    /// and data is folded per the configured [`ReduceOp`] on its way to
    /// the tree root.
    Tbon { fanout: usize },
    /// Direct mapping plus live report serving: analyzer ranks publish
    /// versioned snapshots into a [`SnapshotStore`] and answer queries and
    /// subscriptions from client partitions (`SessionBuilder::client`)
    /// over duplex VMPI streams while the run is still in flight.
    Serving,
}

/// Session failure.
#[derive(Debug)]
pub enum SessionError {
    /// One or more ranks panicked.
    Launch(opmr_runtime::launch::LaunchError),
    /// A coupling-layer failure before launch.
    Vmpi(VmpiError),
    /// The socket mesh of a multi-process session failed to assemble.
    Socket(opmr_runtime::SocketError),
    /// Builder misuse.
    Config(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Launch(e) => write!(f, "launch failed: {e}"),
            SessionError::Vmpi(e) => write!(f, "coupling failed: {e}"),
            SessionError::Socket(e) => write!(f, "socket transport failed: {e}"),
            SessionError::Config(what) => write!(f, "bad session config: {what}"),
        }
    }
}

/// How a session's MPMD job is hosted.
enum LaunchPlan {
    /// One process, ranks as threads (`Launcher::run`).
    InProc,
    /// One process of a socket-transport multi-process job
    /// (`Launcher::run_multiproc`).
    Socket {
        socket: opmr_runtime::SocketConfig,
        proc_index: usize,
        num_procs: usize,
        /// Launcher-driven partition placement: `placement[i]` is the
        /// process hosting application partition `i` (add order).
        /// `None` derives the default round-robin spread.
        placement: Option<Vec<usize>>,
    },
}

impl std::error::Error for SessionError {}

type AppBody = Arc<dyn Fn(&InstrumentedMpi) -> Result<(), RankError> + Send + Sync + 'static>;
type ClientBody = Arc<dyn Fn(&mut ServeClient) -> Result<(), RankError> + Send + Sync + 'static>;
type EngineSetup = Box<dyn FnOnce(&AnalysisEngine) + Send>;

struct AppSpec {
    name: String,
    ranks: usize,
    body: AppBody,
}

struct ClientSpec {
    name: String,
    ranks: usize,
    body: ClientBody,
}

/// What a finished session returns.
pub struct SessionOutcome {
    /// The multi-application analysis report.
    pub report: MultiReport,
    /// Per-application recorder totals `(app name, stats)`.
    pub recorders: Vec<(String, RecorderStats)>,
    /// Wall time of the whole MPMD job, seconds.
    pub wall_s: f64,
    /// Per-tree-node reduction counters `(node index, stats)`, ascending;
    /// empty under [`Coupling::Direct`].
    pub reduce_stats: Vec<(usize, ReduceStats)>,
    /// Per-serving-rank counters `(analyzer rank, stats)`, ascending; empty
    /// unless the session ran under [`Coupling::Serving`].
    pub serve_stats: Vec<(usize, ServeStats)>,
    /// The sharded snapshot store of a [`Coupling::Serving`] session,
    /// retained so callers can audit the published per-shard version
    /// history post-run.
    pub snapshot_store: Option<Arc<ShardedStore>>,
    /// Point-in-time copy of the process-wide observability registry
    /// ([`opmr_obs`]) taken when the job ends. The registry is cumulative
    /// across sessions in one process — compare deltas, not absolutes,
    /// when running several sessions in one binary.
    pub metrics: opmr_obs::MetricsSnapshot,
}

impl SessionOutcome {
    /// Renders the report (Markdown, LaTeX, DOT graphs, matrices, PGM
    /// density maps) under `dir`; returns the written paths.
    pub fn write_artifacts(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        opmr_analysis::report::write_artifacts(&self.report, dir.as_ref())
    }

    /// The Markdown rendering of the report.
    pub fn markdown(&self) -> String {
        opmr_analysis::report::to_markdown(&self.report)
    }

    /// The LaTeX rendering of the report (the paper's output format).
    pub fn latex(&self) -> String {
        opmr_analysis::report::to_latex(&self.report)
    }
}

/// Builder for an online-coupling session.
pub struct SessionBuilder {
    apps: Vec<AppSpec>,
    clients: Vec<ClientSpec>,
    analyzer_ranks: usize,
    stream: StreamConfig,
    engine: EngineConfig,
    waitstate: bool,
    metrics: Option<opmr_metrics::MetricsConfig>,
    proxy: Option<(std::path::PathBuf, opmr_analysis::Selection)>,
    engine_setup: Option<EngineSetup>,
    distributed: bool,
    fault_plan: Option<opmr_runtime::FaultPlan>,
    coupling: Coupling,
    reduce_op: ReduceOp,
    reduce_window: usize,
    serve: ServeConfig,
    self_monitor: Option<Duration>,
}

/// Entry point: `Session::builder()`.
pub struct Session;

impl Session {
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            apps: Vec::new(),
            clients: Vec::new(),
            analyzer_ranks: 1,
            stream: StreamConfig {
                block_size: 64 * 1024,
                ..StreamConfig::default()
            },
            engine: EngineConfig::default(),
            waitstate: false,
            metrics: None,
            proxy: None,
            engine_setup: None,
            distributed: false,
            fault_plan: None,
            coupling: Coupling::Direct,
            reduce_op: ReduceOp::PassThrough,
            reduce_window: 8,
            serve: ServeConfig::default(),
            self_monitor: None,
        }
    }
}

impl SessionBuilder {
    /// Number of analyzer ranks (the paper's writer/reader ratio knob).
    pub fn analyzer_ranks(mut self, n: usize) -> Self {
        self.analyzer_ranks = n.max(1);
        self
    }

    /// Stream configuration used by every instrumented application.
    pub fn stream_config(mut self, cfg: StreamConfig) -> Self {
        self.stream = cfg;
        self
    }

    /// Selects the compact delta/varint event-pack layout (wire version 2)
    /// for every recorder in the session. Decoders dispatch on the pack
    /// header, so mixed sessions and replayed legacy traces keep working;
    /// the default stays the fixed layout for bitwise compatibility.
    pub fn pack_encoding(mut self, encoding: opmr_vmpi::PackEncoding) -> Self {
        self.stream.pack_encoding = encoding;
        self
    }

    /// Enables per-block stream compression for every writer in the
    /// session (instrumented apps, TBON partial forwarding, serve deltas —
    /// they all ride the same stream layer). Each frame carries its own
    /// compression flag, so readers need no out-of-band agreement.
    pub fn compression(mut self, compression: opmr_vmpi::Compression) -> Self {
        self.stream.compression = compression;
        self
    }

    /// Analysis-engine configuration.
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }

    /// Enables online wait-state analysis (late-sender / late-receiver
    /// attribution) for every application.
    pub fn waitstate(mut self) -> Self {
        self.waitstate = true;
        self
    }

    /// Enables the time-resolved standard-metrics plane: the event stream
    /// is folded into per-window, per-rank series (load balance,
    /// communication efficiency, serialization/transfer decomposition)
    /// with windows of `window_ns` nanoseconds of application time. Works
    /// under every coupling; TBON frontier nodes fold it in-network.
    pub fn metrics(mut self, window_ns: u64) -> Self {
        self.metrics = Some(opmr_metrics::MetricsConfig {
            window_ns: window_ns.max(1),
        });
        self
    }

    /// Distributed analysis (Section VI future work): every analyzer rank
    /// runs its *own* blackboard engine over its share of the streams;
    /// partial aggregates are merged over MPI at the analyzer root when
    /// the job ends. Temporal maps and the trace proxy are per-engine
    /// views and are disabled in this mode.
    pub fn distributed(mut self) -> Self {
        self.distributed = true;
        self
    }

    /// Selects how writers couple to the analyzer partition: the paper's
    /// direct mapping (default) or the executable TBON reduction overlay.
    pub fn coupling(mut self, c: Coupling) -> Self {
        self.coupling = c;
        self
    }

    /// Reduction operator applied by TBON nodes (ignored under
    /// [`Coupling::Direct`]). Pass-through keeps the report byte-identical
    /// to direct mapping; `Aggregate` merges windows in-network and the
    /// engine is bypassed entirely.
    pub fn reduce_op(mut self, op: ReduceOp) -> Self {
        self.reduce_op = op;
        self
    }

    /// Blocks absorbed per aggregation window before a TBON node forwards
    /// the merged partial upward.
    pub fn reduce_window(mut self, blocks: usize) -> Self {
        self.reduce_window = blocks.max(1);
        self
    }

    /// Injects seeded transport faults into the stream message path —
    /// chaos testing for the whole coupling (see `opmr_runtime::FaultPlan`).
    /// Restrict the plan with `with_only_tags(opmr_vmpi::stream::data_tag_range())`
    /// so handshake protocols (partition registry, map pivot) stay reliable.
    pub fn fault_plan(mut self, plan: opmr_runtime::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs a setup callback against the analysis engine before launch —
    /// the hook for registering custom knowledge sources (the paper's
    /// plugin mechanism).
    pub fn engine_setup(mut self, f: impl FnOnce(&AnalysisEngine) + Send + 'static) -> Self {
        self.engine_setup = Some(Box::new(f));
        self
    }

    /// Attaches the selective-trace IO proxy: events surviving `selection`
    /// land in `dir/app<N>_selected.opmr` alongside the online analysis.
    pub fn trace_proxy(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        selection: opmr_analysis::Selection,
    ) -> Self {
        self.proxy = Some((dir.into(), selection));
        self
    }

    /// Adds an instrumented application with a custom body.
    pub fn app<F>(self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&InstrumentedMpi) + Send + Sync + 'static,
    {
        self.app_try(name, ranks, move |imp| {
            body(imp);
            Ok(())
        })
    }

    /// Adds an instrumented application whose body may fail with a typed
    /// error. A returned `Err` tears the job down exactly like a rank
    /// panic, but is reported as [`opmr_runtime::FailureKind::Errored`]
    /// with the error's message.
    pub fn app_try<F>(mut self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&InstrumentedMpi) -> Result<(), RankError> + Send + Sync + 'static,
    {
        assert!(ranks > 0, "application needs at least one rank");
        self.apps.push(AppSpec {
            name: name.to_string(),
            ranks,
            body: Arc::new(body),
        });
        self
    }

    /// Adds a client partition (requires [`Coupling::Serving`]): each rank
    /// is mapped onto a serving analyzer rank, connected, handed to `body`
    /// and disconnected afterwards.
    pub fn client<F>(self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&mut ServeClient) + Send + Sync + 'static,
    {
        self.client_try(name, ranks, move |client| {
            body(client);
            Ok(())
        })
    }

    /// Adds a client partition whose body may fail with a typed error
    /// (the fallible counterpart of [`SessionBuilder::client`]).
    pub fn client_try<F>(mut self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&mut ServeClient) -> Result<(), RankError> + Send + Sync + 'static,
    {
        assert!(ranks > 0, "client partition needs at least one rank");
        self.clients.push(ClientSpec {
            name: name.to_string(),
            ranks,
            body: Arc::new(body),
        });
        self
    }

    /// Serve-plane configuration (publication cadence, snapshot ring size,
    /// subscriber flow-control credits, serve-stream shape).
    pub fn serve_config(mut self, cfg: ServeConfig) -> Self {
        self.serve = cfg;
        self
    }

    /// Enables the self-monitoring application: a hidden one-rank
    /// partition ([`SELF_MONITOR_APP`]) that samples the process-wide
    /// observability registry every `interval` and streams the samples —
    /// one Marker event per metric, keyed by registry id — through the
    /// same VMPI stream machinery those metrics measure. The analysis
    /// engine thus reports on its own runtime as one more profiled
    /// application; its chapter appears in the final report under the
    /// `__obs` name.
    pub fn self_monitor(mut self, interval: Duration) -> Self {
        self.self_monitor = Some(interval);
        self
    }

    /// Adds an application that live-runs a generated workload program.
    pub fn app_workload(self, name: &str, workload: Workload, opts: LiveOptions) -> Self {
        let ranks = workload.ranks();
        let workload = Arc::new(workload);
        self.app_try(name, ranks, move |imp| {
            run_program(imp, &workload, imp.rank(), &opts)?;
            Ok(())
        })
    }

    /// Runs the session to completion.
    pub fn run(self) -> Result<SessionOutcome, SessionError> {
        self.run_inner(LaunchPlan::InProc)
    }

    /// Runs the session as one process of a socket-transport
    /// multi-process job. Every participating process must build an
    /// *identical* session (same applications, same configuration, same
    /// order) and call this with its own `proc_index`; the processes
    /// find each other through `socket`'s endpoint.
    ///
    /// Placement is derived, not configurable: the analyzer partition,
    /// client partitions and the hidden self-monitor stay on process 0 —
    /// the shared analysis engine and snapshot store live in that
    /// address space — while application partitions spread round-robin
    /// over processes `1..num_procs`. Only process 0's outcome carries
    /// the report; worker processes get an empty one (their engine
    /// ingests nothing), and `recorders` always covers just the ranks
    /// hosted by the calling process.
    pub fn run_multiproc(
        self,
        socket: opmr_runtime::SocketConfig,
        proc_index: usize,
        num_procs: usize,
    ) -> Result<SessionOutcome, SessionError> {
        if self.distributed {
            return Err(SessionError::Config(
                "distributed analysis gathers partials inside one process; \
                 multi-process sessions use the shared engine on process 0"
                    .into(),
            ));
        }
        self.run_inner(LaunchPlan::Socket {
            socket,
            proc_index,
            num_procs,
            placement: None,
        })
    }

    /// Like [`run_multiproc`](Self::run_multiproc), but with the
    /// application→process placement chosen by the caller (typically the
    /// `opmr launch` control plane) instead of the derived round-robin:
    /// `placement[i]` names the process hosting application partition
    /// `i`, in the order the applications were added. The analyzer,
    /// client partitions and the self-monitor still live on process 0.
    /// Every process of the job must pass the identical placement.
    pub fn run_multiproc_placed(
        self,
        socket: opmr_runtime::SocketConfig,
        proc_index: usize,
        num_procs: usize,
        placement: Vec<usize>,
    ) -> Result<SessionOutcome, SessionError> {
        if self.distributed {
            return Err(SessionError::Config(
                "distributed analysis gathers partials inside one process; \
                 multi-process sessions use the shared engine on process 0"
                    .into(),
            ));
        }
        if placement.len() != self.apps.len() {
            return Err(SessionError::Config(format!(
                "placement names {} partitions but the session has {} applications",
                placement.len(),
                self.apps.len()
            )));
        }
        if let Some(bad) = placement.iter().find(|p| **p >= num_procs) {
            return Err(SessionError::Config(format!(
                "placement targets process {bad} but the job has only {num_procs} processes"
            )));
        }
        self.run_inner(LaunchPlan::Socket {
            socket,
            proc_index,
            num_procs,
            placement: Some(placement),
        })
    }

    fn run_inner(mut self, plan: LaunchPlan) -> Result<SessionOutcome, SessionError> {
        if self.apps.is_empty() {
            return Err(SessionError::Config("no applications added".into()));
        }
        // Process placement (socket plan only): application partition `i`
        // lands on worker process `1 + (i % workers)`; everything stateful
        // (analyzer, clients, self-monitor) stays on process 0.
        let (workers, placement) = match &plan {
            LaunchPlan::InProc => (0, None),
            LaunchPlan::Socket {
                num_procs,
                placement,
                ..
            } => (num_procs.saturating_sub(1), placement.clone()),
        };
        let app_proc = move |i: usize| match &placement {
            Some(p) => p.get(i).copied().unwrap_or(0),
            None if workers == 0 => 0,
            None => 1 + (i % workers),
        };
        let coupling = self.coupling;
        if self.distributed && matches!(coupling, Coupling::Serving) {
            return Err(SessionError::Config(
                "live serving publishes from the shared engine; distributed \
                 analysis is unsupported"
                    .into(),
            ));
        }
        if self.distributed && !matches!(coupling, Coupling::Direct) {
            return Err(SessionError::Config(
                "distributed analysis and TBON coupling are alternative scaling \
                 paths; pick one"
                    .into(),
            ));
        }
        if !self.clients.is_empty() && !matches!(coupling, Coupling::Serving) {
            return Err(SessionError::Config(
                "client partitions require Coupling::Serving".into(),
            ));
        }
        // The self-monitor rides along as one more instrumented app, added
        // before ids/names/partition counts are derived so every layer
        // treats it uniformly. It samples until the *user* application
        // ranks have all finished (tracked by a shared countdown), then
        // takes one closing sample and finalizes like any other app. The
        // countdown only covers ranks hosted in the monitor's own process
        // (process 0) — each process has its own registry and its own copy
        // of this counter, and remote ranks never decrement it.
        if let Some(interval) = self.self_monitor {
            let colocated: usize = self
                .apps
                .iter()
                .enumerate()
                .filter(|(i, _)| app_proc(*i) == 0)
                .map(|(_, s)| s.ranks)
                .sum();
            let live = Arc::new(AtomicUsize::new(colocated));
            for spec in &mut self.apps {
                let inner = Arc::clone(&spec.body);
                let live = Arc::clone(&live);
                spec.body = Arc::new(move |imp| {
                    let result = inner(imp);
                    // Decrement even on error so the monitor never waits on
                    // a rank that will not finish.
                    live.fetch_sub(1, Ordering::SeqCst);
                    result
                });
            }
            self.apps.push(AppSpec {
                name: SELF_MONITOR_APP.to_string(),
                ranks: 1,
                body: Arc::new(move |imp| self_monitor_body(imp, interval, &live)),
            });
        }
        let names: std::collections::HashMap<u16, String> = self
            .apps
            .iter()
            .enumerate()
            .map(|(id, s)| (id as u16, s.name.clone()))
            .collect();
        let distributed = self.distributed;
        let waitstate = self.waitstate;
        let metrics = self.metrics;
        let engine_cfg = self.engine;
        let node_cfg = NodeConfig {
            op: self.reduce_op,
            window_blocks: self.reduce_window,
            waitstate,
            metrics,
        };
        // In-network aggregation produces merged partials, never raw event
        // packs — the blackboard engine is bypassed like distributed mode.
        let tbon_aggregate = matches!(coupling, Coupling::Tbon { .. })
            && matches!(self.reduce_op, ReduceOp::Aggregate);

        // Shared-engine mode keeps one engine for all analyzer ranks;
        // distributed mode builds one per analyzer rank inside its closure.
        let engine = if distributed || tbon_aggregate {
            None
        } else {
            let engine = AnalysisEngine::new(engine_cfg);
            if waitstate {
                engine.enable_waitstate();
            }
            if let Some(m) = metrics {
                engine.enable_metrics(m);
            }
            if let Some((dir, selection)) = self.proxy.take() {
                engine.attach_trace_proxy(dir, selection);
            }
            for (id, name) in &names {
                engine.set_app_name(*id, name);
            }
            if let Some(setup) = self.engine_setup.take() {
                setup(&engine);
            }
            engine.start();
            Some(engine)
        };
        let merged_slot: Arc<Mutex<Option<MultiReport>>> = Arc::new(Mutex::new(None));
        let reduce_stats: Arc<Mutex<Vec<(usize, ReduceStats)>>> = Arc::new(Mutex::new(Vec::new()));

        let recorders: Arc<Mutex<Vec<(String, RecorderStats)>>> = Arc::new(Mutex::new(Vec::new()));
        let stream_cfg = self.stream;
        let analyzer_ranks = self.analyzer_ranks;
        let n_apps = self.apps.len();
        let mut serve_cfg = self.serve;
        // Serve deltas ride the same compressed hot path as event packs:
        // unless the serve plane was given its own codec, it inherits the
        // session's. Frames self-describe, so clients need no agreement.
        if serve_cfg.stream.compression == opmr_vmpi::Compression::None {
            serve_cfg.stream.compression = stream_cfg.compression;
        }

        // Serving: the engine publishes a versioned snapshot into the store
        // at every window boundary; the serving loops read it from there.
        let store = if matches!(coupling, Coupling::Serving) {
            let store = Arc::new(ShardedStore::new(
                serve_cfg.shards,
                serve_cfg.ring,
                analyzer_ranks,
            ));
            let Some(engine) = engine.as_ref() else {
                return Err(SessionError::Config(
                    "serving requires the shared engine".into(),
                ));
            };
            let publish_to = Arc::clone(&store);
            engine.attach_snapshot_publisher(
                serve_cfg.publish_every_packs,
                Arc::new(move |parts| {
                    // An encode-overflow here is already typed and counted
                    // at the failure site; the publication window is simply
                    // skipped rather than crashing the engine worker.
                    let _ = publish_to.publish(parts);
                }),
            );
            Some(store)
        } else {
            None
        };
        let serve_stats: Arc<Mutex<Vec<(usize, ServeStats)>>> = Arc::new(Mutex::new(Vec::new()));

        let mut launcher = Launcher::new();
        if let Some(fp) = self.fault_plan.take() {
            launcher = launcher.fault_plan(fp);
        }
        // Partition order is apps (incl. the self-monitor), Analyzer,
        // clients; the explicit process assignment mirrors it. The
        // self-monitor samples process 0's registry, so it lives there.
        let mut assign: Vec<usize> = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.name == SELF_MONITOR_APP {
                    0
                } else {
                    app_proc(i)
                }
            })
            .collect();
        assign.push(0); // Analyzer
        assign.extend(std::iter::repeat_n(0, self.clients.len()));
        for (app_id, spec) in self.apps.into_iter().enumerate() {
            let body = spec.body;
            let name = spec.name.clone();
            let recs = Arc::clone(&recorders);
            launcher = launcher.partition_try(&spec.name, spec.ranks, move |mpi: Mpi| {
                let imp = match coupling {
                    // Serving keeps the paper's direct writer mapping; only
                    // the analyzer side grows the serve plane.
                    Coupling::Direct | Coupling::Serving => {
                        InstrumentedMpi::init(mpi, "Analyzer", stream_cfg, 0, app_id as u16)
                    }
                    Coupling::Tbon { fanout } => {
                        // Both sides derive the same tree from (fanout,
                        // analyzer size); only the pivot evaluates the policy.
                        let policy = Tree::new(fanout, analyzer_ranks).leaf_policy();
                        InstrumentedMpi::init_directed(
                            mpi,
                            "Analyzer",
                            policy,
                            stream_cfg,
                            0,
                            app_id as u16,
                        )
                    }
                }?;
                body(&imp)?;
                let stats = imp.finalize()?;
                recs.lock().push((name.clone(), stats));
                Ok(())
            });
        }
        let engine_for_analyzer = engine.clone();
        let names_for_analyzer = names.clone();
        let slot_for_analyzer = Arc::clone(&merged_slot);
        let stats_for_analyzer = Arc::clone(&reduce_stats);
        let store_for_analyzer = store.clone();
        let serve_stats_sink = Arc::clone(&serve_stats);
        let serve_for_analyzer = serve_cfg.clone();
        launcher =
            launcher.partition_try("Analyzer", analyzer_ranks, move |mpi: Mpi| match coupling {
                Coupling::Direct => match &engine_for_analyzer {
                    Some(engine) => analyzer_rank(mpi, engine, stream_cfg),
                    None => distributed_analyzer_rank(
                        mpi,
                        stream_cfg,
                        engine_cfg,
                        waitstate,
                        metrics,
                        &names_for_analyzer,
                        &slot_for_analyzer,
                    ),
                },
                Coupling::Tbon { fanout } => tbon_analyzer_rank(
                    mpi,
                    fanout,
                    &node_cfg,
                    engine_for_analyzer.as_ref(),
                    stream_cfg,
                    &names_for_analyzer,
                    &slot_for_analyzer,
                    &stats_for_analyzer,
                ),
                Coupling::Serving => serving_analyzer_rank(
                    mpi,
                    engine_for_analyzer
                        .as_ref()
                        .ok_or("serving requires the shared engine")?,
                    store_for_analyzer
                        .as_ref()
                        .ok_or("serving builds the store before launch")?,
                    stream_cfg,
                    &serve_for_analyzer,
                    n_apps,
                    &serve_stats_sink,
                ),
            });
        // Client partitions launch after the analyzer so their world ranks
        // sit above every serving rank (the duplex-stream parity the serve
        // protocol relies on).
        let analyzer_pid = n_apps;
        for spec in std::mem::take(&mut self.clients) {
            let body = spec.body;
            let tenant = spec.name.clone();
            let serve_for_client = serve_cfg.clone();
            launcher = launcher.partition_try(&spec.name, spec.ranks, move |mpi: Mpi| {
                let v = Vmpi::new(mpi)?;
                let mut map = Map::new();
                // With tree fan-out the clients attach to the frontier of
                // the same tree the serving ranks derive from (fanout,
                // analyzer size); otherwise they spread round-robin. Both
                // sides of the pivot must evaluate the same policy.
                let policy = match serve_for_client.fan_out {
                    Some(f) => Tree::new(f, analyzer_ranks).leaf_policy(),
                    None => MapPolicy::RoundRobin,
                };
                map_partitions_directed(&v, analyzer_pid, analyzer_pid, policy, &mut map)?;
                let server = map
                    .peers()
                    .first()
                    .copied()
                    .ok_or("client mapping produced no serving peer")?;
                let mut client = ServeClient::connect_as(&v, server, &tenant, &serve_for_client)?;
                body(&mut client)?;
                client.close()?;
                Ok(())
            });
        }

        let t0 = std::time::Instant::now();
        match plan {
            LaunchPlan::InProc => launcher.run().map_err(SessionError::Launch)?,
            LaunchPlan::Socket {
                socket,
                proc_index,
                num_procs,
                placement: _,
            } => {
                let topo = opmr_runtime::MultiprocTopology::new(socket, proc_index, num_procs)
                    .assign(opmr_runtime::PartitionAssign::Explicit(assign));
                launcher.run_multiproc(topo).map_err(|e| match e {
                    opmr_runtime::MultiprocError::Launch(l) => SessionError::Launch(l),
                    opmr_runtime::MultiprocError::Socket(s) => SessionError::Socket(s),
                })?;
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();

        let report = match engine {
            Some(engine) => engine.finish(),
            None => merged_slot.lock().take().ok_or_else(|| {
                SessionError::Config("distributed merge produced no report".into())
            })?,
        };
        let mut recorders = Arc::try_unwrap(recorders)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        recorders.sort_by(|a, b| a.0.cmp(&b.0));
        let mut reduce_stats = Arc::try_unwrap(reduce_stats)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        reduce_stats.sort_by_key(|e| e.0);
        let mut serve_stats = Arc::try_unwrap(serve_stats)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        serve_stats.sort_by_key(|e| e.0);
        Ok(SessionOutcome {
            report,
            recorders,
            wall_s,
            reduce_stats,
            serve_stats,
            snapshot_store: store,
            metrics: opmr_obs::registry().snapshot(),
        })
    }
}

/// Body of the hidden self-monitoring rank: sample the process-wide
/// metric registry, stream the sample as instrumentation events, sleep,
/// repeat until every user application rank has finished, then take one
/// closing sample so final totals reach the engine before the stream
/// closes.
fn self_monitor_body(
    imp: &InstrumentedMpi,
    interval: Duration,
    live: &AtomicUsize,
) -> Result<(), RankError> {
    let mut seq = 0u64;
    loop {
        emit_metrics_sample(imp, seq)?;
        seq += 1;
        if live.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(interval);
    }
    emit_metrics_sample(imp, seq)
}

/// One registry sample: a Marker event per metric, tag = registry id.
/// Counters and gauges carry the value in `bytes` and the sample sequence
/// number in `duration_ns`; histograms carry observation count and sum.
fn emit_metrics_sample(imp: &InstrumentedMpi, seq: u64) -> Result<(), RankError> {
    let snap = opmr_obs::registry().snapshot();
    for c in &snap.counters {
        imp.metric(c.id, c.value, seq)?;
    }
    for g in &snap.gauges {
        imp.metric(g.id, g.value as u64, seq)?;
    }
    for h in &snap.histograms {
        imp.metric(h.id, h.count, h.sum)?;
    }
    Ok(())
}

/// TBON analyzer rank: run one reduction-tree node over this rank's share
/// of the overlay. The root feeds surviving raw blocks into the shared
/// engine (pass-through / filter) or merges in-network partials into the
/// final report (aggregate).
#[allow(clippy::too_many_arguments)]
fn tbon_analyzer_rank(
    mpi: Mpi,
    fanout: usize,
    node_cfg: &NodeConfig,
    engine: Option<&AnalysisEngine>,
    stream_cfg: StreamConfig,
    names: &std::collections::HashMap<u16, String>,
    slot: &Mutex<Option<MultiReport>>,
    stats_sink: &Mutex<Vec<(usize, ReduceStats)>>,
) -> Result<(), RankError> {
    let v = Vmpi::new(mpi)?;
    let tree = Tree::new(fanout, v.size());
    // Additively adopt every application's leaves (Figure 10), with the
    // tree partition mastering each mapping so frontier nodes get their
    // children regardless of relative partition sizes.
    let mut map = Map::new();
    for pid in 0..v.partition_count() {
        if pid != v.partition_id() {
            map_partitions_directed(&v, pid, v.partition_id(), tree.leaf_policy(), &mut map)?;
        }
    }
    let outcome = run_node(&v, &tree, map.peers(), stream_cfg, 0, node_cfg, |block| {
        if let Some(engine) = engine {
            engine.post_block(block);
        }
    })?;
    if v.rank() == 0 && matches!(node_cfg.op, ReduceOp::Aggregate) {
        let sets = vec![outcome
            .partials
            .iter()
            .map(|p| p.to_app_partial())
            .collect::<Vec<_>>()];
        *slot.lock() = Some(MultiReport::from_partials(sets, names));
    }
    stats_sink.lock().push((v.rank(), outcome.stats));
    Ok(())
}

/// Distributed-analysis analyzer rank (Section VI): local engine per rank,
/// partial aggregates gathered to the analyzer root and merged.
fn distributed_analyzer_rank(
    mpi: Mpi,
    stream_cfg: StreamConfig,
    engine_cfg: EngineConfig,
    waitstate: bool,
    metrics: Option<opmr_metrics::MetricsConfig>,
    names: &std::collections::HashMap<u16, String>,
    slot: &Mutex<Option<MultiReport>>,
) -> Result<(), RankError> {
    let engine = AnalysisEngine::new(engine_cfg);
    if waitstate {
        engine.enable_waitstate();
    }
    if let Some(m) = metrics {
        engine.enable_metrics(m);
    }
    engine.start();
    // Drain this rank's share of the streams into the local engine.
    analyzer_rank(mpi.clone(), &engine, stream_cfg)?;
    let local = engine.finish();
    let partials = local.to_partials();
    let encoded = opmr_analysis::wire::encode_partials(&partials);

    // Gather every analyzer rank's partials at the analyzer-partition root.
    let v = Vmpi::new(mpi)?;
    let analyzer_world = v.comm_world();
    let gathered = v.mpi().gather(&analyzer_world, 0, encoded)?;
    if let Some(parts) = gathered {
        let mut sets: Vec<Vec<opmr_analysis::wire::AppPartial>> = Vec::with_capacity(parts.len());
        for p in &parts {
            sets.push(opmr_analysis::wire::decode_partials(p)?);
        }
        let merged = MultiReport::from_partials(sets, names);
        *slot.lock() = Some(merged);
    }
    Ok(())
}

/// Serving analyzer rank: the paper's direct mapping for the application
/// partitions (pids `0..n_apps`) plus an analyzer-mastered mapping of
/// every client partition (pids `n_apps+1..`), then one serving loop that
/// drains instrumentation into the shared engine while answering client
/// queries and pumping subscriptions.
fn serving_analyzer_rank(
    mpi: Mpi,
    engine: &AnalysisEngine,
    store: &Arc<ShardedStore>,
    stream_cfg: StreamConfig,
    serve_cfg: &ServeConfig,
    n_apps: usize,
    stats_sink: &Mutex<Vec<(usize, ServeStats)>>,
) -> Result<(), RankError> {
    let v = Vmpi::new(mpi)?;
    let mut app_map = Map::new();
    for pid in 0..n_apps {
        map_partitions(&v, pid, MapPolicy::RoundRobin, &mut app_map)?;
    }
    // The analyzer masters the client mappings so every client rank gets
    // assigned exactly one serving rank: the fan-out tree's frontier under
    // tree delivery, spread round-robin otherwise (must mirror the client
    // side of the pivot).
    let client_policy = match serve_cfg.fan_out {
        Some(f) => Tree::new(f, v.my_partition().size).leaf_policy(),
        None => MapPolicy::RoundRobin,
    };
    let mut client_map = Map::new();
    for pid in (n_apps + 1)..v.partition_count() {
        map_partitions_directed(
            &v,
            pid,
            v.partition_id(),
            client_policy.clone(),
            &mut client_map,
        )?;
    }
    let stats = run_server(
        &v,
        engine,
        store,
        app_map.peers(),
        client_map.peers(),
        stream_cfg,
        serve_cfg,
    )?;
    stats_sink.lock().push((v.rank(), stats));
    Ok(())
}

/// Analyzer-rank body: additively map every application partition
/// (Figure 10), then drain blocks into the engine until all writers close.
fn analyzer_rank(
    mpi: Mpi,
    engine: &AnalysisEngine,
    stream_cfg: StreamConfig,
) -> Result<(), RankError> {
    let v = Vmpi::new(mpi)?;
    let mut map = Map::new();
    for pid in 0..v.partition_count() {
        if pid != v.partition_id() {
            map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map)?;
        }
    }
    if map.is_empty() {
        return Ok(());
    }
    let mut stream = ReadStream::open_map(&v, &map, stream_cfg, 0)?;
    loop {
        match stream.read(ReadMode::NonBlocking) {
            Ok(Some(block)) => engine.post_block(block.data),
            Ok(None) => break,
            Err(VmpiError::Again) => std::thread::yield_now(),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::EventKind;
    use opmr_runtime::{Src, TagSel};

    #[test]
    fn single_app_report() {
        let outcome = Session::builder()
            .analyzer_ranks(1)
            .app("ring", 4, |imp| {
                let w = imp.comm_world();
                let n = imp.size();
                let r = imp.rank();
                let req = imp.isend(&w, (r + 1) % n, 0, vec![1u8; 256]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(0))
                    .unwrap();
                imp.wait(req).unwrap();
                imp.barrier(&w).unwrap();
            })
            .run()
            .unwrap();
        assert_eq!(outcome.report.apps.len(), 1);
        let app = &outcome.report.apps[0];
        assert_eq!(app.name, "ring");
        assert_eq!(app.ranks, 4);
        assert_eq!(app.profile.kind(EventKind::Isend).unwrap().hits, 4);
        assert_eq!(app.profile.kind(EventKind::Recv).unwrap().hits, 4);
        assert_eq!(app.topology.edge_count(), 4);
        assert_eq!(outcome.recorders.len(), 4);
        let events: u64 = outcome.recorders.iter().map(|(_, s)| s.events).sum();
        assert_eq!(events, app.events);
    }

    #[test]
    fn concurrent_apps_one_report() {
        // The paper's headline capability: two different programs profiled
        // concurrently into one report with separate chapters.
        let outcome = Session::builder()
            .analyzer_ranks(2)
            .app("alpha", 3, |imp| {
                let w = imp.comm_world();
                imp.barrier(&w).unwrap();
                imp.allreduce_sum(&w, &[imp.rank() as u64]).unwrap();
            })
            .app("beta", 2, |imp| {
                let w = imp.comm_world();
                if imp.rank() == 0 {
                    imp.send(&w, 1, 9, vec![0u8; 64]).unwrap();
                } else {
                    imp.recv(&w, Src::Any, TagSel::Any).unwrap();
                }
            })
            .run()
            .unwrap();
        assert_eq!(outcome.report.apps.len(), 2);
        let alpha = &outcome.report.apps[0];
        let beta = &outcome.report.apps[1];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.ranks, 3);
        assert_eq!(alpha.profile.kind(EventKind::Barrier).unwrap().hits, 3);
        assert!(alpha.profile.kind(EventKind::Send).is_none());
        assert_eq!(beta.name, "beta");
        assert_eq!(beta.ranks, 2);
        assert_eq!(beta.profile.kind(EventKind::Send).unwrap().hits, 1);
    }

    #[test]
    fn empty_session_rejected() {
        assert!(matches!(
            Session::builder().run(),
            Err(SessionError::Config(_))
        ));
    }

    /// Quickstart-shaped ring workload: isend/recv/wait rounds with
    /// periodic barriers and a closing allreduce.
    fn ring_rounds(imp: &opmr_instrument::InstrumentedMpi, rounds: i32) {
        let w = imp.comm_world();
        let n = imp.size();
        let r = imp.rank();
        for round in 0..rounds {
            let req = imp.isend(&w, (r + 1) % n, round, vec![2u8; 256]).unwrap();
            imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(round))
                .unwrap();
            imp.wait(req).unwrap();
            if round % 10 == 0 {
                imp.barrier(&w).unwrap();
            }
        }
        imp.allreduce_sum(&w, &[r as u64]).unwrap();
    }

    /// Projects a report onto its timing-independent content through the
    /// canonical partial encoding, so reports from two *separate runs*
    /// (whose wall-clock duration fields necessarily differ) can be
    /// compared byte-for-byte.
    fn scrubbed_partials(report: &MultiReport) -> Vec<u8> {
        use opmr_analysis::profiler::MpiProfile;
        use opmr_analysis::topology::Topology;
        use opmr_analysis::wire::{encode_partials, AppPartial};
        let parts: Vec<AppPartial> = report
            .to_partials()
            .iter()
            .map(|p| {
                let mut profile = MpiProfile::new();
                for kind in p.profile.kinds() {
                    for rank in 0..p.profile.ranks() {
                        if let Some(c) = p.profile.rank_kind(rank, kind) {
                            profile.absorb_stats(rank, kind, c.hits, 0, c.bytes, 0, 0);
                        }
                    }
                }
                let mut topology = Topology::new();
                for ((s, d), w) in p.topology.sorted_edges() {
                    topology.add_weighted(s, d, w.hits, w.bytes, 0);
                }
                AppPartial {
                    app_id: p.app_id,
                    packs: p.packs,
                    wire_bytes: p.wire_bytes,
                    decode_errors: p.decode_errors,
                    profile,
                    topology,
                    waitstate: None,
                    metrics: None,
                }
            })
            .collect();
        encode_partials(&parts).to_vec()
    }

    fn quickstart_session() -> SessionBuilder {
        Session::builder()
            .analyzer_ranks(3)
            .app("ring", 8, |imp| ring_rounds(imp, 30))
    }

    #[test]
    fn tbon_passthrough_report_is_byte_identical_to_direct() {
        // Acceptance: for ρ = 1 pass-through the overlay must be
        // invisible — the root re-posts exactly the leaf blocks, so the
        // merged report equals direct mapping byte-for-byte (modulo the
        // wall-clock fields scrubbed identically on both sides).
        let direct = quickstart_session().run().unwrap();
        let tbon = quickstart_session()
            .coupling(Coupling::Tbon { fanout: 2 })
            .run()
            .unwrap();

        assert_eq!(
            scrubbed_partials(&direct.report),
            scrubbed_partials(&tbon.report),
            "ρ=1 overlay changed the report"
        );

        // Direct coupling runs no overlay; TBON reports one stat row per
        // analyzer rank, and at ρ=1 every node forwards all it ingests.
        assert!(direct.reduce_stats.is_empty());
        assert_eq!(tbon.reduce_stats.len(), 3);
        let total_packs: u64 = tbon.recorders.iter().map(|(_, s)| s.packs).sum();
        let root = tbon.reduce_stats[0].1;
        assert_eq!(root.blocks_in, total_packs, "root ingests every pack");
        for (node, s) in &tbon.reduce_stats {
            assert_eq!(
                s.blocks_forwarded, s.blocks_in,
                "node {node} dropped traffic at ρ=1"
            );
            assert_eq!(s.peers_lost, 0);
            assert_eq!(s.decode_errors, 0);
        }
    }

    #[test]
    fn tbon_aggregate_report_matches_direct() {
        // Full in-network aggregation: packs never reach the analyzer
        // engine, yet the merged partials carry the same counts.
        let direct = quickstart_session().run().unwrap();
        let tbon = quickstart_session()
            .coupling(Coupling::Tbon { fanout: 2 })
            .reduce_op(ReduceOp::Aggregate)
            .run()
            .unwrap();

        assert_eq!(
            scrubbed_partials(&direct.report),
            scrubbed_partials(&tbon.report),
            "in-network aggregation changed the report"
        );

        // Aggregation actually merged windows, and the upward traffic is
        // partial sets rather than the full event stream.
        let root = tbon.reduce_stats[0].1;
        assert!(root.merges > 0);
        assert!(root.windows_closed > 0);
        let leaf_bytes: u64 = tbon.recorders.iter().map(|(_, s)| s.wire_bytes).sum();
        assert!(
            root.bytes_in < leaf_bytes,
            "root saw {} of {} leaf bytes",
            root.bytes_in,
            leaf_bytes
        );
    }

    #[test]
    fn tbon_filter_reduces_delivered_packs() {
        let direct = quickstart_session().run().unwrap();
        let tbon = quickstart_session()
            .coupling(Coupling::Tbon { fanout: 2 })
            .reduce_op(ReduceOp::Filter { keep_one_in: 2 })
            .run()
            .unwrap();
        let direct_packs: u64 = direct.report.apps.iter().map(|a| a.packs).sum();
        let tbon_packs: u64 = tbon.report.apps.iter().map(|a| a.packs).sum();
        assert!(
            tbon_packs < direct_packs,
            "filtering must shed packs ({tbon_packs} vs {direct_packs})"
        );
        for (_, s) in &tbon.reduce_stats {
            assert!(s.blocks_forwarded <= s.blocks_in);
        }
    }

    #[test]
    fn distributed_and_tbon_are_mutually_exclusive() {
        let res = quickstart_session()
            .distributed()
            .coupling(Coupling::Tbon { fanout: 2 })
            .run();
        assert!(matches!(res, Err(SessionError::Config(_))));
    }
}
