//! Online-coupling sessions: the end-to-end user façade.
//!
//! A session assembles one MPMD job (Figure 10): N instrumented
//! application partitions and one "Analyzer" partition. Application ranks
//! initialize the instrumented MPI façade, run their body, finalize;
//! analyzer ranks additively map every application partition, open a read
//! stream across all of them and feed each received block to the shared
//! parallel blackboard engine. When the job ends, the engine is drained
//! and the multi-application report returned — no trace file ever exists.

use crate::driver::{run_program, LiveOptions};
use opmr_analysis::{AnalysisEngine, EngineConfig, MultiReport};
use opmr_instrument::{InstrumentedMpi, RecorderStats};
use opmr_netsim::Workload;
use opmr_runtime::{Launcher, Mpi};
use opmr_vmpi::map::map_partitions;
use opmr_vmpi::{Map, MapPolicy, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Session failure.
#[derive(Debug)]
pub enum SessionError {
    /// One or more ranks panicked.
    Launch(opmr_runtime::launch::LaunchError),
    /// A coupling-layer failure before launch.
    Vmpi(VmpiError),
    /// Builder misuse.
    Config(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Launch(e) => write!(f, "launch failed: {e}"),
            SessionError::Vmpi(e) => write!(f, "coupling failed: {e}"),
            SessionError::Config(what) => write!(f, "bad session config: {what}"),
        }
    }
}

impl std::error::Error for SessionError {}

type AppBody = Arc<dyn Fn(&InstrumentedMpi) + Send + Sync + 'static>;
type EngineSetup = Box<dyn FnOnce(&AnalysisEngine) + Send>;

struct AppSpec {
    name: String,
    ranks: usize,
    body: AppBody,
}

/// What a finished session returns.
pub struct SessionOutcome {
    /// The multi-application analysis report.
    pub report: MultiReport,
    /// Per-application recorder totals `(app name, stats)`.
    pub recorders: Vec<(String, RecorderStats)>,
    /// Wall time of the whole MPMD job, seconds.
    pub wall_s: f64,
}

impl SessionOutcome {
    /// Renders the report (Markdown, LaTeX, DOT graphs, matrices, PGM
    /// density maps) under `dir`; returns the written paths.
    pub fn write_artifacts(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        opmr_analysis::report::write_artifacts(&self.report, dir.as_ref())
    }

    /// The Markdown rendering of the report.
    pub fn markdown(&self) -> String {
        opmr_analysis::report::to_markdown(&self.report)
    }

    /// The LaTeX rendering of the report (the paper's output format).
    pub fn latex(&self) -> String {
        opmr_analysis::report::to_latex(&self.report)
    }
}

/// Builder for an online-coupling session.
pub struct SessionBuilder {
    apps: Vec<AppSpec>,
    analyzer_ranks: usize,
    stream: StreamConfig,
    engine: EngineConfig,
    waitstate: bool,
    proxy: Option<(std::path::PathBuf, opmr_analysis::Selection)>,
    engine_setup: Option<EngineSetup>,
    distributed: bool,
    fault_plan: Option<opmr_runtime::FaultPlan>,
}

/// Entry point: `Session::builder()`.
pub struct Session;

impl Session {
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            apps: Vec::new(),
            analyzer_ranks: 1,
            stream: StreamConfig {
                block_size: 64 * 1024,
                ..StreamConfig::default()
            },
            engine: EngineConfig::default(),
            waitstate: false,
            proxy: None,
            engine_setup: None,
            distributed: false,
            fault_plan: None,
        }
    }
}

impl SessionBuilder {
    /// Number of analyzer ranks (the paper's writer/reader ratio knob).
    pub fn analyzer_ranks(mut self, n: usize) -> Self {
        self.analyzer_ranks = n.max(1);
        self
    }

    /// Stream configuration used by every instrumented application.
    pub fn stream_config(mut self, cfg: StreamConfig) -> Self {
        self.stream = cfg;
        self
    }

    /// Analysis-engine configuration.
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }

    /// Enables online wait-state analysis (late-sender / late-receiver
    /// attribution) for every application.
    pub fn waitstate(mut self) -> Self {
        self.waitstate = true;
        self
    }

    /// Distributed analysis (Section VI future work): every analyzer rank
    /// runs its *own* blackboard engine over its share of the streams;
    /// partial aggregates are merged over MPI at the analyzer root when
    /// the job ends. Temporal maps and the trace proxy are per-engine
    /// views and are disabled in this mode.
    pub fn distributed(mut self) -> Self {
        self.distributed = true;
        self
    }

    /// Injects seeded transport faults into the stream message path —
    /// chaos testing for the whole coupling (see `opmr_runtime::FaultPlan`).
    /// Restrict the plan with `with_only_tags(opmr_vmpi::stream::data_tag_range())`
    /// so handshake protocols (partition registry, map pivot) stay reliable.
    pub fn fault_plan(mut self, plan: opmr_runtime::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs a setup callback against the analysis engine before launch —
    /// the hook for registering custom knowledge sources (the paper's
    /// plugin mechanism).
    pub fn engine_setup(mut self, f: impl FnOnce(&AnalysisEngine) + Send + 'static) -> Self {
        self.engine_setup = Some(Box::new(f));
        self
    }

    /// Attaches the selective-trace IO proxy: events surviving `selection`
    /// land in `dir/app<N>_selected.opmr` alongside the online analysis.
    pub fn trace_proxy(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        selection: opmr_analysis::Selection,
    ) -> Self {
        self.proxy = Some((dir.into(), selection));
        self
    }

    /// Adds an instrumented application with a custom body.
    pub fn app<F>(mut self, name: &str, ranks: usize, body: F) -> Self
    where
        F: Fn(&InstrumentedMpi) + Send + Sync + 'static,
    {
        assert!(ranks > 0, "application needs at least one rank");
        self.apps.push(AppSpec {
            name: name.to_string(),
            ranks,
            body: Arc::new(body),
        });
        self
    }

    /// Adds an application that live-runs a generated workload program.
    pub fn app_workload(self, name: &str, workload: Workload, opts: LiveOptions) -> Self {
        let ranks = workload.ranks();
        let workload = Arc::new(workload);
        self.app(name, ranks, move |imp| {
            run_program(imp, &workload, imp.rank(), &opts).expect("workload body");
        })
    }

    /// Runs the session to completion.
    pub fn run(mut self) -> Result<SessionOutcome, SessionError> {
        if self.apps.is_empty() {
            return Err(SessionError::Config("no applications added".into()));
        }
        let names: std::collections::HashMap<u16, String> = self
            .apps
            .iter()
            .enumerate()
            .map(|(id, s)| (id as u16, s.name.clone()))
            .collect();
        let distributed = self.distributed;
        let waitstate = self.waitstate;
        let engine_cfg = self.engine;

        // Shared-engine mode keeps one engine for all analyzer ranks;
        // distributed mode builds one per analyzer rank inside its closure.
        let engine = if distributed {
            None
        } else {
            let engine = AnalysisEngine::new(engine_cfg);
            if waitstate {
                engine.enable_waitstate();
            }
            if let Some((dir, selection)) = self.proxy.take() {
                engine.attach_trace_proxy(dir, selection);
            }
            for (id, name) in &names {
                engine.set_app_name(*id, name);
            }
            if let Some(setup) = self.engine_setup.take() {
                setup(&engine);
            }
            engine.start();
            Some(engine)
        };
        let merged_slot: Arc<Mutex<Option<MultiReport>>> = Arc::new(Mutex::new(None));

        let recorders: Arc<Mutex<Vec<(String, RecorderStats)>>> = Arc::new(Mutex::new(Vec::new()));
        let stream_cfg = self.stream;
        let analyzer_ranks = self.analyzer_ranks;

        let mut launcher = Launcher::new();
        if let Some(plan) = self.fault_plan.take() {
            launcher = launcher.fault_plan(plan);
        }
        for (app_id, spec) in self.apps.into_iter().enumerate() {
            let body = spec.body;
            let name = spec.name.clone();
            let recs = Arc::clone(&recorders);
            launcher = launcher.partition(&spec.name, spec.ranks, move |mpi: Mpi| {
                let imp = InstrumentedMpi::init(mpi, "Analyzer", stream_cfg, 0, app_id as u16)
                    .expect("instrumented init");
                body(&imp);
                let stats = imp.finalize().expect("instrumented finalize");
                recs.lock().push((name.clone(), stats));
            });
        }
        let engine_for_analyzer = engine.clone();
        let names_for_analyzer = names.clone();
        let slot_for_analyzer = Arc::clone(&merged_slot);
        launcher = launcher.partition("Analyzer", analyzer_ranks, move |mpi: Mpi| {
            match &engine_for_analyzer {
                Some(engine) => analyzer_rank(mpi, engine, stream_cfg),
                None => distributed_analyzer_rank(
                    mpi,
                    stream_cfg,
                    engine_cfg,
                    waitstate,
                    &names_for_analyzer,
                    &slot_for_analyzer,
                ),
            }
        });

        let t0 = std::time::Instant::now();
        launcher.run().map_err(SessionError::Launch)?;
        let wall_s = t0.elapsed().as_secs_f64();

        let report = match engine {
            Some(engine) => engine.finish(),
            None => merged_slot.lock().take().ok_or_else(|| {
                SessionError::Config("distributed merge produced no report".into())
            })?,
        };
        let mut recorders = Arc::try_unwrap(recorders)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        recorders.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(SessionOutcome {
            report,
            recorders,
            wall_s,
        })
    }
}

/// Distributed-analysis analyzer rank (Section VI): local engine per rank,
/// partial aggregates gathered to the analyzer root and merged.
fn distributed_analyzer_rank(
    mpi: Mpi,
    stream_cfg: StreamConfig,
    engine_cfg: EngineConfig,
    waitstate: bool,
    names: &std::collections::HashMap<u16, String>,
    slot: &Mutex<Option<MultiReport>>,
) {
    let engine = AnalysisEngine::new(engine_cfg);
    if waitstate {
        engine.enable_waitstate();
    }
    engine.start();
    // Drain this rank's share of the streams into the local engine.
    analyzer_rank(mpi.clone(), &engine, stream_cfg);
    let local = engine.finish();
    let partials = local.to_partials();
    let encoded = opmr_analysis::wire::encode_partials(&partials);

    // Gather every analyzer rank's partials at the analyzer-partition root.
    let v = Vmpi::new(mpi);
    let analyzer_world = v.comm_world();
    let gathered = v
        .mpi()
        .gather(&analyzer_world, 0, encoded)
        .expect("partial gather");
    if let Some(parts) = gathered {
        let sets: Vec<Vec<opmr_analysis::wire::AppPartial>> = parts
            .iter()
            .map(|p| opmr_analysis::wire::decode_partials(p).expect("partials decode"))
            .collect();
        let merged = MultiReport::from_partials(sets, names);
        *slot.lock() = Some(merged);
    }
}

/// Analyzer-rank body: additively map every application partition
/// (Figure 10), then drain blocks into the engine until all writers close.
fn analyzer_rank(mpi: Mpi, engine: &AnalysisEngine, stream_cfg: StreamConfig) {
    let v = Vmpi::new(mpi);
    let mut map = Map::new();
    for pid in 0..v.partition_count() {
        if pid != v.partition_id() {
            map_partitions(&v, pid, MapPolicy::RoundRobin, &mut map).expect("analyzer mapping");
        }
    }
    if map.is_empty() {
        return;
    }
    let mut stream = ReadStream::open_map(&v, &map, stream_cfg, 0).expect("analyzer read stream");
    loop {
        match stream.read(ReadMode::NonBlocking) {
            Ok(Some(block)) => engine.post_block(block.data),
            Ok(None) => break,
            Err(VmpiError::Again) => std::thread::yield_now(),
            Err(e) => panic!("analyzer stream failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::EventKind;
    use opmr_runtime::{Src, TagSel};

    #[test]
    fn single_app_report() {
        let outcome = Session::builder()
            .analyzer_ranks(1)
            .app("ring", 4, |imp| {
                let w = imp.comm_world();
                let n = imp.size();
                let r = imp.rank();
                let req = imp.isend(&w, (r + 1) % n, 0, vec![1u8; 256]).unwrap();
                imp.recv(&w, Src::Rank((r + n - 1) % n), TagSel::Tag(0))
                    .unwrap();
                imp.wait(req).unwrap();
                imp.barrier(&w).unwrap();
            })
            .run()
            .unwrap();
        assert_eq!(outcome.report.apps.len(), 1);
        let app = &outcome.report.apps[0];
        assert_eq!(app.name, "ring");
        assert_eq!(app.ranks, 4);
        assert_eq!(app.profile.kind(EventKind::Isend).unwrap().hits, 4);
        assert_eq!(app.profile.kind(EventKind::Recv).unwrap().hits, 4);
        assert_eq!(app.topology.edge_count(), 4);
        assert_eq!(outcome.recorders.len(), 4);
        let events: u64 = outcome.recorders.iter().map(|(_, s)| s.events).sum();
        assert_eq!(events, app.events);
    }

    #[test]
    fn concurrent_apps_one_report() {
        // The paper's headline capability: two different programs profiled
        // concurrently into one report with separate chapters.
        let outcome = Session::builder()
            .analyzer_ranks(2)
            .app("alpha", 3, |imp| {
                let w = imp.comm_world();
                imp.barrier(&w).unwrap();
                imp.allreduce_sum(&w, &[imp.rank() as u64]).unwrap();
            })
            .app("beta", 2, |imp| {
                let w = imp.comm_world();
                if imp.rank() == 0 {
                    imp.send(&w, 1, 9, vec![0u8; 64]).unwrap();
                } else {
                    imp.recv(&w, Src::Any, TagSel::Any).unwrap();
                }
            })
            .run()
            .unwrap();
        assert_eq!(outcome.report.apps.len(), 2);
        let alpha = &outcome.report.apps[0];
        let beta = &outcome.report.apps[1];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.ranks, 3);
        assert_eq!(alpha.profile.kind(EventKind::Barrier).unwrap().hits, 3);
        assert!(alpha.profile.kind(EventKind::Send).is_none());
        assert_eq!(beta.name, "beta");
        assert_eq!(beta.ranks, 2);
        assert_eq!(beta.profile.kind(EventKind::Send).unwrap().hits, 1);
    }

    #[test]
    fn empty_session_rejected() {
        assert!(matches!(
            Session::builder().run(),
            Err(SessionError::Config(_))
        ));
    }
}
