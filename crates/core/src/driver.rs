//! Live execution of simulator rank-programs on the instrumented runtime.
//!
//! The workload generators in `opmr-workloads` emit [`opmr_netsim::Op`]
//! programs. At paper scale those are simulated; at laptop scale this
//! driver *runs* them: every op becomes a real instrumented MPI call on
//! the in-process runtime, so live sessions exercise the full chain
//! (virtualization → streams → blackboard → report) with genuine NAS /
//! EulerMHD communication patterns.

use bytes::Bytes;
use opmr_instrument::InstrumentedMpi;
use opmr_netsim::{CollKind, Op, Phase, Workload};
use opmr_runtime::{Comm, Src, TagSel};
use opmr_vmpi::{Result, VmpiError};
use std::time::Duration;

/// Live-run scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Multiplier applied to simulated compute intervals (1.0 = real time;
    /// live tests typically use 1e-3 or 0.0).
    pub time_scale: f64,
    /// Cap on per-message payload bytes (class-D faces would otherwise
    /// allocate needlessly large buffers in-process).
    pub max_message_bytes: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            time_scale: 0.0,
            max_message_bytes: 1 << 20,
        }
    }
}

const DRIVER_TAG: i32 = 0x0D17;

/// Executes `workload.programs[rank]` on the instrumented handle.
///
/// All ranks of the application must call this with the same workload.
/// Collective groups are materialized as deterministic sub-communicators.
pub fn run_program(
    imp: &InstrumentedMpi,
    workload: &Workload,
    rank: usize,
    opts: &LiveOptions,
) -> Result<()> {
    assert_eq!(
        workload.ranks(),
        imp.size(),
        "workload built for a different application size"
    );
    let world = imp.comm_world();
    let first_world = imp.vmpi().my_partition().first_world_rank;

    // Materialize collective groups as communicators (deterministic ids,
    // no communication needed).
    let mut comms: Vec<Option<Comm>> = Vec::with_capacity(workload.groups.len());
    for (gi, members) in workload.groups.iter().enumerate() {
        if members.contains(&(rank as u32)) {
            let world_ranks: Vec<usize> =
                members.iter().map(|&r| first_world + r as usize).collect();
            comms.push(Some(
                imp.vmpi()
                    .mpi()
                    .comm_from_world_ranks(world_ranks, 0xC0_0000 + gi as u64)?,
            ));
        } else {
            comms.push(None);
        }
    }

    let prog = &workload.programs[rank];
    let mut phase = Phase::start().normalize(prog);
    while let Some(cur) = phase {
        let Some(op) = prog.op_at(cur) else { break };
        execute_op(imp, &world, &comms, rank, op, opts)?;
        phase = cur.advance(prog);
    }
    Ok(())
}

fn payload(bytes: u64, opts: &LiveOptions, fill: u8) -> Bytes {
    let len = (bytes as usize).min(opts.max_message_bytes).max(1);
    Bytes::from(vec![fill; len])
}

fn execute_op(
    imp: &InstrumentedMpi,
    world: &Comm,
    comms: &[Option<Comm>],
    rank: usize,
    op: Op,
    opts: &LiveOptions,
) -> Result<()> {
    match op {
        Op::Compute { ns } => {
            let scaled = (ns * opts.time_scale) as u64;
            if scaled > 0 {
                imp.compute(Duration::from_nanos(scaled))?;
            }
            Ok(())
        }
        Op::Send { to, bytes } => imp.send(
            world,
            to as usize,
            DRIVER_TAG,
            payload(bytes, opts, rank as u8),
        ),
        Op::Recv { from } => {
            imp.recv(world, Src::Rank(from as usize), TagSel::Tag(DRIVER_TAG))?;
            Ok(())
        }
        Op::Exchange { peer, bytes } => {
            imp.sendrecv(
                world,
                peer as usize,
                DRIVER_TAG,
                payload(bytes, opts, rank as u8),
                Src::Rank(peer as usize),
                TagSel::Tag(DRIVER_TAG),
            )?;
            Ok(())
        }
        Op::Coll { group, kind, bytes } => {
            let comm = comms.get(group as usize).and_then(|c| c.as_ref()).ok_or(
                VmpiError::InvalidConfig("workload op references a group without this rank"),
            )?;
            let local = comm
                .local_of_world(imp.vmpi().my_partition().first_world_rank + rank)
                .ok_or(VmpiError::InvalidConfig(
                    "rank missing from its group communicator",
                ))?;
            match kind {
                CollKind::Barrier => imp.barrier(comm),
                CollKind::Bcast => {
                    let data = if local == 0 {
                        Some(payload(bytes, opts, 0xB0))
                    } else {
                        None
                    };
                    imp.bcast(comm, 0, data).map(|_| ())
                }
                CollKind::Reduce => {
                    let n = ((bytes as usize / 8).clamp(1, 4096)).max(1);
                    imp.reduce_sum(comm, 0, &vec![1.0f64; n]).map(|_| ())
                }
                CollKind::Allreduce => {
                    let n = ((bytes as usize / 8).clamp(1, 4096)).max(1);
                    imp.allreduce_sum(comm, &vec![1.0f64; n]).map(|_| ())
                }
                CollKind::Gather => imp.gather(comm, 0, payload(bytes, opts, 0x6A)).map(|_| ()),
                CollKind::Allgather => imp.allgather(comm, payload(bytes, opts, 0xAC)).map(|_| ()),
                CollKind::Alltoall => {
                    let parts: Vec<Bytes> = (0..comm.size())
                        .map(|_| payload(bytes, opts, 0xA2))
                        .collect();
                    imp.alltoall(comm, parts).map(|_| ())
                }
            }
        }
        // File-system ops are modelled as synthetic POSIX events (live runs
        // must not touch a real shared FS).
        Op::FsWrite { bytes } => imp.posix(
            opmr_events::EventKind::PosixWrite,
            bytes,
            Duration::from_micros(5),
        ),
        Op::FsMeta => imp.posix(
            opmr_events::EventKind::PosixOpen,
            0,
            Duration::from_micros(2),
        ),
    }
}
