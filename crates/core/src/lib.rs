//! # opmr-core — online-coupling sessions
//!
//! The façade tying the whole measurement chain together, reproducing the
//! paper's user experience: *"a user launching multiple instrumented
//! applications is able to get a dedicated report with full details of
//! each program's behaviour, briefly after execution ends"*.
//!
//! * [`session::Session`] — launches N application partitions plus one
//!   analyzer partition in a single MPMD job; applications run against the
//!   instrumented MPI façade and stream event packs over VMPI streams; the
//!   analyzer ranks drain the streams into the parallel blackboard engine;
//!   `run` returns the multi-application report.
//! * [`driver`] — executes an `opmr_netsim` rank program (the same NAS /
//!   EulerMHD generators the simulator consumes) live on the instrumented
//!   runtime, scaling compute intervals to keep in-process runs short.
//! * [`trace`] — the classical baseline: identical instrumentation, but
//!   packs land in per-rank trace files which a post-mortem pass feeds to
//!   the same analysis engine. Used by the equivalence tests ("streamed
//!   analysis is very close to post-mortem analysis") and the live
//!   overhead comparisons.

pub mod driver;
pub mod session;
pub mod trace;

pub use driver::{run_program, LiveOptions};
pub use session::{
    Coupling, Session, SessionBuilder, SessionError, SessionOutcome, SELF_MONITOR_APP,
};
pub use trace::{analyze_sion_dir, analyze_trace_dir, TraceSession};
