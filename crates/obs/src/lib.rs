//! # opmr-obs — the tool observing itself
//!
//! The paper's thesis is that measurement should flow online instead of
//! post-mortem; this crate applies the same discipline to the runtime's
//! own machinery. Every layer (VMPI streams, the transport, TBON
//! reduction nodes, the blackboard, the serve plane) counts into one
//! process-wide [`Registry`] of lock-light metrics:
//!
//! * [`Counter`] — monotone relaxed-atomic `u64` (`fetch_add` on the hot
//!   path, nothing else);
//! * [`Gauge`] — signed level (`i64`) for in-flight / open-resource
//!   tracking;
//! * [`Histogram`] — fixed power-of-four buckets covering 1 ns to ≈4 s,
//!   recording with two relaxed `fetch_add`s plus a branch-free bucket
//!   index from `leading_zeros`.
//!
//! Registration takes a mutex once per metric name; the returned
//! `Arc` handles are cached in per-module statics so steady-state
//! increments never touch a lock (see `obs_bench` for the measured
//! per-increment cost). Three sinks consume the registry:
//!
//! 1. [`MetricsSnapshot::render_text`] — a Prometheus-style text page;
//! 2. [`MetricsSnapshot::to_json`] — the `metrics` object of
//!    `quickstart --json` and `SessionOutcome::metrics`;
//! 3. the session self-monitor (`SessionBuilder::self_monitor`), which
//!    periodically converts a snapshot into Marker events and streams
//!    them as ordinary event packs over a VMPI stream into the analysis
//!    engine — the measurement pipeline eating its own dogfood.

mod metrics;
mod registry;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, HIST_BUCKETS};
pub use registry::{registry, Registry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
