//! Point-in-time metric snapshots and their renderings.

use crate::metrics::{bucket_bound, HIST_BUCKETS};

/// One counter at snapshot time.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Registry id (stable for the process lifetime).
    pub id: u32,
    pub name: String,
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    pub id: u32,
    pub name: String,
    pub value: i64,
}

/// One histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    pub id: u32,
    pub name: String,
    /// Non-cumulative per-bucket counts (see [`crate::HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSample {
    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (the bound of the bucket
    /// containing it), 0 when empty. `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }
}

/// A copy of every registered metric at one point in time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Value of a counter by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by full name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of every counter whose name starts with `prefix` (labelled
    /// families, e.g. `reduce_bytes_forwarded_total{level=…}`).
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// Prometheus-style text exposition: `# TYPE` lines, `_bucket{le=…}`
    /// cumulative histogram series, `_count` / `_sum` totals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let (base, labels) = split_labels(&c.name);
            out.push_str(&format!(
                "# TYPE {base} counter\n{}{} {}\n",
                base, labels, c.value
            ));
        }
        for g in &self.gauges {
            let (base, labels) = split_labels(&g.name);
            out.push_str(&format!(
                "# TYPE {base} gauge\n{}{} {}\n",
                base, labels, g.value
            ));
        }
        for h in &self.histograms {
            let (base, labels) = split_labels(&h.name);
            out.push_str(&format!("# TYPE {base} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cum += c;
                let le = if i + 1 == HIST_BUCKETS {
                    "+Inf".to_string()
                } else {
                    bucket_bound(i).to_string()
                };
                let sep = if labels.is_empty() { "" } else { "," };
                let inner = labels.trim_start_matches('{').trim_end_matches('}');
                out.push_str(&format!("{base}_bucket{{{inner}{sep}le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{base}_count{labels} {}\n", h.count));
            out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
        }
        out
    }

    /// Hand-rolled JSON object (the workspace is registry-free: no serde):
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    /// sum, mean, p50, p99}}}`.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let pad2 = " ".repeat(indent + 2);
        let pad3 = " ".repeat(indent + 4);
        let mut out = String::from("{\n");
        out.push_str(&format!("{pad2}\"counters\": {{\n"));
        for (i, c) in self.counters.iter().enumerate() {
            let comma = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "{pad3}\"{}\": {}{comma}\n",
                json_escape(&c.name),
                c.value
            ));
        }
        out.push_str(&format!("{pad2}}},\n{pad2}\"gauges\": {{\n"));
        for (i, g) in self.gauges.iter().enumerate() {
            let comma = if i + 1 == self.gauges.len() { "" } else { "," };
            out.push_str(&format!(
                "{pad3}\"{}\": {}{comma}\n",
                json_escape(&g.name),
                g.value
            ));
        }
        out.push_str(&format!("{pad2}}},\n{pad2}\"histograms\": {{\n"));
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 == self.histograms.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "{pad3}\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
                 \"p50\": {}, \"p99\": {}}}{comma}\n",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            ));
        }
        out.push_str(&format!("{pad2}}}\n{pad}}}"));
        out
    }
}

/// Escapes a metric name for use as a JSON object key — label suffixes
/// carry literal double quotes (`name{k="v"}`).
fn json_escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Splits `name{k="v"}` into `(name, {k="v"})`; labels may be empty.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("stream_blocks_total").add(42);
        r.counter("reduce_bytes_total{level=\"0\"}").add(7);
        r.gauge("in_flight").set(3);
        let h = r.histogram("lag_ns");
        h.record(1);
        h.record(100);
        h.record(100);
        h.record(1_000_000);
        r
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let text = sample_registry().snapshot().render_text();
        assert!(text.contains("# TYPE stream_blocks_total counter"));
        assert!(text.contains("stream_blocks_total 42"));
        assert!(text.contains("reduce_bytes_total{level=\"0\"} 7"));
        assert!(text.contains("# TYPE in_flight gauge"));
        assert!(text.contains("in_flight 3"));
        assert!(text.contains("lag_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("lag_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lag_ns_count 4"));
        assert!(text.contains("lag_ns_sum 1000201"));
    }

    #[test]
    fn quantiles_bound_the_right_buckets() {
        let snap = sample_registry().snapshot();
        let h = snap.histogram("lag_ns").unwrap();
        // 1, 100, 100, 1e6: p50 falls in the bucket holding the 2nd
        // observation (100 <= 4^4 = 256), p99 in the one holding 1e6.
        assert_eq!(h.quantile(0.5), 256);
        assert_eq!(h.quantile(0.99), bucket_bound(10));
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn json_lists_every_metric() {
        let json = sample_registry().snapshot().to_json(0);
        assert!(json.contains("\"stream_blocks_total\": 42"));
        assert!(json.contains("\"in_flight\": 3"));
        assert!(json.contains("\"lag_ns\": {\"count\": 4"));
        // Labelled names carry literal quotes; keys must escape them.
        assert!(json.contains("\"reduce_bytes_total{level=\\\"0\\\"}\": 7"));
        // Balanced braces (cheap structural sanity without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
    }

    #[test]
    fn family_sums_labelled_counters() {
        let r = sample_registry();
        r.counter("reduce_bytes_total{level=\"1\"}").add(5);
        let s = r.snapshot();
        assert_eq!(s.counter_family("reduce_bytes_total"), 12);
    }
}
