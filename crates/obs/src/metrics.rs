//! The three metric primitives. All operations are relaxed atomics: the
//! registry is a statistical observer, never a synchronization point, so
//! the hot path is one `fetch_add` (two plus a shift for histograms).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed level: things currently open, queued or in flight.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i < HIST_BUCKETS - 1` counts
/// observations `v <= 4^i`; the last bucket is the overflow (+Inf).
/// 4^16 ≈ 4.3 s in nanoseconds, which covers every latency this
/// workspace measures; the same shape works for small magnitudes such as
/// queue depths (they simply land in the first few buckets).
pub const HIST_BUCKETS: usize = 18;

/// Upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << (2 * i)
    }
}

/// A fixed-bucket histogram with power-of-four bounds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Branch-light bucket index: `ceil(log4(v))`, clamped to the overflow
/// bucket. `v = 0` and `v = 1` both land in bucket 0.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let floor_l2 = 63 - v.leading_zeros() as usize;
    let ceil_l2 = floor_l2 + usize::from(!v.is_power_of_two());
    (ceil_l2.div_ceil(2)).min(HIST_BUCKETS - 1)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Observation sum.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_ceil_log4() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(4), 1);
        assert_eq!(bucket_index(5), 2);
        assert_eq!(bucket_index(16), 2);
        assert_eq!(bucket_index(17), 3);
        assert_eq!(bucket_index(64), 3);
        // Exhaustive invariant: v fits its bucket bound, and not the one
        // below it.
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "{v} > bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 3, 100, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 3 + 100 + 1_000_000)
                .wrapping_add(u64::MAX)
        );
        let b = h.buckets();
        assert_eq!(b.iter().sum::<u64>(), 6);
        assert_eq!(b[0], 2); // 0 and 1
        assert_eq!(b[HIST_BUCKETS - 1], 1); // u64::MAX overflows
    }
}
