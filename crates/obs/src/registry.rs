//! The process-wide metric registry.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes the registry
//! mutex and is expected to happen once per call site — every
//! instrumented module caches its handles in a `OnceLock` struct, so the
//! mutex is off the hot path entirely. Names follow the Prometheus
//! convention (`layer_subject_unit[_total]`) and may carry a `{k="v"}`
//! label suffix; the registry treats the full string as the identity.
//!
//! Metrics are registered for the life of the process (tests in one
//! binary share the registry, so all values are cumulative across
//! sessions — compare deltas, not absolutes). Each metric gets a stable
//! small integer id in registration order; the session self-monitor uses
//! it as the metric key inside emitted events.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    metric: Metric,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    by_name: HashMap<String, usize>,
}

/// A set of named metrics. Usually accessed through the process-wide
/// [`registry`]; separate instances exist only for tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The process-wide registry every layer counts into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Locks the registry, recovering the data from a poisoned mutex: the
    /// registry only holds monotonic counters and id maps, so state left by
    /// a panicking thread is still internally consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Counts a kind collision (same name registered as two metric kinds).
    fn note_kind_collision(&self) {
        if let Metric::Counter(c) = self.get_or_insert("obs_kind_collisions_total", || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            c.inc();
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.lock();
        if let Some(&i) = inner.by_name.get(name) {
            return match &inner.entries[i].metric {
                Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
            };
        }
        let metric = make();
        let cloned = match &metric {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        };
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            metric,
        });
        inner.by_name.insert(name.to_string(), i);
        cloned
    }

    /// Returns (registering on first use) the counter called `name`.
    ///
    /// Registering a name that already exists as another metric kind is a
    /// programming error; rather than aborting a live measurement, the
    /// caller gets a detached metric (absent from snapshots) and the
    /// collision is counted in `obs_kind_collisions_total`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => {
                self.note_kind_collision();
                Arc::new(Counter::new())
            }
        }
    }

    /// Returns (registering on first use) the gauge called `name`; kind
    /// collisions degrade as in [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => {
                self.note_kind_collision();
                Arc::new(Gauge::new())
            }
        }
    }

    /// Returns (registering on first use) the histogram called `name`; kind
    /// collisions degrade as in [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => {
                self.note_kind_collision();
                Arc::new(Histogram::new())
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric. Values of different metrics
    /// are read without mutual atomicity — fine for monitoring, not for
    /// invariant checking.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (id, e) in inner.entries.iter().enumerate() {
            match &e.metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    id: id as u32,
                    name: e.name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    id: id as u32,
                    name: e.name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    id: id as u32,
                    name: e.name.clone(),
                    buckets: h.buckets(),
                    count: h.count(),
                    sum: h.sum(),
                }),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_metric() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        // Same name, wrong kind: caller gets a usable detached gauge and
        // the collision is counted instead of aborting.
        let g = r.gauge("x");
        g.set(9);
        assert_eq!(c.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("obs_kind_collisions_total"), Some(1));
        assert!(snap.gauges.iter().all(|s| s.name != "x"));
    }

    #[test]
    fn snapshot_assigns_stable_ids_in_registration_order() {
        let r = Registry::new();
        r.counter("a_total").add(5);
        r.gauge("b").set(-1);
        r.histogram("c").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].id, 0);
        assert_eq!(s.gauges[0].id, 1);
        assert_eq!(s.histograms[0].id, 2);
        assert_eq!(s.counter("a_total"), Some(5));
        assert_eq!(s.gauges[0].value, -1);
        assert_eq!(s.histograms[0].count, 1);
        // Re-registering keeps ids stable.
        r.counter("d_total");
        let s2 = r.snapshot();
        assert_eq!(s2.counters[0].id, 0);
        assert_eq!(s2.counters[1].id, 3);
    }
}
