//! The process-wide metric registry.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes the registry
//! mutex and is expected to happen once per call site — every
//! instrumented module caches its handles in a `OnceLock` struct, so the
//! mutex is off the hot path entirely. Names follow the Prometheus
//! convention (`layer_subject_unit[_total]`) and may carry a `{k="v"}`
//! label suffix; the registry treats the full string as the identity.
//!
//! Metrics are registered for the life of the process (tests in one
//! binary share the registry, so all values are cumulative across
//! sessions — compare deltas, not absolutes). Each metric gets a stable
//! small integer id in registration order; the session self-monitor uses
//! it as the metric key inside emitted events.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    metric: Metric,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    by_name: HashMap<String, usize>,
}

/// A set of named metrics. Usually accessed through the process-wide
/// [`registry`]; separate instances exist only for tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The process-wide registry every layer counts into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("registry mutex");
        if let Some(&i) = inner.by_name.get(name) {
            return match &inner.entries[i].metric {
                Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
            };
        }
        let metric = make();
        let cloned = match &metric {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        };
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            metric,
        });
        inner.by_name.insert(name.to_string(), i);
        cloned
    }

    /// Returns (registering on first use) the counter called `name`.
    /// Panics if `name` is already registered as another metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry mutex").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric. Values of different metrics
    /// are read without mutual atomicity — fine for monitoring, not for
    /// invariant checking.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry mutex");
        let mut snap = MetricsSnapshot::default();
        for (id, e) in inner.entries.iter().enumerate() {
            match &e.metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    id: id as u32,
                    name: e.name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    id: id as u32,
                    name: e.name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    id: id as u32,
                    name: e.name.clone(),
                    buckets: h.buckets(),
                    count: h.count(),
                    sum: h.sum(),
                }),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_assigns_stable_ids_in_registration_order() {
        let r = Registry::new();
        r.counter("a_total").add(5);
        r.gauge("b").set(-1);
        r.histogram("c").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].id, 0);
        assert_eq!(s.gauges[0].id, 1);
        assert_eq!(s.histograms[0].id, 2);
        assert_eq!(s.counter("a_total"), Some(5));
        assert_eq!(s.gauges[0].value, -1);
        assert_eq!(s.histograms[0].count, 1);
        // Re-registering keeps ids stable.
        r.counter("d_total");
        let s2 = r.snapshot();
        assert_eq!(s2.counters[0].id, 0);
        assert_eq!(s2.counters[1].id, 3);
    }
}
