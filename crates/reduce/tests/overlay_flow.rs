//! End-to-end overlay flow on the real runtime: instrumented-style leaf
//! partitions stream into a reduction-tree partition built with
//! `map_partitions_directed`, and the root observes exactly what the
//! operator promises — every block for ρ=1 pass-through, the flat merge
//! of every event for full aggregation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_events::{Event, EventKind, EventPack};
use opmr_reduce::{run_node, NodeConfig, ReduceOp, ReducePartial, ReduceStats, Tree};
use opmr_runtime::Launcher;
use opmr_vmpi::map::map_partitions_directed;
use opmr_vmpi::{Map, StreamConfig, Vmpi, WriteStream};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const BLOCK: usize = 1024;
const STREAM_ID: u16 = 0;

type NodeStats = Vec<(usize, ReduceStats)>;

/// Launches `leaves` writer ranks against a `nodes`-rank tree partition
/// and returns (root-delivered raw blocks, root partials, per-node stats).
fn run_overlay(
    leaves: usize,
    nodes: usize,
    fanout: usize,
    op: ReduceOp,
    write_body: impl Fn(&Vmpi, &mut WriteStream) + Send + Sync + 'static,
) -> (Vec<bytes::Bytes>, Vec<ReducePartial>, NodeStats) {
    let root_blocks = Arc::new(Mutex::new(Vec::new()));
    let root_partials = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(Mutex::new(NodeStats::new()));
    let (rb2, rp2, st2) = (
        Arc::clone(&root_blocks),
        Arc::clone(&root_partials),
        Arc::clone(&stats),
    );
    let write_body = Arc::new(write_body);
    let tree_for_leaves = Tree::new(fanout, nodes);

    Launcher::new()
        .partition("leaves", leaves, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree_pid = v.partition_by_name("Reduce").unwrap().id;
            let mut map = Map::new();
            map_partitions_directed(
                &v,
                tree_pid,
                tree_pid,
                tree_for_leaves.leaf_policy(),
                &mut map,
            )
            .unwrap();
            let cfg = StreamConfig {
                block_size: BLOCK,
                ..StreamConfig::default()
            };
            let mut st = WriteStream::open_map(&v, &map, cfg, STREAM_ID).unwrap();
            write_body(&v, &mut st);
            st.close().unwrap();
        })
        .partition("Reduce", nodes, move |mpi| {
            let v = Vmpi::new(mpi).unwrap();
            let tree = Tree::new(fanout, v.size());
            let mut map = Map::new();
            map_partitions_directed(&v, 0, v.partition_id(), tree.leaf_policy(), &mut map).unwrap();
            let cfg = StreamConfig {
                block_size: BLOCK,
                ..StreamConfig::default()
            };
            let node_cfg = NodeConfig {
                op,
                window_blocks: 4,
                waitstate: false,
                metrics: None,
            };
            let rb = Arc::clone(&rb2);
            let outcome = run_node(&v, &tree, map.peers(), cfg, STREAM_ID, &node_cfg, |b| {
                rb.lock().unwrap().push(b)
            })
            .unwrap();
            st2.lock().unwrap().push((v.rank(), outcome.stats));
            if v.rank() == 0 {
                *rp2.lock().unwrap() = outcome.partials;
            }
        })
        .run()
        .unwrap();

    let blocks = root_blocks.lock().unwrap().clone();
    let partials = std::mem::take(&mut *root_partials.lock().unwrap());
    let mut st = stats.lock().unwrap().clone();
    st.sort_by_key(|e| e.0);
    (blocks, partials, st)
}

/// Deterministic raw block keyed by (leaf world rank, index).
fn raw_block(world_rank: usize, i: usize) -> Vec<u8> {
    let mut b = vec![0u8; BLOCK];
    b[0] = world_rank as u8;
    for (j, x) in b.iter_mut().enumerate().skip(1) {
        *x = (world_rank as u8) ^ (i as u8).wrapping_add(j as u8);
    }
    b
}

/// Deterministic event pack for (leaf rank, sequence).
fn leaf_pack(rank: u32, seq: u32, ranks: u32) -> EventPack {
    let events: Vec<Event> = (0..5)
        .map(|k| Event {
            time_ns: 1000 * seq as u64 + 10 * k as u64,
            duration_ns: 5 + k as u64,
            kind: if k % 2 == 0 {
                EventKind::Send
            } else {
                EventKind::Recv
            },
            rank,
            peer: ((rank + 1) % ranks) as i32,
            tag: k,
            comm: 0,
            bytes: 128,
        })
        .collect();
    EventPack::new(0, rank, seq, events)
}

#[test]
fn passthrough_delivers_every_leaf_block_through_a_deep_tree() {
    const LEAVES: usize = 5;
    const PER_LEAF: usize = 24;
    let (blocks, partials, stats) = run_overlay(
        LEAVES,
        7, // binary tree: root, 2 inner, 4 frontier nodes
        2,
        ReduceOp::PassThrough,
        |v, st| {
            for i in 0..PER_LEAF {
                st.write(&raw_block(v.mpi().world_rank(), i)).unwrap();
            }
        },
    );
    assert!(partials.is_empty(), "pass-through produces no partials");
    assert_eq!(blocks.len(), LEAVES * PER_LEAF, "no block lost or dropped");

    // Per-leaf, blocks arrive complete and in write order (streams are
    // FIFO per source at every hop).
    let mut per_leaf: HashMap<u8, Vec<bytes::Bytes>> = HashMap::new();
    for b in blocks {
        per_leaf.entry(b[0]).or_default().push(b);
    }
    assert_eq!(per_leaf.len(), LEAVES);
    for (leaf, got) in per_leaf {
        assert_eq!(got.len(), PER_LEAF);
        for (i, b) in got.iter().enumerate() {
            assert_eq!(&b[..], &raw_block(leaf as usize, i)[..], "leaf {leaf} #{i}");
        }
    }

    // Stats: the root ingests every block exactly once; every node
    // forwards everything it receives (ρ = 1).
    let root = stats.iter().find(|(k, _)| *k == 0).unwrap().1;
    assert_eq!(root.blocks_in as usize, LEAVES * PER_LEAF);
    for (k, s) in &stats {
        assert_eq!(
            s.blocks_forwarded, s.blocks_in,
            "node {k} must forward every block at ρ=1"
        );
        assert_eq!(s.bytes_out, s.bytes_in);
        assert_eq!(s.peers_lost, 0);
        assert_eq!(s.decode_errors, 0);
    }
}

#[test]
fn filter_keeps_one_block_in_k_per_hop() {
    const LEAVES: usize = 4;
    const PER_LEAF: usize = 32;
    let (blocks, _, stats) = run_overlay(
        LEAVES,
        3, // root + 2 frontier nodes: exactly two filtering hops
        2,
        ReduceOp::Filter { keep_one_in: 2 },
        |v, st| {
            for i in 0..PER_LEAF {
                st.write(&raw_block(v.mpi().world_rank(), i)).unwrap();
            }
        },
    );
    // Two hops at ρ=1/2 each: a quarter of the traffic survives.
    assert_eq!(blocks.len(), LEAVES * PER_LEAF / 4);
    for (_, s) in &stats {
        assert_eq!(s.blocks_forwarded, s.blocks_in / 2);
    }
}

#[test]
fn aggregate_tree_merge_equals_flat_merge() {
    const LEAVES: usize = 6;
    const PACKS_PER_LEAF: u32 = 9;
    let (blocks, partials, stats) = run_overlay(LEAVES, 7, 2, ReduceOp::Aggregate, |v, st| {
        let rank = v.rank() as u32;
        for seq in 0..PACKS_PER_LEAF {
            let enc = leaf_pack(rank, seq, LEAVES as u32).encode();
            st.write(&enc).unwrap();
            st.flush().unwrap();
        }
    });
    assert!(blocks.is_empty(), "aggregation never forwards raw blocks");
    assert_eq!(partials.len(), 1, "one application, one partial");
    let got = &partials[0];

    // Flat reference: absorb every pack straight into one partial.
    let mut flat = ReducePartial::new(0);
    for rank in 0..LEAVES as u32 {
        for seq in 0..PACKS_PER_LEAF {
            let pack = leaf_pack(rank, seq, LEAVES as u32);
            flat.packs += 1;
            flat.wire_bytes += pack.encode().len() as u64;
            flat.profile.add_all(&pack.events);
            flat.topology.add_all(&pack.events);
            for e in &pack.events {
                flat.density.add_event(e.rank);
            }
        }
    }

    assert_eq!(got.packs, flat.packs);
    assert_eq!(got.wire_bytes, flat.wire_bytes);
    assert_eq!(got.decode_errors, 0);
    assert_eq!(got.profile.events(), flat.profile.events());
    for kind in flat.profile.kinds() {
        assert_eq!(got.profile.kind(kind), flat.profile.kind(kind));
    }
    assert_eq!(got.topology.sorted_edges(), flat.topology.sorted_edges());
    assert_eq!(got.density, flat.density);

    // The upward traffic shrank: inner nodes ship merged partials, not
    // event packs.
    let root = stats.iter().find(|(k, _)| *k == 0).unwrap().1;
    assert!(root.merges > 0);
    assert!(root.windows_closed > 0);
    assert!(
        root.bytes_in < (flat.wire_bytes / 2),
        "aggregation must reduce upward traffic (root saw {} of {} leaf bytes)",
        root.bytes_in,
        flat.wire_bytes
    );
}

#[test]
fn childless_frontier_nodes_close_cleanly() {
    // 2 leaves over a 7-node tree: frontier nodes 5 and 6 adopt nothing
    // and must still complete the close protocol so nothing hangs.
    const PER_LEAF: usize = 8;
    let (blocks, _, stats) = run_overlay(2, 7, 2, ReduceOp::PassThrough, |v, st| {
        for i in 0..PER_LEAF {
            st.write(&raw_block(v.mpi().world_rank(), i)).unwrap();
        }
    });
    assert_eq!(blocks.len(), 2 * PER_LEAF);
    assert_eq!(stats.len(), 7, "every tree node reports stats");
    let idle = stats.iter().filter(|(_, s)| s.blocks_in == 0).count();
    assert!(idle >= 2, "childless frontier nodes see no traffic");
}
