//! Property tests for the reduction algebra: merging partials *up a tree*
//! — any fanout, any node count, any arrival order — must equal the flat
//! merge the paper's direct mapping computes. This is the invariant that
//! makes the overlay transparent to the analysis.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use bytes::BytesMut;
use opmr_analysis::waitstate::{WaitStateAnalysis, WaitStats};
use opmr_analysis::wire::{encode_waitstats, merge_waitstats};
use opmr_events::{Event, EventKind};
use opmr_reduce::{decode_partial_set, encode_partial_set, ReducePartial, Reducible, Tree};
use proptest::prelude::*;
use proptest::sample::Index;

const APP: u16 = 0;
const MAX_LEAVES: usize = 8;

fn arb_event() -> impl Strategy<Value = Event> {
    let kind = prop_oneof![
        Just(EventKind::Send),
        Just(EventKind::Recv),
        Just(EventKind::Isend),
        Just(EventKind::Barrier),
        Just(EventKind::Allreduce),
    ];
    (
        kind,
        0u32..6,
        0i32..6,
        0u64..1_000_000,
        1u64..10_000,
        0u64..65_536,
    )
        .prop_map(|(kind, rank, peer, time_ns, duration_ns, bytes)| Event {
            time_ns,
            duration_ns,
            kind,
            rank,
            peer,
            tag: 0,
            comm: 0,
            bytes,
        })
}

/// Transfers with *one send and one recv per distinct channel*, each half
/// assigned to an arbitrary leaf. The single-transfer-per-channel
/// constraint makes FIFO pairing order-independent, which is exactly the
/// regime where tree-merge and flat-merge must coincide byte-for-byte.
type Transfer = (Event, Index, Event, Index);

/// Distinct (src, dst) channels; transfer `i` uses channel `i`, so any
/// generated set of transfers touches each channel at most once.
const CHANNELS: [(u32, u32); 7] = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3), (2, 0)];

fn arb_transfers() -> impl Strategy<Value = Vec<Transfer>> {
    let params = (
        0u64..1_000,
        1u64..1_000,
        0u64..1_000,
        1u64..4_096,
        any::<Index>(),
        any::<Index>(),
    );
    proptest::collection::vec(params, 0..CHANNELS.len()).prop_map(|params| {
        params
            .into_iter()
            .enumerate()
            .map(|(i, (ts, dur, tr, bytes, ls, lr))| {
                let (src, dst) = CHANNELS[i];
                let send = Event {
                    time_ns: ts,
                    duration_ns: dur,
                    kind: EventKind::Send,
                    rank: src,
                    peer: dst as i32,
                    tag: 0,
                    comm: 0,
                    bytes,
                };
                let recv = Event {
                    time_ns: tr,
                    duration_ns: 1,
                    kind: EventKind::Recv,
                    rank: dst,
                    peer: src as i32,
                    tag: 0,
                    comm: 0,
                    bytes,
                };
                (send, ls, recv, lr)
            })
            .collect()
    })
}

/// Fisher–Yates permutation of `0..len` driven by generated indices.
fn permutation(order: &[Index], len: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = order[i % order.len()].index(i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Builds one partial per leaf from (event, leaf) assignments.
fn build_leaves(
    leaves: usize,
    events: &[(Event, Index)],
    transfers: &[Transfer],
) -> Vec<ReducePartial> {
    let mut evs: Vec<Vec<Event>> = vec![Vec::new(); leaves];
    let mut ws: Vec<Vec<Event>> = vec![Vec::new(); leaves];
    for (e, leaf) in events {
        evs[leaf.index(leaves)].push(*e);
    }
    for (s, ls, r, lr) in transfers {
        ws[ls.index(leaves)].push(*s);
        ws[lr.index(leaves)].push(*r);
    }
    (0..leaves)
        .map(|i| {
            let mut p = ReducePartial::new(APP);
            p.packs = 1;
            p.wire_bytes = 24 + 48 * evs[i].len() as u64;
            p.profile.add_all(&evs[i]);
            p.topology.add_all(&evs[i]);
            for e in &evs[i] {
                p.density.add_event(e.rank);
            }
            let mut wsa = WaitStateAnalysis::new();
            ws[i].sort_by_key(|e| e.time_ns);
            for e in &ws[i] {
                wsa.add(e);
            }
            p.waitstate = Some(wsa.finish().clone());
            p
        })
        .collect()
}

/// Folds leaf partials up an arbitrary reduction tree: leaves attach to
/// frontier nodes round-robin (the overlay's leaf policy), every node
/// merges its children, the root's accumulate is the result.
fn tree_merge(leaves: &[ReducePartial], fanout: usize, nodes: usize) -> ReducePartial {
    let tree = Tree::new(fanout, nodes);
    let frontier = tree.frontier();
    let mut acc: Vec<ReducePartial> = (0..tree.nodes()).map(|_| ReducePartial::new(APP)).collect();
    for (i, leaf) in leaves.iter().enumerate() {
        acc[frontier[i % frontier.len()]].merge_from(leaf);
    }
    // BFS numbering puts every child after its parent, so a descending
    // sweep folds each subtree before its parent is folded in turn.
    for k in (1..tree.nodes()).rev() {
        let child = std::mem::replace(&mut acc[k], ReducePartial::new(APP));
        acc[tree.parent(k).unwrap()].merge_from(&child);
    }
    acc.swap_remove(0)
}

fn ws_bytes(w: &WaitStats) -> Vec<u8> {
    let mut out = BytesMut::new();
    encode_waitstats(w, &mut out);
    out.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// The headline property: for any tree shape and any flat arrival
    /// order, the root's merged partial is byte-identical to the flat
    /// merge over the same leaves.
    #[test]
    fn tree_merge_equals_flat_merge(
        fanout in 1usize..5,
        nodes in 1usize..12,
        leaves in 1usize..=MAX_LEAVES,
        events in proptest::collection::vec((arb_event(), any::<Index>()), 0..24),
        transfers in arb_transfers(),
        order in proptest::collection::vec(any::<Index>(), MAX_LEAVES..MAX_LEAVES + 1),
    ) {
        let parts = build_leaves(leaves, &events, &transfers);

        let tree_result = tree_merge(&parts, fanout, nodes);

        let mut flat = ReducePartial::new(APP);
        for &i in &permutation(&order, leaves) {
            flat.merge_from(&parts[i]);
        }

        prop_assert_eq!(
            encode_partial_set(std::slice::from_ref(&tree_result)),
            encode_partial_set(std::slice::from_ref(&flat)),
            "tree shape (fanout {}, {} nodes) changed the merge", fanout, nodes
        );
        prop_assert_eq!(tree_result.encoded_size(), flat.encoded_size());

        // Every channel carries exactly one transfer and both halves were
        // fed somewhere, so the merged wait-state is fully paired.
        let ws = tree_result.waitstate.unwrap();
        prop_assert_eq!(ws.matched as usize, transfers.len());
        prop_assert!(ws.pending_sends.is_empty());
        prop_assert!(ws.pending_recvs.is_empty());
        prop_assert_eq!(flat.packs as usize, leaves);
        prop_assert_eq!(flat.profile.events() as usize, events.len());
    }

    /// Dedicated wait-state fold: `merge_waitstats` applied up a tree
    /// equals the flat fold, in counters and in canonical encoding.
    #[test]
    fn waitstats_tree_fold_equals_flat_fold(
        fanout in 1usize..4,
        nodes in 1usize..10,
        leaves in 1usize..=MAX_LEAVES,
        transfers in arb_transfers(),
        order in proptest::collection::vec(any::<Index>(), MAX_LEAVES..MAX_LEAVES + 1),
    ) {
        let parts = build_leaves(leaves, &[], &transfers);
        let per_leaf: Vec<WaitStats> =
            parts.iter().map(|p| p.waitstate.clone().unwrap()).collect();

        // Tree fold.
        let tree = Tree::new(fanout, nodes);
        let frontier = tree.frontier();
        let mut acc: Vec<WaitStats> = vec![WaitStats::default(); tree.nodes()];
        for (i, w) in per_leaf.iter().enumerate() {
            merge_waitstats(&mut acc[frontier[i % frontier.len()]], w);
        }
        for k in (1..tree.nodes()).rev() {
            let child = std::mem::take(&mut acc[k]);
            merge_waitstats(&mut acc[tree.parent(k).unwrap()], &child);
        }
        let tree_ws = acc.swap_remove(0);

        // Flat fold in an arbitrary order.
        let mut flat_ws = WaitStats::default();
        for &i in &permutation(&order, leaves) {
            merge_waitstats(&mut flat_ws, &per_leaf[i]);
        }

        prop_assert_eq!(tree_ws.matched, flat_ws.matched);
        prop_assert_eq!(tree_ws.total_late_sender_ns, flat_ws.total_late_sender_ns);
        prop_assert_eq!(tree_ws.total_late_receiver_ns, flat_ws.total_late_receiver_ns);
        prop_assert_eq!(ws_bytes(&tree_ws), ws_bytes(&flat_ws));
    }

    /// The overlay wire format is lossless: decode ∘ encode = identity,
    /// up to re-encoding.
    #[test]
    fn partial_set_roundtrip_is_identity(
        leaves in 1usize..=4,
        events in proptest::collection::vec((arb_event(), any::<Index>()), 0..16),
        transfers in arb_transfers(),
    ) {
        let parts = build_leaves(leaves, &events, &transfers);
        let enc = encode_partial_set(&parts);
        let dec = decode_partial_set(&enc).unwrap();
        prop_assert_eq!(encode_partial_set(&dec), enc);
    }
}
