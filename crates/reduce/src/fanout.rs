//! The reverse-path TBON overlay: tree *replication* instead of tree
//! reduction.
//!
//! [`run_node`](crate::node::run_node) folds many leaf streams up the tree
//! into one root; [`FanoutNode`] runs the same tree in the opposite
//! direction for the serve plane. The root writes each record once per
//! child; interior nodes re-forward incoming blocks **verbatim** (no
//! parse, no re-frame, no checksum — the frame laid down at the root
//! survives every hop); frontier nodes reassemble frames and hand the
//! record payloads to the caller (the serving loop, which owns
//! per-subscriber credits and resyncs). One publish thus reaches N
//! subscribers over `O(log N)` per-link copies instead of N unicast
//! encodes.
//!
//! Stream opening is ordered so the handshakes resolve top-down no matter
//! whether opens block: a non-root opens its parent read side first (the
//! root's child writes pair immediately), then its own child writes.

use crate::tree::Tree;
use bytes::Bytes;
use opmr_events::frame::FrameBuf;
use opmr_vmpi::{ReadMode, ReadStream, Result, StreamConfig, Vmpi, VmpiError, WriteStream};
use std::sync::Arc;

struct FanoutMetrics {
    records: Arc<opmr_obs::Counter>,
    bytes_down: Arc<opmr_obs::Counter>,
}

fn fanout_metrics(level: usize) -> FanoutMetrics {
    let r = opmr_obs::registry();
    FanoutMetrics {
        records: r.counter(&format!("reduce_fanout_records_total{{level=\"{level}\"}}")),
        bytes_down: r.counter(&format!(
            "reduce_fanout_bytes_down_total{{level=\"{level}\"}}"
        )),
    }
}

/// One rank's role in the replication tree (see module docs).
pub struct FanoutNode {
    children_tx: Vec<WriteStream>,
    parent_rx: Option<ReadStream>,
    fb: FrameBuf,
    is_root: bool,
    is_frontier: bool,
    parent_eof: bool,
    m: FanoutMetrics,
}

impl FanoutNode {
    /// Opens this rank's tree streams: a read side from the parent (none
    /// at the root) and a write side per internal child (none at the
    /// frontier). A single-node tree opens nothing — the root *is* the
    /// frontier and records never leave the rank.
    pub fn open(v: &Vmpi, tree: &Tree, cfg: StreamConfig, stream_id: u16) -> Result<FanoutNode> {
        let me = v.rank();
        let part = v.my_partition().clone();
        let parent_rx = match tree.parent(me) {
            Some(p) => Some(ReadStream::open_from(
                v,
                vec![part.world_rank_of(p)],
                cfg,
                stream_id,
            )?),
            None => None,
        };
        let children_tx = tree
            .internal_children(me)
            .map(|c| WriteStream::open_to(v, vec![part.world_rank_of(c)], cfg, stream_id))
            .collect::<Result<Vec<_>>>()?;
        Ok(FanoutNode {
            is_root: parent_rx.is_none(),
            is_frontier: tree.is_frontier(me),
            children_tx,
            parent_rx,
            fb: FrameBuf::new(),
            parent_eof: false,
            m: fanout_metrics(tree.level_of(me)),
        })
    }

    /// True at the tree root (the publishing serving rank).
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// True at a frontier node (subscribers map here).
    pub fn is_frontier(&self) -> bool {
        self.is_frontier
    }

    /// True once the parent closed its stream (all records delivered).
    pub fn parent_eof(&self) -> bool {
        self.parent_eof
    }

    /// Root only: replicates one already-framed record to every child.
    /// Frame once at the publish site, not once per subscriber — that is
    /// the whole point of the reverse path.
    pub fn publish(&mut self, framed: &[u8]) -> Result<()> {
        self.m.records.inc();
        for tx in &mut self.children_tx {
            tx.write(framed)?;
            // Flush per record: replication latency beats batching here,
            // and one record per block keeps interior forwarding exact.
            tx.flush()?;
            self.m.bytes_down.add(framed.len() as u64);
        }
        Ok(())
    }

    /// Non-root: drains whatever the parent has ready, re-forwarding each
    /// block verbatim to the children and (at the frontier) parsing
    /// completed frames into `records`. Returns true if any block moved.
    /// A lost parent is treated as EOF — the serving loop falls back to
    /// the shared store, subscribers resync.
    pub fn pump(&mut self, records: &mut Vec<Bytes>) -> Result<bool> {
        let Some(rx) = &mut self.parent_rx else {
            return Ok(false);
        };
        let mut progressed = false;
        loop {
            match rx.read(ReadMode::NonBlocking) {
                Ok(Some(block)) => {
                    progressed = true;
                    for tx in &mut self.children_tx {
                        tx.write(&block.data)?;
                        tx.flush()?;
                        self.m.bytes_down.add(block.data.len() as u64);
                    }
                    if self.is_frontier {
                        self.fb.push(&block.data);
                        while let Some(frame) =
                            self.fb
                                .next_frame()
                                .map_err(|e| VmpiError::ProtocolViolation {
                                    expected: "a framed fan-out record",
                                    got: format!("{e}"),
                                })?
                        {
                            self.m.records.inc();
                            records.push(frame);
                        }
                    }
                }
                Ok(None) => {
                    self.parent_eof = true;
                    return Ok(progressed);
                }
                Err(VmpiError::Again) => return Ok(progressed),
                Err(VmpiError::PeerLost { rank: _ }) => {
                    self.parent_eof = true;
                    return Ok(progressed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Closes the down-tree write sides (EOF cascades to the children).
    /// Idempotent; the root calls it once every record is published, the
    /// others once the parent reached EOF.
    pub fn close(&mut self) -> Result<()> {
        for tx in self.children_tx.drain(..) {
            tx.close()?;
        }
        Ok(())
    }
}
