//! What a reduction node can merge: the [`Reducible`] trait over the
//! analysis wire partials, plus the event-count density aggregate.
//!
//! `merge_from` must be commutative and associative over disjoint inputs —
//! the tree merges partials in arrival order, and the property tests in
//! `tests/prop_reduce.rs` pin tree-merge ≡ flat-merge for arbitrary
//! shapes. `encoded_size` mirrors the `analysis::wire` encodings byte for
//! byte, so nodes can budget upward block writes without serializing.

use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::merge_waitstats;
use opmr_analysis::DensityMap;

/// A partial aggregate that reduction nodes can fold upward.
pub trait Reducible {
    /// Merges `other` into `self` (order-insensitive over disjoint sets).
    fn merge_from(&mut self, other: &Self);
    /// Exact serialized size under the `analysis::wire` codecs, bytes.
    fn encoded_size(&self) -> usize;
}

impl Reducible for MpiProfile {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn encoded_size(&self) -> usize {
        let mut entries = 0usize;
        for rank in 0..self.ranks() {
            for kind in self.kinds() {
                if self.rank_kind(rank, kind).is_some() {
                    entries += 1;
                }
            }
        }
        // Header (count, ranks, span) + per-entry (rank, kind, 5 counters).
        16 + entries * (4 + 2 + 5 * 8)
    }
}

impl Reducible for Topology {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn encoded_size(&self) -> usize {
        8 + self.edge_count() * (8 + 3 * 8)
    }
}

impl Reducible for WaitStats {
    fn merge_from(&mut self, other: &Self) {
        merge_waitstats(self, other);
    }

    fn encoded_size(&self) -> usize {
        let map = |m: &std::collections::HashMap<u32, u64>| 4 + m.len() * 12;
        32 + map(&self.late_sender_by_victim)
            + map(&self.late_sender_by_culprit)
            + map(&self.late_receiver_by_victim)
            + 4
            + self.pending_sends.len() * (8 + 3 * 8)
            + 4
            + self.pending_recvs.len() * (8 + 8)
    }
}

/// Per-rank event counts — the cheapest density the overlay can keep at
/// full reduction (ρ → 0) while still feeding the report's heat maps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventDensity {
    counts: Vec<u64>,
}

impl EventDensity {
    pub fn new() -> EventDensity {
        EventDensity::default()
    }

    /// Rebuilds a density from decoded per-rank counts.
    pub fn from_counts(counts: Vec<u64>) -> EventDensity {
        EventDensity { counts }
    }

    /// Counts one event issued by `rank`.
    pub fn add_event(&mut self, rank: u32) {
        let idx = rank as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Events counted for `rank`.
    pub fn count(&self, rank: u32) -> u64 {
        self.counts.get(rank as usize).copied().unwrap_or(0)
    }

    /// Total events across all ranks.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of ranks observed (highest rank + 1).
    pub fn ranks(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Raw per-rank counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Renders the counts as a report density map.
    pub fn to_density_map(&self) -> DensityMap {
        DensityMap::new(
            "events per rank",
            self.counts.iter().map(|&c| c as f64).collect(),
        )
    }
}

impl Reducible for EventDensity {
    fn merge_from(&mut self, other: &Self) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (into, add) in self.counts.iter_mut().zip(&other.counts) {
            *into += add;
        }
    }

    fn encoded_size(&self) -> usize {
        4 + self.counts.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use opmr_analysis::wire::{encode_profile, encode_topology, encode_waitstats};
    use opmr_events::{Event, EventKind};

    fn event(rank: u32, kind: EventKind) -> Event {
        Event {
            time_ns: 100 * rank as u64,
            duration_ns: 10,
            kind,
            rank,
            peer: -1,
            tag: -1,
            comm: 0,
            bytes: 64,
        }
    }

    #[test]
    fn profile_encoded_size_matches_codec() {
        let mut p = MpiProfile::new();
        for r in 0..5 {
            p.add(&event(r, EventKind::Send));
            p.add(&event(r, EventKind::Recv));
        }
        let mut buf = BytesMut::new();
        encode_profile(&p, &mut buf);
        assert_eq!(p.encoded_size(), buf.len());
    }

    #[test]
    fn topology_encoded_size_matches_codec() {
        let mut t = Topology::new();
        t.add_weighted(0, 1, 2, 128, 20);
        t.add_weighted(1, 2, 1, 64, 10);
        let mut buf = BytesMut::new();
        encode_topology(&t, &mut buf);
        assert_eq!(t.encoded_size(), buf.len());
    }

    #[test]
    fn waitstats_encoded_size_matches_codec() {
        let mut w = WaitStats {
            matched: 3,
            total_late_sender_ns: 100,
            ..Default::default()
        };
        w.late_sender_by_victim.insert(1, 100);
        w.pending_sends.push((
            0,
            1,
            opmr_analysis::waitstate::SendSide {
                start_ns: 5,
                end_ns: 9,
                bytes: 64,
            },
        ));
        let mut buf = BytesMut::new();
        encode_waitstats(&w, &mut buf);
        assert_eq!(w.encoded_size(), buf.len());
    }

    #[test]
    fn density_merges_elementwise() {
        let mut a = EventDensity::new();
        a.add_event(0);
        a.add_event(2);
        let mut b = EventDensity::new();
        b.add_event(2);
        b.add_event(5);
        a.merge_from(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.total(), 4);
        assert_eq!(a.ranks(), 6);
        assert_eq!(a.to_density_map().len(), 6);
    }
}
