//! Windowed streaming reduction nodes.
//!
//! Every rank of the tree partition runs [`run_node`]: it opens one VMPI
//! read stream across its children (internal tree nodes below it plus any
//! instrumented leaves the map pivot assigned to it) and, unless it is the
//! root, one write stream to its parent. Incoming blocks are folded
//! according to the configured [`ReduceOp`]:
//!
//! * **PassThrough** (ρ = 1) — every block is forwarded unchanged, one
//!   block per incoming block, so the root receives the exact event packs
//!   the leaves emitted and can feed the ordinary analysis engine;
//! * **Filter** (ρ = 1/k) — a deterministic 1-in-k sample of blocks
//!   survives each hop (the MRNet-style filter regime of the capacity
//!   model);
//! * **Aggregate** (ρ → 0) — frontier nodes decode event packs into
//!   per-application [`ReducePartial`]s, merge a window's worth, and ship
//!   the merged partial upward; inner nodes merge their children's
//!   partials again. Only aggregates ever reach the root.
//!
//! Upward writes go through the stream layer's bounded async window, so
//! back-pressure propagates down the tree exactly as it does for direct
//! partition mapping. All per-node activity is counted in [`ReduceStats`].

use crate::partial::{decode_partial_set, encode_partial_set, try_frame, FrameBuf, ReducePartial};
use crate::tree::Tree;
use bytes::Bytes;
use opmr_analysis::waitstate::WaitStateAnalysis;
use opmr_events::EventPack;
use opmr_vmpi::{ReadMode, ReadStream, Result, StreamConfig, Vmpi, VmpiError, WriteStream};
use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// Tree-overlay metrics. The tree-wide handles are cached process-wide; the
// per-level byte counters are resolved once per `run_node` call (labelled
// by the node's tree level) and passed down to the hot helpers.
struct NodeMetrics {
    windows_closed: Arc<opmr_obs::Counter>,
    window_latency: Arc<opmr_obs::Histogram>,
    merges: Arc<opmr_obs::Counter>,
    decode_errors: Arc<opmr_obs::Counter>,
    peers_lost: Arc<opmr_obs::Counter>,
}

fn node_metrics() -> &'static NodeMetrics {
    static M: OnceLock<NodeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = opmr_obs::registry();
        NodeMetrics {
            windows_closed: r.counter("reduce_windows_closed_total"),
            window_latency: r.histogram("reduce_window_merge_latency_ns"),
            merges: r.counter("reduce_merges_total"),
            decode_errors: r.counter("reduce_decode_errors_total"),
            peers_lost: r.counter("reduce_peers_lost_total"),
        }
    })
}

fn level_counters(level: usize) -> (Arc<opmr_obs::Counter>, Arc<opmr_obs::Counter>) {
    let r = opmr_obs::registry();
    (
        r.counter(&format!(
            "reduce_bytes_forwarded_total{{level=\"{level}\"}}"
        )),
        r.counter(&format!(
            "reduce_bytes_aggregated_total{{level=\"{level}\"}}"
        )),
    )
}

/// What a node does to a window of incoming data before forwarding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReduceOp {
    /// Forward every block unchanged (ρ = 1, full event streaming).
    PassThrough,
    /// Forward one block in `keep_one_in`, drop the rest (ρ = 1/k).
    Filter { keep_one_in: u32 },
    /// Merge windows into [`ReducePartial`]s and forward only those.
    Aggregate,
}

impl ReduceOp {
    /// The per-hop reduction ratio ρ the netsim capacity model assigns to
    /// this operator; `None` for aggregation (ρ is data-dependent there —
    /// measure it from [`ReduceStats`] instead).
    pub fn model_ratio(&self) -> Option<f64> {
        match self {
            ReduceOp::PassThrough => Some(1.0),
            ReduceOp::Filter { keep_one_in } => Some(1.0 / (*keep_one_in).max(1) as f64),
            ReduceOp::Aggregate => None,
        }
    }
}

/// Node configuration: the operator, the merge-window size, and whether
/// frontier nodes run wait-state matching while aggregating.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    pub op: ReduceOp,
    /// Incoming blocks absorbed per window before it closes (Aggregate).
    pub window_blocks: usize,
    /// Run wait-state analysis over aggregated events at the frontier.
    pub waitstate: bool,
    /// Fold the time-resolved metrics series at the frontier. The fold is
    /// commutative, so any tree shape reduces to the same series.
    pub metrics: Option<opmr_metrics::MetricsConfig>,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            op: ReduceOp::PassThrough,
            window_blocks: 8,
            waitstate: false,
            metrics: None,
        }
    }
}

/// Lightweight per-node counters, snapshotted when the node drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Blocks received from children.
    pub blocks_in: u64,
    /// Blocks (or framed windows) forwarded upward / delivered at root.
    pub blocks_forwarded: u64,
    /// Bytes received from children.
    pub bytes_in: u64,
    /// Bytes forwarded upward / delivered at root.
    pub bytes_out: u64,
    /// Merge operations applied (pack absorptions + partial merges).
    pub merges: u64,
    /// Aggregation windows closed.
    pub windows_closed: u64,
    /// Children lost mid-stream (typed `PeerLost`).
    pub peers_lost: u64,
    /// Incoming blocks that failed to decode.
    pub decode_errors: u64,
}

impl ReduceStats {
    /// Accumulates another node's counters (for whole-tree totals).
    pub fn absorb(&mut self, o: &ReduceStats) {
        self.blocks_in += o.blocks_in;
        self.blocks_forwarded += o.blocks_forwarded;
        self.bytes_in += o.bytes_in;
        self.bytes_out += o.bytes_out;
        self.merges += o.merges;
        self.windows_closed += o.windows_closed;
        self.peers_lost += o.peers_lost;
        self.decode_errors += o.decode_errors;
    }

    /// Measured per-node reduction ratio (bytes out / bytes in).
    pub fn measured_ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            1.0
        } else {
            self.bytes_out as f64 / self.bytes_in as f64
        }
    }
}

/// What a finished node hands back.
#[derive(Debug, Default)]
pub struct NodeOutcome {
    pub stats: ReduceStats,
    /// Root under [`ReduceOp::Aggregate`]: the fully merged per-application
    /// partials, ascending `app_id`. Empty everywhere else.
    pub partials: Vec<ReducePartial>,
}

/// One application's open aggregation window.
#[derive(Default)]
struct Accum {
    partial: ReducePartial,
    ws: Option<WaitStateAnalysis>,
}

impl Accum {
    fn new(app_id: u16, waitstate: bool, metrics: Option<opmr_metrics::MetricsConfig>) -> Accum {
        let mut partial = ReducePartial::new(app_id);
        partial.metrics = metrics.map(|c| opmr_metrics::MetricsSeries::new(c.window_ns));
        Accum {
            partial,
            ws: waitstate.then(WaitStateAnalysis::new),
        }
    }

    fn absorb_pack(&mut self, pack: &EventPack, block_len: usize) {
        self.partial.packs += 1;
        self.partial.wire_bytes += block_len as u64;
        self.partial.profile.add_all(&pack.events);
        self.partial.topology.add_all(&pack.events);
        if let Some(m) = &mut self.partial.metrics {
            m.fold_pack(&pack.events);
        }
        for e in &pack.events {
            self.partial.density.add_event(e.rank);
            if let Some(ws) = &mut self.ws {
                ws.add(e);
            }
        }
    }

    fn absorb_partial(&mut self, other: &ReducePartial) {
        use crate::reducible::Reducible;
        let other_ws = other.waitstate.clone();
        let mut flat = other.clone();
        flat.waitstate = None;
        self.partial.merge_from(&flat);
        if let Some(w) = &other_ws {
            self.ws.get_or_insert_with(WaitStateAnalysis::new).absorb(w);
        }
    }

    fn into_partial(mut self) -> ReducePartial {
        if let Some(ws) = &mut self.ws {
            self.partial.waitstate = Some(ws.finish().clone());
        }
        self.partial
    }
}

/// Runs one tree node to completion on the calling rank.
///
/// `leaf_children` are the world ranks of instrumented leaves the map
/// pivot assigned to this node (empty for inner nodes); internal children
/// are derived from `tree` and the caller's partition-local rank. The
/// root (node 0) delivers surviving raw blocks to `on_root_block`
/// (PassThrough / Filter) or returns merged partials (Aggregate).
pub fn run_node(
    v: &Vmpi,
    tree: &Tree,
    leaf_children: &[usize],
    cfg: StreamConfig,
    stream_id: u16,
    node_cfg: &NodeConfig,
    mut on_root_block: impl FnMut(Bytes),
) -> Result<NodeOutcome> {
    let me = v.rank();
    let part = v.my_partition().clone();
    let internal: Vec<usize> = tree
        .internal_children(me)
        .map(|c| part.world_rank_of(c))
        .collect();
    let leaves: HashSet<usize> = leaf_children.iter().copied().collect();
    let mut sources: Vec<usize> = internal.clone();
    sources.extend(leaf_children);
    let is_root = tree.parent(me).is_none();
    let (fwd_bytes, agg_bytes) = level_counters(tree.level_of(me));

    let mut tx = match tree.parent(me) {
        Some(p) => Some(WriteStream::open_to(
            v,
            vec![part.world_rank_of(p)],
            cfg,
            stream_id,
        )?),
        None => None,
    };

    let mut out = NodeOutcome::default();
    if sources.is_empty() {
        // Childless node (more tree nodes than leaves): just complete the
        // close protocol so the parent reaches EOF.
        if let Some(tx) = tx {
            tx.close()?;
        }
        return Ok(out);
    }

    let mut rx = ReadStream::open_from(v, sources, cfg, stream_id)?;
    let aggregate = matches!(node_cfg.op, ReduceOp::Aggregate);
    // Aggregate state: open windows per app, frame reassembly per child.
    let mut window: BTreeMap<u16, Accum> = BTreeMap::new();
    let mut frames: BTreeMap<usize, FrameBuf> = BTreeMap::new();
    let mut final_accum: BTreeMap<u16, Accum> = BTreeMap::new();
    let mut window_fill = 0usize;

    loop {
        let block = match rx.read(ReadMode::Blocking) {
            Ok(Some(b)) => b,
            Ok(None) => break,
            Err(VmpiError::PeerLost { rank: _ }) => {
                out.stats.peers_lost += 1;
                node_metrics().peers_lost.inc();
                continue;
            }
            Err(VmpiError::Again) => {
                std::thread::yield_now();
                continue;
            }
            Err(e) => return Err(e),
        };
        out.stats.blocks_in += 1;
        out.stats.bytes_in += block.data.len() as u64;

        match node_cfg.op {
            ReduceOp::PassThrough => {
                forward(
                    &mut out.stats,
                    &fwd_bytes,
                    &mut tx,
                    &mut on_root_block,
                    block.data,
                )?;
            }
            ReduceOp::Filter { keep_one_in } => {
                let k = keep_one_in.max(1) as u64;
                if (out.stats.blocks_in - 1) % k == 0 {
                    forward(
                        &mut out.stats,
                        &fwd_bytes,
                        &mut tx,
                        &mut on_root_block,
                        block.data,
                    )?;
                }
            }
            ReduceOp::Aggregate => {
                if leaves.contains(&block.source) {
                    // Leaf traffic: one raw event pack per block.
                    match EventPack::decode(&block.data) {
                        Ok(pack) => {
                            window
                                .entry(pack.header.app_id)
                                .or_insert_with(|| {
                                    Accum::new(
                                        pack.header.app_id,
                                        node_cfg.waitstate,
                                        node_cfg.metrics,
                                    )
                                })
                                .absorb_pack(&pack, block.data.len());
                            out.stats.merges += 1;
                            node_metrics().merges.inc();
                            window_fill += 1;
                        }
                        Err(_) => {
                            out.stats.decode_errors += 1;
                            node_metrics().decode_errors.inc();
                        }
                    }
                } else {
                    // Inner traffic: framed partial sets from a child node.
                    let fb = frames.entry(block.source).or_default();
                    if fb.poisoned().is_some() {
                        // A corrupt frame already poisoned this child's
                        // reassembly; its stream has no resync point, so
                        // later blocks are undecodable and counted once at
                        // poisoning time, not per block.
                        continue;
                    }
                    fb.push(&block.data);
                    loop {
                        let payload = match fb.next_frame() {
                            Ok(Some(p)) => p,
                            Ok(None) => break,
                            Err(_) => {
                                out.stats.decode_errors += 1;
                                node_metrics().decode_errors.inc();
                                break;
                            }
                        };
                        match decode_partial_set(&payload) {
                            Ok(parts) => {
                                for p in &parts {
                                    window
                                        .entry(p.app_id)
                                        .or_insert_with(|| {
                                            Accum::new(
                                                p.app_id,
                                                node_cfg.waitstate,
                                                node_cfg.metrics,
                                            )
                                        })
                                        .absorb_partial(p);
                                    out.stats.merges += 1;
                                    node_metrics().merges.inc();
                                }
                                window_fill += 1;
                            }
                            Err(_) => {
                                out.stats.decode_errors += 1;
                                node_metrics().decode_errors.inc();
                            }
                        }
                    }
                }
                if window_fill >= node_cfg.window_blocks.max(1) {
                    close_window(
                        &mut out.stats,
                        &agg_bytes,
                        &mut window,
                        &mut final_accum,
                        &mut tx,
                        is_root,
                    )?;
                    window_fill = 0;
                }
            }
        }
    }

    if aggregate {
        // EOF: flush whatever the last window holds.
        if !window.is_empty() {
            close_window(
                &mut out.stats,
                &agg_bytes,
                &mut window,
                &mut final_accum,
                &mut tx,
                is_root,
            )?;
        }
        if is_root {
            out.partials = final_accum.into_values().map(Accum::into_partial).collect();
        }
    }
    if let Some(tx) = tx {
        tx.close()?;
    }
    Ok(out)
}

/// Forwards one surviving raw block: up the tree, or into the root sink.
fn forward(
    stats: &mut ReduceStats,
    fwd_bytes: &opmr_obs::Counter,
    tx: &mut Option<WriteStream>,
    on_root_block: &mut impl FnMut(Bytes),
    data: Bytes,
) -> Result<()> {
    stats.blocks_forwarded += 1;
    stats.bytes_out += data.len() as u64;
    fwd_bytes.add(data.len() as u64);
    match tx {
        Some(tx) => {
            // Write-then-flush keeps the one-pack-per-block invariant at
            // every hop, so the root sees exactly the leaf framing.
            tx.write(&data)?;
            tx.flush()?;
        }
        None => on_root_block(data),
    }
    Ok(())
}

/// Closes the open aggregation window: merge into the root accumulator,
/// or encode + frame + forward to the parent.
fn close_window(
    stats: &mut ReduceStats,
    agg_bytes: &opmr_obs::Counter,
    window: &mut BTreeMap<u16, Accum>,
    final_accum: &mut BTreeMap<u16, Accum>,
    tx: &mut Option<WriteStream>,
    is_root: bool,
) -> Result<()> {
    if window.is_empty() {
        return Ok(());
    }
    let t0 = Instant::now();
    stats.windows_closed += 1;
    let closed: Vec<ReducePartial> = std::mem::take(window)
        .into_values()
        .map(Accum::into_partial)
        .collect();
    if is_root {
        for p in &closed {
            final_accum
                .entry(p.app_id)
                .or_insert_with(|| Accum::new(p.app_id, false, None))
                .absorb_partial(p);
            stats.merges += 1;
            node_metrics().merges.inc();
        }
    } else if let Some(tx) = tx {
        let encoded = encode_partial_set(&closed);
        let framed = try_frame(&encoded).map_err(|_| VmpiError::ProtocolViolation {
            expected: "an aggregated partial set within the frame size limit",
            got: format!("{} bytes", encoded.len()),
        })?;
        stats.blocks_forwarded += 1;
        stats.bytes_out += framed.len() as u64;
        agg_bytes.add(framed.len() as u64);
        tx.write(&framed)?;
        tx.flush()?;
    }
    let m = node_metrics();
    m.windows_closed.inc();
    m.window_latency.record(t0.elapsed().as_nanos() as u64);
    Ok(())
}
