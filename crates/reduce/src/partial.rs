//! Wire format for reduced partials travelling *up the tree*.
//!
//! Leaf traffic is raw event packs (`OPMR` magic, one pack per stream
//! block); once a frontier node has aggregated a window, the upward
//! traffic becomes *partial sets* — per-application [`ReducePartial`]s
//! under a distinct `OPRD` magic so a misrouted buffer is detectable
//! immediately. Partial sets can exceed one stream block, so they travel
//! length-prefixed ([`frame`]) and are reassembled per source with
//! [`FrameBuf`].

use crate::reducible::{EventDensity, Reducible};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::{
    decode_profile, decode_topology, decode_waitstats, encode_profile, encode_topology,
    encode_waitstats, merge_waitstats, AppPartial, WireError,
};
use opmr_metrics::MetricsSeries;

/// Magic prefix of an encoded partial set ("OPRD").
pub const REDUCE_MAGIC: u32 = u32::from_le_bytes(*b"OPRD");
/// Wire version of the partial-set encoding.
pub const REDUCE_VERSION: u16 = 1;

/// One application's aggregate as reduced by a tree node.
#[derive(Debug, Clone, Default)]
pub struct ReducePartial {
    pub app_id: u16,
    /// Event packs absorbed at the frontier on behalf of this aggregate.
    pub packs: u64,
    /// Leaf wire bytes those packs occupied.
    pub wire_bytes: u64,
    /// Blocks that failed pack decoding at the frontier.
    pub decode_errors: u64,
    pub profile: MpiProfile,
    pub topology: Topology,
    pub density: EventDensity,
    pub waitstate: Option<WaitStats>,
    pub metrics: Option<MetricsSeries>,
}

impl ReducePartial {
    pub fn new(app_id: u16) -> ReducePartial {
        ReducePartial {
            app_id,
            ..Default::default()
        }
    }

    /// The `analysis::wire` partial this aggregate merges into at the
    /// root (density is a derived view and stays overlay-local).
    pub fn to_app_partial(&self) -> AppPartial {
        AppPartial {
            app_id: self.app_id,
            packs: self.packs,
            wire_bytes: self.wire_bytes,
            decode_errors: self.decode_errors,
            profile: self.profile.clone(),
            topology: self.topology.clone(),
            waitstate: self.waitstate.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

impl Reducible for ReducePartial {
    fn merge_from(&mut self, other: &Self) {
        debug_assert_eq!(self.app_id, other.app_id, "merging across applications");
        self.packs += other.packs;
        self.wire_bytes += other.wire_bytes;
        self.decode_errors += other.decode_errors;
        self.profile.merge_from(&other.profile);
        self.topology.merge_from(&other.topology);
        self.density.merge_from(&other.density);
        match (&mut self.waitstate, &other.waitstate) {
            (Some(into), Some(w)) => merge_waitstats(into, w),
            (None, Some(w)) => self.waitstate = Some(w.clone()),
            _ => {}
        }
        match (&mut self.metrics, &other.metrics) {
            (Some(into), Some(m)) => into.merge(m),
            (None, Some(m)) => self.metrics = Some(m.clone()),
            _ => {}
        }
    }

    fn encoded_size(&self) -> usize {
        2 + 24
            + self.profile.encoded_size()
            + self.topology.encoded_size()
            + self.density.encoded_size()
            + 1
            + self.waitstate.as_ref().map_or(0, |w| w.encoded_size())
            + 1
            + self.metrics.as_ref().map_or(0, |m| m.encoded_size())
    }
}

/// Encodes a set of per-application partials (one node's window).
pub fn encode_partial_set(parts: &[ReducePartial]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u32_le(REDUCE_MAGIC);
    out.put_u16_le(REDUCE_VERSION);
    out.put_u16_le(parts.len() as u16);
    for p in parts {
        out.put_u16_le(p.app_id);
        out.put_u64_le(p.packs);
        out.put_u64_le(p.wire_bytes);
        out.put_u64_le(p.decode_errors);
        encode_profile(&p.profile, &mut out);
        encode_topology(&p.topology, &mut out);
        out.put_u32_le(p.density.counts().len() as u32);
        for &c in p.density.counts() {
            out.put_u64_le(c);
        }
        match &p.waitstate {
            Some(w) => {
                out.put_u8(1);
                encode_waitstats(w, &mut out);
            }
            None => out.put_u8(0),
        }
        match &p.metrics {
            Some(m) => {
                out.put_u8(1);
                m.encode_into(&mut out);
            }
            None => out.put_u8(0),
        }
    }
    out.freeze()
}

/// Decodes a partial set; rejects buffers that do not start with `OPRD`.
pub fn decode_partial_set(mut buf: &[u8]) -> Result<Vec<ReducePartial>, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != REDUCE_MAGIC {
        return Err(WireError::BadTag((magic & 0xff) as u8));
    }
    let version = buf.get_u16_le();
    if version != REDUCE_VERSION {
        return Err(WireError::BadTag(version as u8));
    }
    let n = buf.get_u16_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 2 + 24 {
            return Err(WireError::Truncated);
        }
        let app_id = buf.get_u16_le();
        let packs = buf.get_u64_le();
        let wire_bytes = buf.get_u64_le();
        let decode_errors = buf.get_u64_le();
        let profile = decode_profile(&mut buf)?;
        let topology = decode_topology(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let ranks = buf.get_u32_le() as usize;
        if buf.remaining() < ranks * 8 {
            return Err(WireError::Truncated);
        }
        let mut counts = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            counts.push(buf.get_u64_le());
        }
        let density = EventDensity::from_counts(counts);
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let waitstate = match buf.get_u8() {
            0 => None,
            1 => Some(decode_waitstats(&mut buf)?),
            t => return Err(WireError::BadTag(t)),
        };
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let metrics = match buf.get_u8() {
            0 => None,
            1 => Some(MetricsSeries::decode(&mut buf).map_err(WireError::from)?),
            t => return Err(WireError::BadTag(t)),
        };
        out.push(ReducePartial {
            app_id,
            packs,
            wire_bytes,
            decode_errors,
            profile,
            topology,
            density,
            waitstate,
            metrics,
        });
    }
    Ok(out)
}

// Framing lives in `opmr_events::frame` (shared with the serve protocol);
// re-exported here so overlay code keeps addressing it as `partial::frame`.
pub use opmr_events::frame::{frame, try_frame, FrameBuf};

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_events::{Event, EventKind};

    fn sample_partial(app_id: u16) -> ReducePartial {
        let mut p = ReducePartial::new(app_id);
        let mut metrics = MetricsSeries::new(100);
        for r in 0..4u32 {
            let e = Event {
                time_ns: r as u64 * 50,
                duration_ns: 7,
                kind: EventKind::Send,
                rank: r,
                peer: ((r + 1) % 4) as i32,
                tag: 3,
                comm: 0,
                bytes: 256,
            };
            p.profile.add(&e);
            metrics.add(&e);
            p.topology.add_weighted(r, (r + 1) % 4, 1, 256, 7);
            p.density.add_event(r);
        }
        p.metrics = Some(metrics);
        p.packs = 2;
        p.wire_bytes = 999;
        p
    }

    #[test]
    fn partial_set_roundtrip() {
        let parts = vec![sample_partial(0), sample_partial(3)];
        let enc = encode_partial_set(&parts);
        let dec = decode_partial_set(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].app_id, 0);
        assert_eq!(dec[1].app_id, 3);
        assert_eq!(dec[0].profile.events(), 4);
        assert_eq!(dec[0].topology.edge_count(), 4);
        assert_eq!(dec[0].density.total(), 4);
        assert_eq!(dec[0].packs, 2);
        assert_eq!(dec[0].wire_bytes, 999);
        assert_eq!(dec[0].metrics, parts[0].metrics);
    }

    #[test]
    fn event_pack_bytes_are_rejected_as_partials() {
        // The leaf wire format must never decode as a partial set.
        let pack = opmr_events::EventPack::new(0, 1, 0, Vec::new()).encode();
        assert!(matches!(
            decode_partial_set(&pack),
            Err(WireError::BadTag(_))
        ));
    }

    #[test]
    fn framing_survives_arbitrary_chunking() {
        let records: Vec<Bytes> = (0..5)
            .map(|i| encode_partial_set(&[sample_partial(i)]))
            .collect();
        let mut wire = BytesMut::new();
        for r in &records {
            wire.put_slice(&frame(r));
        }
        // Feed in ragged chunks; all records must come back intact.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(13) {
            fb.push(chunk);
            while let Some(payload) = fb.next_frame().unwrap() {
                got.push(payload);
            }
        }
        assert_eq!(got, records);
        assert_eq!(fb.residual(), 0);
    }

    #[test]
    fn merged_partial_accumulates() {
        let mut a = sample_partial(0);
        let b = sample_partial(0);
        a.merge_from(&b);
        assert_eq!(a.packs, 4);
        assert_eq!(a.profile.events(), 8);
        assert_eq!(a.topology.edge(0, 1).unwrap().hits, 2);
        assert_eq!(a.density.total(), 8);
        assert_eq!(a.encoded_size(), encode_partial_set(&[a.clone()]).len() - 8);
    }
}
