//! Reduction-tree shape over a partition's local ranks.
//!
//! The tree is laid out breadth-first over the node partition: local rank
//! 0 is the root (the front-end), rank `k`'s children are ranks
//! `k·f+1 ..= k·f+f` (clamped to the partition size). Nodes without
//! internal children form the **frontier**; instrumented leaf ranks attach
//! to frontier nodes round-robin via the VMPI map pivot protocol. Both
//! sides of the mapping derive the same shape from `(fanout, nodes)`
//! alone, so no topology exchange is ever needed.

use opmr_vmpi::MapPolicy;
use std::sync::Arc;

/// A breadth-first reduction tree over `nodes` partition-local ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    fanout: usize,
    nodes: usize,
}

impl Tree {
    /// Builds the tree shape; `fanout` and `nodes` are clamped to ≥ 1.
    pub fn new(fanout: usize, nodes: usize) -> Tree {
        Tree {
            fanout: fanout.max(1),
            nodes: nodes.max(1),
        }
    }

    /// Children per internal node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Total tree nodes (= partition size).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Parent of node `k`; `None` for the root.
    pub fn parent(&self, k: usize) -> Option<usize> {
        if k == 0 {
            None
        } else {
            Some((k - 1) / self.fanout)
        }
    }

    /// Internal (in-partition) children of node `k`.
    pub fn internal_children(&self, k: usize) -> std::ops::Range<usize> {
        let lo = (k * self.fanout + 1).min(self.nodes);
        let hi = (k * self.fanout + self.fanout + 1).min(self.nodes);
        lo..hi
    }

    /// True when node `k` has no internal children (leaves attach here).
    pub fn is_frontier(&self, k: usize) -> bool {
        self.internal_children(k).is_empty()
    }

    /// Frontier nodes in ascending order. Never empty: a single-node tree
    /// is its own frontier (the root reads the leaves directly).
    pub fn frontier(&self) -> Vec<usize> {
        (0..self.nodes).filter(|&k| self.is_frontier(k)).collect()
    }

    /// Level of node `k` (root = 0).
    pub fn level_of(&self, k: usize) -> usize {
        let mut level = 0;
        let mut at = k;
        while let Some(p) = self.parent(at) {
            at = p;
            level += 1;
        }
        level
    }

    /// Number of node levels (1 for a single-node tree).
    pub fn depth(&self) -> usize {
        self.level_of(self.nodes - 1) + 1
    }

    /// Map policy attaching arriving leaves to frontier nodes round-robin
    /// (the pivot evaluates it; leaves only need the same `(fanout,
    /// nodes)` pair to know the tree exists).
    pub fn leaf_policy(&self) -> MapPolicy {
        let frontier = self.frontier();
        MapPolicy::Custom(Arc::new(move |i| frontier[i % frontier.len()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tree_is_its_own_frontier() {
        let t = Tree::new(4, 1);
        assert_eq!(t.frontier(), vec![0]);
        assert!(t.is_frontier(0));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn binary_tree_of_seven() {
        let t = Tree::new(2, 7);
        assert_eq!(t.internal_children(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.internal_children(1).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(t.internal_children(2).collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(t.frontier(), vec![3, 4, 5, 6]);
        assert_eq!(t.depth(), 3);
        for k in 1..7 {
            let p = t.parent(k).unwrap();
            assert!(t.internal_children(p).contains(&k));
        }
    }

    #[test]
    fn ragged_tree_frontier() {
        // 4 nodes, fanout 2: node 1 keeps one child, node 2 is childless.
        let t = Tree::new(2, 4);
        assert_eq!(t.internal_children(1).collect::<Vec<_>>(), vec![3]);
        assert!(t.internal_children(2).is_empty());
        assert_eq!(t.frontier(), vec![2, 3]);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn chain_when_fanout_is_one() {
        let t = Tree::new(1, 4);
        assert_eq!(t.frontier(), vec![3]);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.parent(3), Some(2));
    }

    #[test]
    fn every_node_reaches_the_root() {
        for fanout in 1..5 {
            for nodes in 1..40 {
                let t = Tree::new(fanout, nodes);
                for k in 0..nodes {
                    assert!(t.level_of(k) < t.depth());
                }
                assert!(!t.frontier().is_empty());
            }
        }
    }

    #[test]
    fn leaf_policy_cycles_the_frontier() {
        let t = Tree::new(2, 7);
        let policy = t.leaf_policy();
        let MapPolicy::Custom(f) = policy else {
            panic!("leaf policy is custom")
        };
        assert_eq!(f(0), 3);
        assert_eq!(f(3), 6);
        assert_eq!(f(4), 3);
    }
}
