//! # opmr-reduce — executable TBON reduction overlay
//!
//! The netsim crate *models* an MRNet/GTI-style tree-based overlay
//! network; this crate *runs* one on the real in-process runtime, closing
//! the loop on the paper's Section V comparison between reduction trees
//! and the direct partition mapping:
//!
//! * [`tree`] — the breadth-first tree shape carved out of a named
//!   partition's ranks, with the frontier/leaf attachment policy the VMPI
//!   map pivot evaluates;
//! * [`reducible`] — the [`Reducible`](reducible::Reducible) merge trait
//!   over the analysis wire partials (`MpiProfile`, `Topology`,
//!   `WaitStats`) plus the overlay's own event-count density;
//! * [`partial`] — the `OPRD` wire format and length-prefixed framing for
//!   partials travelling up the tree;
//! * [`node`] — the windowed streaming reduction node: read child
//!   streams, fold per the configured operator (pass-through ρ=1, 1-in-k
//!   filter, full aggregation), forward upward with back-pressure;
//! * [`fanout`] — the same tree run in *reverse* for the serve plane:
//!   the root replicates each framed record once per child, interior
//!   nodes re-forward blocks verbatim, frontier nodes reassemble the
//!   records for their subscribers.
//!
//! `opmr-core` wires this into sessions as `Coupling::Tbon { fanout }`
//! (reduction) and via `ServeConfig::fan_out` (replication);
//! `tbon_compare` benchmarks the measured overlay against the analytic
//! model on the same topologies.

pub mod fanout;
pub mod node;
pub mod partial;
pub mod reducible;
pub mod tree;

pub use fanout::FanoutNode;
pub use node::{run_node, NodeConfig, NodeOutcome, ReduceOp, ReduceStats};
pub use partial::{
    decode_partial_set, encode_partial_set, frame, FrameBuf, ReducePartial, REDUCE_MAGIC,
};
pub use reducible::{EventDensity, Reducible};
pub use tree::Tree;
