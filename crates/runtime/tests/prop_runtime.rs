//! Property-based tests for the runtime's invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use bytes::Bytes;
use opmr_runtime::pod::{bytes_of_slice, vec_from_bytes};
use opmr_runtime::{Launcher, Src, TagSel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// POD slice encode/decode is the identity.
    #[test]
    fn pod_roundtrip_u64(data in proptest::collection::vec(any::<u64>(), 0..256)) {
        let b = bytes_of_slice(&data);
        prop_assert_eq!(vec_from_bytes::<u64>(&b).unwrap(), data);
    }

    #[test]
    fn pod_roundtrip_f64(data in proptest::collection::vec(any::<f64>(), 0..128)) {
        let b = bytes_of_slice(&data);
        let back = vec_from_bytes::<f64>(&b).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every message injected between a random pair arrives exactly once,
    /// in order, regardless of eager/rendezvous mix.
    #[test]
    fn pairwise_delivery_exactly_once(
        sizes in proptest::collection::vec(0usize..4096, 1..24),
        eager_limit in 1usize..2048,
    ) {
        let sizes2 = sizes.clone();
        Launcher::new()
            .eager_limit(eager_limit)
            .partition("p", 2, move |mpi| {
                let w = mpi.world();
                if w.local_rank() == 0 {
                    for (i, &len) in sizes2.iter().enumerate() {
                        mpi.send(&w, 1, 0, Bytes::from(vec![i as u8; len])).unwrap();
                    }
                } else {
                    for (i, &len) in sizes2.iter().enumerate() {
                        let (_s, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(0)).unwrap();
                        assert_eq!(data.len(), len, "message {i} size");
                        assert!(data.iter().all(|&b| b == i as u8), "message {i} content");
                    }
                }
            })
            .run()
            .unwrap();
    }

    /// Allreduce(sum) over random vectors equals the local fold on every rank.
    #[test]
    fn allreduce_equals_fold(
        n_ranks in 2usize..9,
        per_rank in proptest::collection::vec(0i64..1_000_000, 1..8),
    ) {
        let vals: Vec<i64> = (0..n_ranks).map(|r| per_rank[r % per_rank.len()]).collect();
        let expect: i64 = vals.iter().sum();
        let vals2 = vals.clone();
        Launcher::new()
            .partition("p", n_ranks, move |mpi| {
                let w = mpi.world();
                let mine = vals2[w.local_rank()];
                let got = mpi
                    .allreduce_t(&w, &[mine], opmr_runtime::collectives::ops::sum)
                    .unwrap();
                assert_eq!(got, vec![expect]);
            })
            .run()
            .unwrap();
    }

    /// Alltoall is a transpose: out[src][..] was parts[src→me].
    #[test]
    fn alltoall_is_transpose(n_ranks in 2usize..7, elem in any::<u8>()) {
        Launcher::new()
            .partition("p", n_ranks, move |mpi| {
                let w = mpi.world();
                let r = w.local_rank();
                let parts: Vec<Bytes> = (0..w.size())
                    .map(|d| Bytes::from(vec![elem ^ (r * 31 + d) as u8; 2]))
                    .collect();
                let got = mpi.alltoall(&w, parts).unwrap();
                for (src, p) in got.iter().enumerate() {
                    assert_eq!(p[0], elem ^ (src * 31 + r) as u8);
                }
            })
            .run()
            .unwrap();
    }
}
