//! End-to-end semantics tests for the in-process MPI runtime: real threads,
//! real blocking, real back-pressure.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use bytes::Bytes;
use opmr_runtime::collectives::ops;
use opmr_runtime::{Launcher, Mpi, Src, TagSel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn run_n(n: usize, f: impl Fn(Mpi) + Send + Sync + 'static) {
    Launcher::new().partition("t", n, f).run().unwrap();
}

#[test]
fn ring_pass_delivers_in_order() {
    run_n(5, |mpi| {
        let w = mpi.world();
        let n = w.size();
        let r = w.local_rank();
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        if r == 0 {
            mpi.send_t(&w, next, 0, &[0u64]).unwrap();
            let (_s, v) = mpi
                .recv_t::<u64>(&w, Src::Rank(prev), TagSel::Tag(0))
                .unwrap();
            assert_eq!(v, vec![(n - 1) as u64]);
        } else {
            let (_s, v) = mpi
                .recv_t::<u64>(&w, Src::Rank(prev), TagSel::Tag(0))
                .unwrap();
            mpi.send_t(&w, next, 0, &[v[0] + 1]).unwrap();
        }
    });
}

#[test]
fn any_source_any_tag_receives_everything() {
    run_n(6, |mpi| {
        let w = mpi.world();
        if w.local_rank() == 0 {
            let mut seen = vec![false; w.size()];
            seen[0] = true;
            for _ in 1..w.size() {
                let (st, data) = mpi.recv(&w, Src::Any, TagSel::Any).unwrap();
                assert_eq!(data.len(), st.source);
                assert_eq!(st.tag, st.source as i32 * 10);
                assert!(!seen[st.source], "duplicate source");
                seen[st.source] = true;
            }
            assert!(seen.iter().all(|&s| s));
        } else {
            let r = w.local_rank();
            mpi.send(&w, 0, r as i32 * 10, Bytes::from(vec![7u8; r]))
                .unwrap();
        }
    });
}

#[test]
fn non_overtaking_same_pair_same_tag() {
    run_n(2, |mpi| {
        let w = mpi.world();
        if w.local_rank() == 0 {
            for i in 0..100u32 {
                mpi.send_t(&w, 1, 3, &[i]).unwrap();
            }
        } else {
            for i in 0..100u32 {
                let (_s, v) = mpi.recv_t::<u32>(&w, Src::Rank(0), TagSel::Tag(3)).unwrap();
                assert_eq!(v[0], i);
            }
        }
    });
}

#[test]
fn rendezvous_blocks_until_receiver_arrives() {
    // A 1 MB message exceeds the eager limit: the sender must block until
    // the receiver posts, proving back-pressure exists.
    static SEND_DONE_BEFORE_RECV: AtomicUsize = AtomicUsize::new(0);
    Launcher::new()
        .eager_limit(1024)
        .partition("t", 2, |mpi| {
            let w = mpi.world();
            if w.local_rank() == 0 {
                let payload = Bytes::from(vec![0xAB; 1 << 20]);
                mpi.send(&w, 1, 0, payload).unwrap();
                SEND_DONE_BEFORE_RECV.fetch_add(1, Ordering::SeqCst);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(100));
                // Sender must still be blocked here.
                assert_eq!(SEND_DONE_BEFORE_RECV.load(Ordering::SeqCst), 0);
                let (_s, data) = mpi.recv(&w, Src::Rank(0), TagSel::Any).unwrap();
                assert_eq!(data.len(), 1 << 20);
            }
        })
        .run()
        .unwrap();
    assert_eq!(SEND_DONE_BEFORE_RECV.load(Ordering::SeqCst), 1);
}

#[test]
fn isend_large_completes_after_matching_recv() {
    Launcher::new()
        .eager_limit(16)
        .partition("t", 2, |mpi| {
            let w = mpi.world();
            if w.local_rank() == 0 {
                let mut req = mpi.isend(&w, 1, 1, Bytes::from(vec![1u8; 4096])).unwrap();
                assert!(!req.is_complete());
                mpi.send(&w, 1, 2, Bytes::new()).unwrap(); // eager go-signal
                req.wait().unwrap();
            } else {
                mpi.recv(&w, Src::Rank(0), TagSel::Tag(2)).unwrap();
                let (_s, data) = mpi.recv(&w, Src::Rank(0), TagSel::Tag(1)).unwrap();
                assert_eq!(data.len(), 4096);
            }
        })
        .run()
        .unwrap();
}

#[test]
fn sendrecv_exchange_does_not_deadlock() {
    run_n(4, |mpi| {
        let w = mpi.world();
        let n = w.size();
        let r = w.local_rank();
        let partner = n - 1 - r;
        let (st, data) = mpi
            .sendrecv(
                &w,
                partner,
                5,
                Bytes::from(vec![r as u8; 1 << 17]), // rendezvous-sized both ways
                Src::Rank(partner),
                TagSel::Tag(5),
            )
            .unwrap();
        assert_eq!(st.source, partner);
        assert!(data.iter().all(|&b| b == partner as u8));
    });
}

#[test]
fn barrier_orders_phases() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    run_n(8, move |mpi| {
        let w = mpi.world();
        log2.lock().unwrap().push((0u8, w.local_rank()));
        mpi.barrier(&w).unwrap();
        log2.lock().unwrap().push((1u8, w.local_rank()));
    });
    let log = log.lock().unwrap();
    let last_pre = log.iter().rposition(|e| e.0 == 0).unwrap();
    let first_post = log.iter().position(|e| e.0 == 1).unwrap();
    assert!(
        last_pre < first_post,
        "a rank left the barrier before all entered"
    );
}

#[test]
fn bcast_from_every_root() {
    run_n(7, |mpi| {
        let w = mpi.world();
        for root in 0..w.size() {
            let data = if w.local_rank() == root {
                Some(Bytes::from(format!("payload-from-{root}")))
            } else {
                None
            };
            let got = mpi.bcast(&w, root, data).unwrap();
            assert_eq!(&got[..], format!("payload-from-{root}").as_bytes());
        }
    });
}

#[test]
fn reduce_sum_matches_closed_form() {
    run_n(9, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as u64;
        let local = [r, r * r, 1];
        let res = mpi.reduce_t(&w, 3, &local, ops::sum).unwrap();
        if w.local_rank() == 3 {
            let n = w.size() as u64;
            let s1 = n * (n - 1) / 2;
            let s2 = (0..n).map(|x| x * x).sum::<u64>();
            assert_eq!(res.unwrap(), vec![s1, s2, n]);
        } else {
            assert!(res.is_none());
        }
    });
}

#[test]
fn allreduce_min_max() {
    run_n(6, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as f64;
        let mn = mpi.allreduce_t(&w, &[r + 10.0], ops::min).unwrap();
        let mx = mpi.allreduce_t(&w, &[r + 10.0], ops::max).unwrap();
        assert_eq!(mn, vec![10.0]);
        assert_eq!(mx, vec![15.0]);
    });
}

#[test]
fn gather_scatter_roundtrip() {
    run_n(5, |mpi| {
        let w = mpi.world();
        let r = w.local_rank();
        let gathered = mpi
            .gather(&w, 2, Bytes::from(vec![r as u8; r + 1]))
            .unwrap();
        let parts = if r == 2 {
            let parts = gathered.unwrap();
            for (i, p) in parts.iter().enumerate() {
                assert_eq!(p.len(), i + 1);
                assert!(p.iter().all(|&b| b == i as u8));
            }
            Some(parts)
        } else {
            assert!(gathered.is_none());
            None
        };
        let mine = mpi.scatter(&w, 2, parts).unwrap();
        assert_eq!(mine.len(), r + 1);
        assert!(mine.iter().all(|&b| b == r as u8));
    });
}

#[test]
fn allgather_collects_in_rank_order() {
    run_n(6, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as u32;
        let all = mpi.allgather_t(&w, &[r * 2, r * 2 + 1]).unwrap();
        for (i, v) in all.iter().enumerate() {
            assert_eq!(v, &vec![i as u32 * 2, i as u32 * 2 + 1]);
        }
    });
}

#[test]
fn alltoall_transpose() {
    run_n(4, |mpi| {
        let w = mpi.world();
        let r = w.local_rank();
        let parts: Vec<Bytes> = (0..w.size())
            .map(|dst| Bytes::from(vec![(r * 16 + dst) as u8; 3]))
            .collect();
        let got = mpi.alltoall(&w, parts).unwrap();
        for (src, p) in got.iter().enumerate() {
            assert_eq!(p[0], (src * 16 + r) as u8);
        }
    });
}

#[test]
fn comm_split_even_odd() {
    run_n(8, |mpi| {
        let w = mpi.world();
        let r = w.local_rank();
        let sub = mpi
            .comm_split(&w, (r % 2) as i64, r as i64)
            .unwrap()
            .unwrap();
        assert_eq!(sub.size(), 4);
        assert_eq!(sub.local_rank(), r / 2);
        // Communicate within the sub-communicator only.
        let sum = mpi.allreduce_t(&sub, &[r as u64], ops::sum).unwrap();
        let expect: u64 = (0..8u64).filter(|x| x % 2 == r as u64 % 2).sum();
        assert_eq!(sum, vec![expect]);
    });
}

#[test]
fn comm_split_undefined_color() {
    run_n(4, |mpi| {
        let w = mpi.world();
        let r = w.local_rank();
        let color = if r == 0 { -1 } else { 1 };
        let sub = mpi.comm_split(&w, color, 0).unwrap();
        if r == 0 {
            assert!(sub.is_none());
        } else {
            assert_eq!(sub.unwrap().size(), 3);
        }
    });
}

#[test]
fn comm_dup_isolates_traffic() {
    run_n(2, |mpi| {
        let w = mpi.world();
        let dup = mpi.comm_dup(&w).unwrap();
        assert_ne!(dup.id(), w.id());
        if w.local_rank() == 0 {
            mpi.send_t(&w, 1, 0, &[1u8]).unwrap();
            mpi.send_t(&dup, 1, 0, &[2u8]).unwrap();
        } else {
            // Receive from the dup first: tags/ranks identical, only the
            // communicator distinguishes the two messages.
            let (_s, vdup) = mpi
                .recv_t::<u8>(&dup, Src::Rank(0), TagSel::Tag(0))
                .unwrap();
            let (_s, vw) = mpi.recv_t::<u8>(&w, Src::Rank(0), TagSel::Tag(0)).unwrap();
            assert_eq!(vdup, vec![2]);
            assert_eq!(vw, vec![1]);
        }
    });
}

#[test]
fn mpmd_partitions_visible_everywhere() {
    Launcher::new()
        .partition("appA", 3, |mpi| {
            assert_eq!(mpi.my_partition().name, "appA");
            assert_eq!(mpi.partitions().len(), 3);
            let an = mpi.universe().partition_by_name("Analyzer").unwrap();
            assert_eq!(an.size, 2);
            assert_eq!(an.first_world_rank, 5);
        })
        .partition("appB", 2, |mpi| {
            assert_eq!(mpi.my_partition().id, 1);
            assert_eq!(mpi.partition_rank(), mpi.world_rank() - 3);
        })
        .partition("Analyzer", 2, |mpi| {
            assert_eq!(mpi.my_partition().name, "Analyzer");
        })
        .run()
        .unwrap();
}

#[test]
fn cross_partition_traffic_over_world() {
    Launcher::new()
        .partition("w", 3, |mpi| {
            let world = mpi.world();
            mpi.send_t(&world, 3, 9, &[mpi.world_rank() as u64])
                .unwrap();
        })
        .partition("r", 1, |mpi| {
            let world = mpi.world();
            let mut got = Vec::new();
            for _ in 0..3 {
                let (_s, v) = mpi.recv_t::<u64>(&world, Src::Any, TagSel::Tag(9)).unwrap();
                got.extend(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2]);
        })
        .run()
        .unwrap();
}

#[test]
fn wtime_advances_across_ranks() {
    run_n(2, |mpi| {
        let t0 = mpi.wtime();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(mpi.wtime() > t0);
        assert!(mpi.wtime_ns() > 0);
    });
}

#[test]
fn stress_many_ranks_allreduce() {
    run_n(32, |mpi| {
        let w = mpi.world();
        let v = mpi.allreduce_t(&w, &[1u64], ops::sum).unwrap();
        assert_eq!(v, vec![32]);
    });
}

#[test]
fn scan_is_inclusive_prefix() {
    run_n(7, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as u64;
        let got = opmr_runtime::collectives::scan_t(&mpi, &w, &[r + 1], ops::sum).unwrap();
        // 1 + 2 + … + (r+1).
        assert_eq!(got, vec![(r + 1) * (r + 2) / 2]);
    });
}

#[test]
fn exscan_is_exclusive_prefix() {
    run_n(6, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as u64;
        let got = opmr_runtime::collectives::exscan_t(&mpi, &w, &[r + 1], ops::sum).unwrap();
        if r == 0 {
            assert!(got.is_none());
        } else {
            assert_eq!(got.unwrap(), vec![r * (r + 1) / 2]);
        }
    });
}

#[test]
fn reduce_scatter_distributes_blocks() {
    run_n(4, |mpi| {
        let w = mpi.world();
        let r = w.local_rank() as u64;
        // Each rank contributes [r*10+0, r*10+1, r*10+2, r*10+3] doubled up
        // into blocks of 2.
        let local: Vec<u64> = (0..8).map(|i| r * 100 + i).collect();
        let got = opmr_runtime::collectives::reduce_scatter_t(&mpi, &w, &local, ops::sum).unwrap();
        // Block b element e = sum over ranks of (rank*100 + b*2 + e).
        let base: u64 = (0..4u64).map(|x| x * 100).sum();
        let b = r as usize;
        assert_eq!(
            got,
            vec![base + 4 * (2 * b as u64), base + 4 * (2 * b as u64 + 1)]
        );
    });
}

#[test]
fn reduce_scatter_rejects_indivisible_input() {
    run_n(3, |mpi| {
        let w = mpi.world();
        let res = opmr_runtime::collectives::reduce_scatter_t(&mpi, &w, &[1u64; 7], ops::sum);
        assert!(res.is_err());
    });
}

#[test]
fn scan_with_max_is_running_maximum() {
    run_n(5, |mpi| {
        let w = mpi.world();
        let vals = [3u64, 1, 4, 1, 5];
        let mine = vals[w.local_rank()];
        let got = opmr_runtime::collectives::scan_t(&mpi, &w, &[mine], ops::max).unwrap();
        let expect = *vals[..=w.local_rank()].iter().max().unwrap();
        assert_eq!(got, vec![expect]);
    });
}
