//! Deterministic fault injection at the transport boundary.
//!
//! A [`FaultPlan`] describes a set of faults — drop, duplicate, reorder,
//! delay, slow rank, writer crash — each keyed by a `u64` seed and a
//! per-edge probability. The plan is installed on the [`crate::Launcher`]
//! and evaluated by the [`FaultLayer`] inside `send`/`isend` on the
//! [`crate::Context::Stream`] plane, just before the envelope is handed to
//! the destination mailbox.
//!
//! Every decision is a pure function of `(seed, src, dst, per-edge sequence
//! number, fault kind)`: the n-th eligible message on an edge sees the same
//! verdict in every run with the same plan, regardless of thread
//! interleaving. That is what makes chaos runs replayable — rerunning with
//! the seed printed by a failing test reproduces the exact fault schedule.
//!
//! Two exemptions keep injected faults recoverable instead of wedging
//! protocols that have no retry path:
//!
//! * messages smaller than [`FaultPlan::min_payload`] are treated as
//!   control traffic (stream FIN markers and similar) and pass through
//!   unfaulted — though they still flush a reorder-held envelope so no
//!   message is held forever;
//! * an optional [`FaultPlan::only_tags`] range restricts faults to one tag
//!   space (e.g. the VMPI stream block tags), leaving handshake protocols
//!   such as the map pivot exchange untouched.

use crate::envelope::Envelope;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::RangeInclusive;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Permanently disable a rank's stream-plane sends after it has issued a
/// number of eligible data messages — the harness's model of a writer
/// process dying mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterCrash {
    /// World rank that crashes.
    pub rank: usize,
    /// Number of eligible data sends the rank completes before dying.
    pub after_sends: u64,
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed keying every per-edge decision.
    pub seed: u64,
    /// Probability a data message is dropped (sender sees
    /// [`crate::RtError::Dropped`] and may resend).
    pub drop_p: f64,
    /// Probability a data message is delivered twice.
    pub dup_p: f64,
    /// Probability a data message is held and delivered after the next
    /// message on the same edge.
    pub reorder_p: f64,
    /// Probability a data message is delayed by [`FaultPlan::delay`].
    pub delay_p: f64,
    /// Delay applied when the delay fault fires.
    pub delay: Duration,
    /// Ranks whose every data send is slowed by [`FaultPlan::slow_delay`].
    pub slow_ranks: Vec<usize>,
    /// Extra latency per send from a slow rank.
    pub slow_delay: Duration,
    /// Optional mid-stream writer death.
    pub crash: Option<WriterCrash>,
    /// Messages below this size are control traffic and never faulted.
    pub min_payload: usize,
    /// When set, only tags inside this range are fault-eligible.
    pub only_tags: Option<RangeInclusive<i32>>,
}

impl FaultPlan {
    /// Default control-message size threshold (covers stream frame headers
    /// and FIN markers).
    pub const DEFAULT_MIN_PAYLOAD: usize = 32;

    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_micros(200),
            slow_ranks: Vec::new(),
            slow_delay: Duration::from_micros(200),
            crash: None,
            min_payload: Self::DEFAULT_MIN_PAYLOAD,
            only_tags: None,
        }
    }

    /// Enables message dropping with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Enables message duplication with probability `p`.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Enables message reordering with probability `p`.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Enables message delay with probability `p` and the given duration.
    pub fn with_delay(mut self, p: f64, by: Duration) -> Self {
        self.delay_p = p;
        self.delay = by;
        self
    }

    /// Marks `rank` as slow: every data send from it sleeps `by` first.
    pub fn with_slow_rank(mut self, rank: usize, by: Duration) -> Self {
        self.slow_ranks.push(rank);
        self.slow_delay = by;
        self
    }

    /// Kills `rank`'s stream transport after `after_sends` data sends.
    pub fn with_crash(mut self, rank: usize, after_sends: u64) -> Self {
        self.crash = Some(WriterCrash { rank, after_sends });
        self
    }

    /// Overrides the control-message size threshold.
    pub fn with_min_payload(mut self, bytes: usize) -> Self {
        self.min_payload = bytes;
        self
    }

    /// Restricts faults to one tag range (e.g. the VMPI stream data tags).
    pub fn with_only_tags(mut self, tags: RangeInclusive<i32>) -> Self {
        self.only_tags = Some(tags);
        self
    }
}

/// Counters of faults actually injected, readable after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub drops: u64,
    pub dups: u64,
    pub reorders: u64,
    pub delays: u64,
    pub slow_hits: u64,
    pub crashed_sends: u64,
}

impl FaultStats {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.drops + self.dups + self.reorders + self.delays + self.slow_hits + self.crashed_sends
    }
}

#[derive(Default)]
struct EdgeState {
    /// Sequence number of eligible data messages on this edge.
    seq: u64,
    /// Envelope held back by a reorder fault, delivered after the next
    /// message on the same edge.
    held: Option<Envelope>,
}

/// What the transport must do with one outgoing message.
pub(crate) struct Injection {
    /// Sleep before delivering (delay / slow-rank faults).
    pub sleep: Option<Duration>,
    /// Envelopes to hand to the destination mailbox, in order. May be empty
    /// (reorder hold), or longer than one (duplicate, reorder flush).
    pub deliver: Vec<Envelope>,
    /// When true the send fails with [`crate::RtError::Dropped`] after any
    /// flush deliveries above.
    pub dropped: bool,
}

impl Injection {
    fn pass(env: Envelope) -> Self {
        Injection {
            sleep: None,
            deliver: vec![env],
            dropped: false,
        }
    }
}

// Registry mirrors of the per-layer fault counters, so chaos runs show up
// in the self-monitoring snapshot next to the stream/serve metrics.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct FaultMetrics {
        pub drops: Arc<Counter>,
        pub dups: Arc<Counter>,
        pub reorders: Arc<Counter>,
        pub delays: Arc<Counter>,
        pub slow_hits: Arc<Counter>,
        pub crashed_sends: Arc<Counter>,
    }

    pub(super) fn m() -> &'static FaultMetrics {
        static M: OnceLock<FaultMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            FaultMetrics {
                drops: r.counter("fault_drops_total"),
                dups: r.counter("fault_dups_total"),
                reorders: r.counter("fault_reorders_total"),
                delays: r.counter("fault_delays_total"),
                slow_hits: r.counter("fault_slow_hits_total"),
                crashed_sends: r.counter("fault_crashed_sends_total"),
            }
        })
    }
}

// Salts separating the per-kind decision streams.
const SALT_DROP: u64 = 0x6472_6f70; // "drop"
const SALT_DUP: u64 = 0x6475_7065; // "dupe"
const SALT_REORD: u64 = 0x7265_6f72; // "reor"
const SALT_DELAY: u64 = 0x6465_6c79; // "dely"

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates a [`FaultPlan`] against live traffic.
pub struct FaultLayer {
    plan: FaultPlan,
    edges: Mutex<HashMap<(usize, usize), EdgeState>>,
    /// Per-rank count of eligible data sends (crash trigger input).
    data_sends: Vec<AtomicU64>,
    /// Set once a rank's crash has triggered; all its later stream sends
    /// fail, control traffic included.
    crashed: Vec<AtomicBool>,
    drops: AtomicU64,
    dups: AtomicU64,
    reorders: AtomicU64,
    delays: AtomicU64,
    slow_hits: AtomicU64,
    crashed_sends: AtomicU64,
}

impl FaultLayer {
    pub(crate) fn new(plan: FaultPlan, world_size: usize) -> Self {
        FaultLayer {
            plan,
            edges: Mutex::new(HashMap::new()),
            data_sends: (0..world_size).map(|_| AtomicU64::new(0)).collect(),
            crashed: (0..world_size).map(|_| AtomicBool::new(false)).collect(),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            reorders: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            slow_hits: AtomicU64::new(0),
            crashed_sends: AtomicU64::new(0),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.load(Ordering::Relaxed),
            dups: self.dups.load(Ordering::Relaxed),
            reorders: self.reorders.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            slow_hits: self.slow_hits.load(Ordering::Relaxed),
            crashed_sends: self.crashed_sends.load(Ordering::Relaxed),
        }
    }

    /// True once `rank`'s injected crash has triggered.
    pub fn rank_crashed(&self, rank: usize) -> bool {
        self.crashed
            .get(rank)
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    fn roll(&self, src: usize, dst: usize, seq: u64, salt: u64) -> u64 {
        let mut h = splitmix64(self.plan.seed ^ salt);
        for v in [src as u64, dst as u64, seq] {
            h = splitmix64(h ^ v);
        }
        h
    }

    fn hits(&self, p: f64, src: usize, dst: usize, seq: u64, salt: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.roll(src, dst, seq, salt) < (p * u64::MAX as f64) as u64
    }

    fn eligible(&self, env: &Envelope) -> bool {
        if env.payload.len() < self.plan.min_payload {
            return false;
        }
        match &self.plan.only_tags {
            Some(range) => range.contains(&env.header.tag),
            None => true,
        }
    }

    /// Decides the fate of one stream-plane message from `src` to `dst`.
    pub(crate) fn on_send(&self, src: usize, dst: usize, env: Envelope) -> Injection {
        if self.crashed[src].load(Ordering::Relaxed) {
            self.crashed_sends.fetch_add(1, Ordering::Relaxed);
            obs::m().crashed_sends.inc();
            return Injection {
                sleep: None,
                deliver: Vec::new(),
                dropped: true,
            };
        }
        if !self.eligible(&env) {
            // Control traffic passes through unfaulted but flushes any
            // reorder-held envelope on the same edge so nothing is held
            // past the end of the stream.
            let held = self
                .edges
                .lock()
                .get_mut(&(src, dst))
                .and_then(|e| e.held.take());
            let mut inj = Injection::pass(env);
            if let Some(h) = held {
                inj.deliver.push(h);
            }
            return inj;
        }

        let count = self.data_sends[src].fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.plan.crash {
            if src == c.rank && count >= c.after_sends {
                self.crashed[src].store(true, Ordering::Relaxed);
                self.crashed_sends.fetch_add(1, Ordering::Relaxed);
                obs::m().crashed_sends.inc();
                obs::m().crashed_sends.inc();
                // Any held envelope on this rank's edges dies with it.
                return Injection {
                    sleep: None,
                    deliver: Vec::new(),
                    dropped: true,
                };
            }
        }

        let mut sleep = None;
        if self.plan.slow_ranks.contains(&src) {
            self.slow_hits.fetch_add(1, Ordering::Relaxed);
            obs::m().slow_hits.inc();
            sleep = Some(self.plan.slow_delay);
        }

        let mut edges = self.edges.lock();
        let edge = edges.entry((src, dst)).or_default();
        let seq = edge.seq;
        edge.seq += 1;

        if self.hits(self.plan.drop_p, src, dst, seq, SALT_DROP) {
            // The message never reaches the mailbox; a held envelope stays
            // held (the sender's resend will flush it).
            self.drops.fetch_add(1, Ordering::Relaxed);
            obs::m().drops.inc();
            return Injection {
                sleep,
                deliver: Vec::new(),
                dropped: true,
            };
        }

        let mut deliver = Vec::with_capacity(3);
        if self.hits(self.plan.dup_p, src, dst, seq, SALT_DUP) {
            self.dups.fetch_add(1, Ordering::Relaxed);
            obs::m().dups.inc();
            deliver.push(env.clone());
            deliver.push(env);
        } else if self.hits(self.plan.reorder_p, src, dst, seq, SALT_REORD) {
            self.reorders.fetch_add(1, Ordering::Relaxed);
            obs::m().reorders.inc();
            // Hold this message; release whatever was held before it.
            let prev = edge.held.replace(env);
            return Injection {
                sleep,
                deliver: prev.into_iter().collect(),
                dropped: false,
            };
        } else {
            if self.hits(self.plan.delay_p, src, dst, seq, SALT_DELAY) {
                self.delays.fetch_add(1, Ordering::Relaxed);
                obs::m().delays.inc();
                sleep = Some(sleep.unwrap_or_default() + self.plan.delay);
            }
            deliver.push(env);
        }
        // A held envelope is released *after* the current message, which is
        // exactly the reorder the fault models.
        if let Some(h) = edge.held.take() {
            deliver.push(h);
        }
        Injection {
            sleep,
            deliver,
            dropped: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;
    use crate::envelope::Context;
    use crate::mailbox::make_envelope;
    use bytes::Bytes;

    fn env(src: usize, tag: i32, len: usize) -> Envelope {
        make_envelope(
            Context::Stream,
            CommId(1),
            src,
            src,
            tag,
            Bytes::from(vec![0xAB; len]),
        )
    }

    fn layer(plan: FaultPlan) -> FaultLayer {
        FaultLayer::new(plan, 8)
    }

    #[test]
    fn no_faults_passes_everything_through() {
        let l = layer(FaultPlan::seeded(1));
        for i in 0..100 {
            let inj = l.on_send(0, 1, env(0, 10, 64 + i));
            assert!(inj.sleep.is_none());
            assert!(!inj.dropped);
            assert_eq!(inj.deliver.len(), 1);
        }
        assert_eq!(l.stats().total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_edge_sequence() {
        let plan = FaultPlan::seeded(42).with_drop(0.3).with_dup(0.2);
        let run = |l: &FaultLayer| -> Vec<(bool, usize)> {
            (0..200)
                .map(|_| {
                    let inj = l.on_send(2, 5, env(2, 10, 64));
                    (inj.dropped, inj.deliver.len())
                })
                .collect()
        };
        let a = run(&layer(plan.clone()));
        let b = run(&layer(plan));
        assert_eq!(a, b);
        assert!(a.iter().any(|x| x.0), "some drops expected at p=0.3");
        assert!(a.iter().any(|x| x.1 == 2), "some dups expected at p=0.2");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| {
            let l = layer(FaultPlan::seeded(seed).with_drop(0.5));
            (0..64)
                .map(|_| l.on_send(0, 1, env(0, 10, 64)).dropped)
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn small_payloads_are_control_exempt() {
        let l = layer(FaultPlan::seeded(7).with_drop(1.0));
        let inj = l.on_send(0, 1, env(0, 10, 8));
        assert!(!inj.dropped);
        assert_eq!(inj.deliver.len(), 1);
        assert_eq!(l.stats().drops, 0);
    }

    #[test]
    fn tag_filter_exempts_other_tag_spaces() {
        let l = layer(
            FaultPlan::seeded(7)
                .with_drop(1.0)
                .with_only_tags(100..=200),
        );
        assert!(!l.on_send(0, 1, env(0, 99, 64)).dropped);
        assert!(l.on_send(0, 1, env(0, 150, 64)).dropped);
    }

    #[test]
    fn reorder_holds_then_releases_after_next_message() {
        let l = layer(FaultPlan::seeded(3).with_reorder(1.0));
        // First message is held.
        let inj = l.on_send(0, 1, env(0, 10, 64));
        assert!(inj.deliver.is_empty());
        assert!(!inj.dropped);
        // Second message is also chosen for reorder (p=1), so the first is
        // released and the second takes its place in the hold slot.
        let inj = l.on_send(0, 1, env(0, 10, 64));
        assert_eq!(inj.deliver.len(), 1);
        // A control message flushes the hold.
        let inj = l.on_send(0, 1, env(0, 10, 4));
        assert_eq!(inj.deliver.len(), 2);
        assert_eq!(l.stats().reorders, 2);
    }

    #[test]
    fn crash_kills_all_later_sends_from_the_rank() {
        let l = layer(FaultPlan::seeded(9).with_crash(3, 2));
        assert!(!l.on_send(3, 1, env(3, 10, 64)).dropped);
        assert!(!l.on_send(3, 1, env(3, 10, 64)).dropped);
        assert!(l.on_send(3, 1, env(3, 10, 64)).dropped, "third send dies");
        assert!(l.rank_crashed(3));
        // Even control traffic from the crashed rank fails now.
        assert!(l.on_send(3, 1, env(3, 10, 4)).dropped);
        // Other ranks are unaffected.
        assert!(!l.on_send(2, 1, env(2, 10, 64)).dropped);
    }

    #[test]
    fn slow_rank_gets_a_sleep_and_delay_adds_one() {
        let l = layer(
            FaultPlan::seeded(5)
                .with_slow_rank(1, Duration::from_micros(10))
                .with_delay(1.0, Duration::from_micros(20)),
        );
        let inj = l.on_send(1, 2, env(1, 10, 64));
        assert_eq!(inj.sleep, Some(Duration::from_micros(30)));
        let inj = l.on_send(0, 2, env(0, 10, 64));
        assert_eq!(inj.sleep, Some(Duration::from_micros(20)));
    }
}
