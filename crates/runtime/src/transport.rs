//! Pluggable envelope transport.
//!
//! Everything above this seam — the mailbox matching engine, the
//! eager/rendezvous protocol split, [`crate::FaultPlan`] injection (it
//! runs in `Mpi::deliver_env`, *before* the transport is asked to move
//! the envelope), obs counters and the typed `PeerLost`/shutdown
//! semantics — is backend-independent. A [`Transport`] only has to answer
//! four questions:
//!
//! 1. *deliver*: hand an [`Envelope`] to the mailbox of `dst_world`,
//!    wherever that mailbox lives;
//! 2. *local_mailbox*: which ranks' mailboxes are hosted in this process
//!    (receives always happen on a local mailbox);
//! 3. *rank_alive*: is a rank's entry point still running — the liveness
//!    bit stream readers use to tell "no data yet" from "writer is gone";
//! 4. *teardown*: propagate `mark_rank_done` / `shutdown_all` to every
//!    process hosting part of the job.
//!
//! [`InProc`] is the original single-process backend: one mailbox and one
//! liveness flag per rank, all in this address space. The socket backend
//! lives in [`crate::socket`] and must pass the same conformance suite
//! (`tests/transport_conformance.rs`) — as must any future backend.
//!
//! # Delivery contract
//!
//! * FIFO per (source, destination): two envelopes sent by the same rank
//!   to the same destination arrive in send order (MPI non-overtaking).
//! * `deliver` to a rank whose mailbox is local applies the
//!   eager/rendezvous split and may return [`Delivery::Pending`]; the
//!   sender then blocks on the *local* destination mailbox.
//! * `deliver` to a remote rank always completes eagerly from the
//!   sender's point of view ([`Delivery::Complete`]); back-pressure is
//!   the byte stream's flow control.
//! * Once `rank_alive(r)` returns `false`, every envelope `r` ever sent
//!   is already delivered (or the peer connection is gone, which readers
//!   surface as a typed peer-lost error). Backends must order the
//!   "rank done" signal *after* the rank's last envelope.

use crate::envelope::Envelope;
use crate::mailbox::{Delivery, Mailbox};
use crate::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Moves envelopes between ranks and tracks rank liveness.
///
/// See the module docs for the delivery contract every implementation
/// must honour; `tests/transport_conformance.rs` checks it per backend.
pub trait Transport: Send + Sync {
    /// Total number of ranks in the job (across all processes).
    fn world_size(&self) -> usize;

    /// Short backend identifier ("inproc", "socket") for diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Delivers one envelope to `dst_world`'s mailbox, applying the
    /// eager/rendezvous split at `eager_limit` bytes for local
    /// destinations.
    fn deliver(&self, dst_world: usize, env: Envelope, eager_limit: usize) -> Result<Delivery>;

    /// The mailbox of `world_rank` when it is hosted in this process.
    fn local_mailbox(&self, world_rank: usize) -> Option<&Arc<Mailbox>>;

    /// True while `world_rank`'s entry point is still running.
    fn rank_alive(&self, world_rank: usize) -> bool;

    /// Marks a (local) rank's entry point as returned and propagates the
    /// fact to every process, *after* all the rank's sends.
    fn mark_rank_done(&self, world_rank: usize);

    /// Wakes every blocked rank in the whole job with
    /// [`crate::RtError::Shutdown`] (job teardown after a failure).
    fn shutdown_all(&self);

    /// Called once per process after all locally hosted ranks have been
    /// joined: drain and close cross-process connections. In-process
    /// backends have nothing to do.
    fn finalize_local(&self) {}
}

/// The original single-process backend: every rank is a thread in this
/// address space, one [`Mailbox`] and one liveness flag per rank.
pub struct InProc {
    mailboxes: Vec<Arc<Mailbox>>,
    /// One liveness flag per rank, cleared when the rank's entry returns
    /// (normally or by panic). Stream readers use this to distinguish
    /// "no data yet" from "the writer is gone".
    alive: Vec<AtomicBool>,
}

impl InProc {
    /// Builds the backend for a world of `total` ranks.
    pub fn new(total: usize) -> Self {
        InProc {
            mailboxes: (0..total).map(|_| Arc::new(Mailbox::default())).collect(),
            alive: (0..total).map(|_| AtomicBool::new(true)).collect(),
        }
    }
}

impl Transport for InProc {
    fn world_size(&self) -> usize {
        self.mailboxes.len()
    }

    fn backend_name(&self) -> &'static str {
        "inproc"
    }

    fn deliver(&self, dst_world: usize, env: Envelope, eager_limit: usize) -> Result<Delivery> {
        self.mailboxes[dst_world].deliver(env, eager_limit)
    }

    fn local_mailbox(&self, world_rank: usize) -> Option<&Arc<Mailbox>> {
        self.mailboxes.get(world_rank)
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        self.alive[world_rank].load(Ordering::Acquire)
    }

    fn mark_rank_done(&self, world_rank: usize) {
        self.alive[world_rank].store(false, Ordering::Release);
    }

    fn shutdown_all(&self) {
        for mb in &self.mailboxes {
            mb.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;
    use crate::envelope::{Context, Src, TagSel};
    use crate::mailbox::make_envelope;
    use bytes::Bytes;

    #[test]
    fn inproc_hosts_every_mailbox() {
        let t = InProc::new(3);
        assert_eq!(t.world_size(), 3);
        assert_eq!(t.backend_name(), "inproc");
        for r in 0..3 {
            assert!(t.local_mailbox(r).is_some());
            assert!(t.rank_alive(r));
        }
        assert!(t.local_mailbox(3).is_none());
    }

    #[test]
    fn inproc_deliver_reaches_the_destination_mailbox() {
        let t = InProc::new(2);
        let env = make_envelope(
            Context::Pt2pt,
            CommId(1),
            0,
            0,
            7,
            Bytes::from_static(b"hi"),
        );
        assert!(matches!(t.deliver(1, env, 64), Ok(Delivery::Complete)));
        let got = t
            .local_mailbox(1)
            .and_then(|mb| {
                mb.try_take(Context::Pt2pt, CommId(1), Src::Any, TagSel::Any)
                    .ok()
                    .flatten()
            })
            .map(|e| e.payload);
        assert_eq!(got.as_deref(), Some(&b"hi"[..]));
    }

    #[test]
    fn inproc_liveness_and_shutdown() {
        let t = InProc::new(2);
        t.mark_rank_done(0);
        assert!(!t.rank_alive(0));
        assert!(t.rank_alive(1));
        t.shutdown_all();
        let err = t
            .local_mailbox(1)
            .map(|mb| mb.try_take(Context::Pt2pt, CommId(1), Src::Any, TagSel::Any));
        assert!(matches!(err, Some(Err(crate::RtError::Shutdown))));
    }
}
