//! Per-rank MPI handle: point-to-point operations and communicator
//! management.
//!
//! One [`Mpi`] value is handed to every rank's entry point by the
//! [`crate::Launcher`]. All user-facing operations run in the
//! [`Context::Pt2pt`] plane; the `*_ctx` variants expose the
//! [`Context::Coll`] and [`Context::Stream`] planes to the collective
//! implementations and to the VMPI stream layer.

use crate::comm::Comm;
use crate::envelope::{Context, Src, Status, TagSel};
use crate::launch::{PartitionInfo, Universe};
use crate::mailbox::{make_envelope, Delivery};
use crate::pod::{self, Pod};
use crate::request::Request;
use crate::{Result, RtError};
use bytes::Bytes;
use std::sync::Arc;

/// A rank's handle onto the runtime.
#[derive(Clone)]
pub struct Mpi {
    uni: Arc<Universe>,
    world_rank: usize,
    world: Comm,
    partition: usize,
}

impl Mpi {
    pub(crate) fn new(
        uni: Arc<Universe>,
        world_rank: usize,
        world: Comm,
        partition: usize,
    ) -> Self {
        Mpi {
            uni,
            world_rank,
            world,
            partition,
        }
    }

    /// The world communicator spanning every rank of the job
    /// (the paper's `MPI_COMM_UNIVERSE` once virtualization is active).
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// This rank's world rank.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Total number of ranks in the job.
    pub fn world_size(&self) -> usize {
        self.uni.world_size()
    }

    /// Shared universe (partition table, clock).
    pub fn universe(&self) -> &Arc<Universe> {
        &self.uni
    }

    /// All partition descriptions.
    pub fn partitions(&self) -> &[PartitionInfo] {
        self.uni.partitions()
    }

    /// The partition this rank belongs to.
    pub fn my_partition(&self) -> &PartitionInfo {
        &self.uni.partitions()[self.partition]
    }

    /// This rank's rank within its partition.
    pub fn partition_rank(&self) -> usize {
        self.world_rank - self.my_partition().first_world_rank
    }

    /// Seconds since job start (`MPI_Wtime`).
    pub fn wtime(&self) -> f64 {
        self.uni.wtime()
    }

    /// Nanoseconds since job start.
    pub fn wtime_ns(&self) -> u64 {
        self.uni.wtime_ns()
    }

    fn dst_world(&self, comm: &Comm, dst: usize) -> Result<usize> {
        comm.world_of(dst).ok_or(RtError::InvalidRank {
            rank: dst,
            comm_size: comm.size(),
        })
    }

    /// Hands an envelope to the transport, routing stream-plane traffic
    /// through the fault layer when one is installed. Fault evaluation
    /// happens *above* the transport so every backend shares the same
    /// injection semantics unchanged. Returns the delivery state of the
    /// last envelope actually delivered (injected duplicates and reorder
    /// flushes ride along fire-and-forget).
    fn deliver_env(&self, dst_world: usize, env: crate::envelope::Envelope) -> Result<Delivery> {
        let transport = self.uni.transport();
        if env.header.ctx == Context::Stream {
            if let Some(layer) = self.uni.fault_layer() {
                let inj = layer.on_send(self.world_rank, dst_world, env);
                if let Some(d) = inj.sleep {
                    std::thread::sleep(d);
                }
                let mut last = Delivery::Complete;
                for e in inj.deliver {
                    last = transport.deliver(dst_world, e, self.uni.eager_limit())?;
                }
                if inj.dropped {
                    return Err(RtError::Dropped { dst: dst_world });
                }
                return Ok(last);
            }
        }
        transport.deliver(dst_world, env, self.uni.eager_limit())
    }

    // ------------------------------------------------------------------
    // Context-explicit plane (used by collectives and the stream layer).
    // ------------------------------------------------------------------

    /// Blocking send in an explicit context plane.
    pub fn send_ctx(
        &self,
        ctx: Context,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: impl Into<Bytes>,
    ) -> Result<()> {
        let dst_world = self.dst_world(comm, dst)?;
        let env = make_envelope(
            ctx,
            comm.id(),
            comm.local_rank(),
            self.world_rank,
            tag,
            payload.into(),
        );
        match self.deliver_env(dst_world, env)? {
            Delivery::Complete => Ok(()),
            // A pending (rendezvous) delivery only arises for a local
            // destination, so the mailbox lookup cannot fail here.
            Delivery::Pending(handle) => self.uni.local_mailbox(dst_world)?.wait_send(&handle),
        }
    }

    /// Non-blocking send in an explicit context plane.
    pub fn isend_ctx(
        &self,
        ctx: Context,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: impl Into<Bytes>,
    ) -> Result<Request> {
        let dst_world = self.dst_world(comm, dst)?;
        let env = make_envelope(
            ctx,
            comm.id(),
            comm.local_rank(),
            self.world_rank,
            tag,
            payload.into(),
        );
        match self.deliver_env(dst_world, env)? {
            Delivery::Complete => Ok(Request::send_done()),
            Delivery::Pending(handle) => Ok(Request::pending_send(
                Arc::clone(self.uni.local_mailbox(dst_world)?),
                handle,
            )),
        }
    }

    /// Blocking receive in an explicit context plane.
    pub fn recv_ctx(
        &self,
        ctx: Context,
        comm: &Comm,
        src: Src,
        tag: TagSel,
    ) -> Result<(Status, Bytes)> {
        let env =
            self.uni
                .local_mailbox(self.world_rank)?
                .recv_blocking(ctx, comm.id(), src, tag)?;
        Ok((env.status(), env.payload))
    }

    /// Non-blocking receive in an explicit context plane.
    pub fn irecv_ctx(&self, ctx: Context, comm: &Comm, src: Src, tag: TagSel) -> Result<Request> {
        let mailbox = Arc::clone(self.uni.local_mailbox(self.world_rank)?);
        let slot = mailbox.post_recv(ctx, comm.id(), src, tag)?;
        Ok(Request::pending_recv(mailbox, slot))
    }

    /// Non-destructive check for a matching unexpected message.
    pub fn iprobe_ctx(&self, ctx: Context, comm: &Comm, src: Src, tag: TagSel) -> Option<Status> {
        self.uni
            .local_mailbox(self.world_rank)
            .ok()?
            .probe(ctx, comm.id(), src, tag)
    }

    // ------------------------------------------------------------------
    // User point-to-point plane.
    // ------------------------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`).
    pub fn send(&self, comm: &Comm, dst: usize, tag: i32, payload: impl Into<Bytes>) -> Result<()> {
        self.send_ctx(Context::Pt2pt, comm, dst, tag, payload)
    }

    /// Non-blocking send (`MPI_Isend`).
    pub fn isend(
        &self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: impl Into<Bytes>,
    ) -> Result<Request> {
        self.isend_ctx(Context::Pt2pt, comm, dst, tag, payload)
    }

    /// Blocking receive (`MPI_Recv`).
    pub fn recv(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<(Status, Bytes)> {
        self.recv_ctx(Context::Pt2pt, comm, src, tag)
    }

    /// Non-blocking receive (`MPI_Irecv`).
    pub fn irecv(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<Request> {
        self.irecv_ctx(Context::Pt2pt, comm, src, tag)
    }

    /// Non-blocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, comm: &Comm, src: Src, tag: TagSel) -> Option<Status> {
        self.iprobe_ctx(Context::Pt2pt, comm, src, tag)
    }

    /// Combined send+receive (`MPI_Sendrecv`), deadlock-free.
    pub fn sendrecv(
        &self,
        comm: &Comm,
        dst: usize,
        send_tag: i32,
        payload: impl Into<Bytes>,
        src: Src,
        recv_tag: TagSel,
    ) -> Result<(Status, Bytes)> {
        let sreq = self.isend(comm, dst, send_tag, payload)?;
        let got = self.recv(comm, src, recv_tag)?;
        sreq.wait()?;
        Ok(got)
    }

    /// Typed blocking send of a POD slice.
    pub fn send_t<T: Pod>(&self, comm: &Comm, dst: usize, tag: i32, data: &[T]) -> Result<()> {
        self.send(comm, dst, tag, pod::bytes_of_slice(data))
    }

    /// Typed blocking receive of a POD slice.
    pub fn recv_t<T: Pod>(&self, comm: &Comm, src: Src, tag: TagSel) -> Result<(Status, Vec<T>)> {
        let (st, data) = self.recv(comm, src, tag)?;
        let v = pod::vec_from_bytes::<T>(&data).ok_or(RtError::TypeSize {
            got: data.len(),
            elem: std::mem::size_of::<T>(),
        })?;
        Ok((st, v))
    }

    // ------------------------------------------------------------------
    // Communicator management.
    // ------------------------------------------------------------------

    /// Collective: splits `comm` by color, ordering members by `(key, rank)`
    /// (`MPI_Comm_split`). A negative color yields `None` (undefined).
    pub fn comm_split(&self, comm: &Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        // Allgather (color, key) over the parent communicator.
        let triples: Vec<[i64; 3]> =
            crate::collectives::allgather_t(self, comm, &[[color, key, comm.local_rank() as i64]])?
                .into_iter()
                .flatten()
                .collect();

        // Every rank advances the derive sequence exactly once per split so
        // later splits get fresh ids on all members.
        let id = comm.next_derived_id(if color < 0 { u64::MAX } else { color as u64 });
        if color < 0 {
            return Ok(None);
        }
        let mut group: Vec<[i64; 3]> = triples.into_iter().filter(|t| t[0] == color).collect();
        group.sort_by_key(|t| (t[1], t[2]));
        let mut members = Vec::with_capacity(group.len());
        for t in &group {
            members.push(
                comm.world_of(t[2] as usize)
                    .ok_or(RtError::CollectiveMismatch(
                        "split member outside parent communicator",
                    ))?,
            );
        }
        let my_local = group
            .iter()
            .position(|t| t[2] as usize == comm.local_rank())
            .ok_or(RtError::CollectiveMismatch(
                "split caller missing from its own color group",
            ))?;
        Ok(Some(Comm::with_members(id, Arc::new(members), my_local)))
    }

    /// Collective: duplicates a communicator (`MPI_Comm_dup`).
    pub fn comm_dup(&self, comm: &Comm) -> Result<Comm> {
        // Synchronize so that all members derive the id at the same point in
        // their collective sequences.
        crate::collectives::barrier(self, comm)?;
        let id = comm.next_derived_id(u64::MAX - 1);
        Ok(Comm::with_members(
            id,
            Arc::new(comm.members().to_vec()),
            comm.local_rank(),
        ))
    }

    /// Builds a communicator from an explicit list of world ranks.
    ///
    /// Must be called collectively (same list) by exactly the listed ranks;
    /// `seed` disambiguates independent groups created concurrently.
    pub fn comm_from_world_ranks(&self, members: Vec<usize>, seed: u64) -> Result<Comm> {
        let my_local =
            members
                .iter()
                .position(|&w| w == self.world_rank)
                .ok_or(RtError::InvalidRank {
                    rank: self.world_rank,
                    comm_size: members.len(),
                })?;
        let mut h = seed ^ 0xA5A5_5A5A_DEAD_0001;
        for &m in &members {
            h = h
                .rotate_left(7)
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(m as u64 + 1);
        }
        Ok(Comm::with_members(
            crate::comm::CommId(h | 0x8000_0000_0000_0000),
            Arc::new(members),
            my_local,
        ))
    }

    // ------------------------------------------------------------------
    // Collectives (delegating to `crate::collectives`).
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&self, comm: &Comm) -> Result<()> {
        crate::collectives::barrier(self, comm)
    }

    /// `MPI_Bcast`: root passes `Some(data)`, all ranks get the payload.
    pub fn bcast(&self, comm: &Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        crate::collectives::bcast(self, comm, root, data)
    }

    /// Typed `MPI_Reduce`; `Some(result)` at root.
    pub fn reduce_t<T: Pod>(
        &self,
        comm: &Comm,
        root: usize,
        local: &[T],
        op: impl Fn(&mut T, T),
    ) -> Result<Option<Vec<T>>> {
        crate::collectives::reduce_t(self, comm, root, local, op)
    }

    /// Typed `MPI_Allreduce`.
    pub fn allreduce_t<T: Pod>(
        &self,
        comm: &Comm,
        local: &[T],
        op: impl Fn(&mut T, T),
    ) -> Result<Vec<T>> {
        crate::collectives::allreduce_t(self, comm, local, op)
    }

    /// `MPI_Gather` of byte payloads; `Some(parts)` at root.
    pub fn gather(&self, comm: &Comm, root: usize, local: Bytes) -> Result<Option<Vec<Bytes>>> {
        crate::collectives::gather(self, comm, root, local)
    }

    /// `MPI_Allgather` of byte payloads.
    pub fn allgather(&self, comm: &Comm, local: Bytes) -> Result<Vec<Bytes>> {
        crate::collectives::allgather(self, comm, local)
    }

    /// Typed `MPI_Allgather`.
    pub fn allgather_t<T: Pod>(&self, comm: &Comm, local: &[T]) -> Result<Vec<Vec<T>>> {
        crate::collectives::allgather_t(self, comm, local)
    }

    /// `MPI_Scatter`; root passes one payload per rank.
    pub fn scatter(&self, comm: &Comm, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes> {
        crate::collectives::scatter(self, comm, root, parts)
    }

    /// `MPI_Alltoall` of byte payloads (one per destination rank).
    pub fn alltoall(&self, comm: &Comm, parts: Vec<Bytes>) -> Result<Vec<Bytes>> {
        crate::collectives::alltoall(self, comm, parts)
    }
}
