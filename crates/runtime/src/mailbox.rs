//! Per-rank mailboxes: the matching engine of the runtime.
//!
//! Each rank owns one [`Mailbox`]. Senders push into the destination's
//! mailbox; the owning rank consumes from it. Two queues implement MPI
//! semantics:
//!
//! * `offers` — messages that arrived before a matching receive
//!   ("unexpected" messages in MPI parlance). Eager messages park here
//!   complete; rendezvous messages park here with a completion handle the
//!   sender blocks on, which is what gives large transfers real
//!   back-pressure.
//! * `posted` — receives posted before a matching message arrived. The
//!   sender completes them directly at delivery time.
//!
//! Both queues are scanned in FIFO order, preserving MPI's non-overtaking
//! guarantee for identical `(source, tag, communicator)` triples. All waits
//! go through the mailbox's condition variable; receivers wait on their own
//! mailbox, rendezvous senders wait on the destination's.

use crate::comm::CommId;
use crate::envelope::{Context, Envelope, Src, Status, TagSel};
use crate::RtError;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// Mailbox pressure metrics: recorded per delivery under the mailbox lock
// we already hold, so the extra cost is two relaxed fetch_adds.
mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct MailboxMetrics {
        pub delivered: Arc<Counter>,
        pub unexpected: Arc<Counter>,
        pub depth: Arc<Histogram>,
    }

    pub(super) fn m() -> &'static MailboxMetrics {
        static M: OnceLock<MailboxMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            MailboxMetrics {
                delivered: r.counter("runtime_envelopes_delivered_total"),
                unexpected: r.counter("runtime_envelopes_unexpected_total"),
                depth: r.histogram("runtime_mailbox_depth"),
            }
        })
    }
}

/// Completion flag a rendezvous sender blocks on.
#[derive(Debug, Default)]
pub struct SendHandle {
    done: AtomicBool,
}

impl SendHandle {
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
    fn complete(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Slot a posted receive is completed into.
#[derive(Debug, Default)]
pub struct RecvSlot {
    filled: Mutex<Option<Envelope>>,
}

impl RecvSlot {
    /// Takes the delivered envelope, if any.
    pub fn take(&self) -> Option<Envelope> {
        self.filled.lock().take()
    }
    /// True once a message has been delivered (without consuming it).
    pub fn is_filled(&self) -> bool {
        self.filled.lock().is_some()
    }
    fn fill(&self, env: Envelope) {
        let mut g = self.filled.lock();
        debug_assert!(g.is_none(), "recv slot filled twice");
        *g = Some(env);
    }
}

struct Offer {
    env: Envelope,
    /// `Some` for rendezvous messages: completed when a receive takes it.
    done: Option<Arc<SendHandle>>,
}

struct Posted {
    ctx: Context,
    comm: CommId,
    src: Src,
    tag: TagSel,
    slot: Arc<RecvSlot>,
}

#[derive(Default)]
struct Inner {
    offers: VecDeque<Offer>,
    posted: VecDeque<Posted>,
    shutdown: bool,
}

/// One rank's incoming-message state.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        }
    }
}

/// Outcome of [`Mailbox::deliver`].
pub enum Delivery {
    /// Message handed to a posted receive or parked eagerly: sender is done.
    Complete,
    /// Rendezvous message parked; sender must wait on the handle.
    Pending(Arc<SendHandle>),
}

impl Mailbox {
    /// Delivers a message into this mailbox, applying the eager/rendezvous
    /// protocol split at `eager_limit` bytes.
    pub fn deliver(&self, env: Envelope, eager_limit: usize) -> Result<Delivery, RtError> {
        let mut g = self.inner.lock();
        if g.shutdown {
            return Err(RtError::Shutdown);
        }
        let m = obs::m();
        m.delivered.inc();
        m.depth.record(g.offers.len() as u64);
        // Posted receives are matched in posting order.
        let pos = g
            .posted
            .iter()
            .position(|p| env.matches(p.ctx, p.comm, p.src, p.tag));
        if let Some(posted) = pos.and_then(|p| g.posted.remove(p)) {
            posted.slot.fill(env);
            self.cv.notify_all();
            return Ok(Delivery::Complete);
        }
        m.unexpected.inc();
        if env.payload.len() <= eager_limit {
            g.offers.push_back(Offer { env, done: None });
            self.cv.notify_all();
            Ok(Delivery::Complete)
        } else {
            let handle = Arc::new(SendHandle::default());
            g.offers.push_back(Offer {
                env,
                done: Some(Arc::clone(&handle)),
            });
            self.cv.notify_all();
            Ok(Delivery::Pending(handle))
        }
    }

    /// Blocks the (rendezvous) sender until its offer has been taken.
    pub fn wait_send(&self, handle: &SendHandle) -> Result<(), RtError> {
        let mut g = self.inner.lock();
        loop {
            if handle.is_done() {
                return Ok(());
            }
            if g.shutdown {
                return Err(RtError::Shutdown);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Non-destructive scan for a matching unexpected message.
    pub fn probe(&self, ctx: Context, comm: CommId, src: Src, tag: TagSel) -> Option<Status> {
        let g = self.inner.lock();
        g.offers
            .iter()
            .find(|o| o.env.matches(ctx, comm, src, tag))
            .map(|o| o.env.status())
    }

    /// Takes the first matching unexpected message, if any, completing the
    /// sender when it was a rendezvous offer.
    pub fn try_take(
        &self,
        ctx: Context,
        comm: CommId,
        src: Src,
        tag: TagSel,
    ) -> Result<Option<Envelope>, RtError> {
        let mut g = self.inner.lock();
        if g.shutdown {
            return Err(RtError::Shutdown);
        }
        Ok(Self::take_locked(&mut g, &self.cv, ctx, comm, src, tag))
    }

    fn take_locked(
        g: &mut Inner,
        cv: &Condvar,
        ctx: Context,
        comm: CommId,
        src: Src,
        tag: TagSel,
    ) -> Option<Envelope> {
        let pos = g
            .offers
            .iter()
            .position(|o| o.env.matches(ctx, comm, src, tag))?;
        let offer = g.offers.remove(pos)?;
        if let Some(done) = offer.done {
            done.complete();
            // Wake the rendezvous sender parked on this mailbox.
            cv.notify_all();
        }
        Some(offer.env)
    }

    /// Blocking receive: takes a matching unexpected message or posts a
    /// receive and waits for delivery.
    pub fn recv_blocking(
        &self,
        ctx: Context,
        comm: CommId,
        src: Src,
        tag: TagSel,
    ) -> Result<Envelope, RtError> {
        let mut g = self.inner.lock();
        if g.shutdown {
            return Err(RtError::Shutdown);
        }
        if let Some(env) = Self::take_locked(&mut g, &self.cv, ctx, comm, src, tag) {
            return Ok(env);
        }
        let slot = Arc::new(RecvSlot::default());
        g.posted.push_back(Posted {
            ctx,
            comm,
            src,
            tag,
            slot: Arc::clone(&slot),
        });
        loop {
            self.cv.wait(&mut g);
            if let Some(env) = slot.take() {
                return Ok(env);
            }
            if g.shutdown {
                return Err(RtError::Shutdown);
            }
        }
    }

    /// Posts a non-blocking receive. Returns the slot it will complete into;
    /// if an unexpected message already matches, the slot is pre-filled.
    pub fn post_recv(
        &self,
        ctx: Context,
        comm: CommId,
        src: Src,
        tag: TagSel,
    ) -> Result<Arc<RecvSlot>, RtError> {
        let mut g = self.inner.lock();
        if g.shutdown {
            return Err(RtError::Shutdown);
        }
        let slot = Arc::new(RecvSlot::default());
        if let Some(env) = Self::take_locked(&mut g, &self.cv, ctx, comm, src, tag) {
            slot.fill(env);
            return Ok(slot);
        }
        g.posted.push_back(Posted {
            ctx,
            comm,
            src,
            tag,
            slot: Arc::clone(&slot),
        });
        Ok(slot)
    }

    /// Blocks until a posted receive completes.
    pub fn wait_recv(&self, slot: &RecvSlot) -> Result<Envelope, RtError> {
        let mut g = self.inner.lock();
        loop {
            if let Some(env) = slot.take() {
                return Ok(env);
            }
            if g.shutdown {
                return Err(RtError::Shutdown);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Marks the mailbox as shut down and wakes every waiter.
    pub fn shutdown(&self) {
        let mut g = self.inner.lock();
        g.shutdown = true;
        self.cv.notify_all();
    }

    /// Number of unexpected messages currently parked (diagnostics).
    pub fn backlog(&self) -> usize {
        self.inner.lock().offers.len()
    }
}

/// Convenience constructor for envelopes (used by `Mpi` and tests).
pub fn make_envelope(
    ctx: Context,
    comm: CommId,
    src_local: usize,
    src_world: usize,
    tag: i32,
    payload: Bytes,
) -> Envelope {
    Envelope {
        header: crate::envelope::EnvelopeHeader {
            ctx,
            comm,
            src_local,
            src_world,
            tag,
        },
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;

    const C: CommId = CommId(7);

    fn env(src: usize, tag: i32, len: usize) -> Envelope {
        make_envelope(
            Context::Pt2pt,
            C,
            src,
            src,
            tag,
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn eager_then_take() {
        let mb = Mailbox::default();
        assert!(matches!(
            mb.deliver(env(0, 1, 8), 64).unwrap(),
            Delivery::Complete
        ));
        let got = mb
            .try_take(Context::Pt2pt, C, Src::Rank(0), TagSel::Tag(1))
            .unwrap()
            .unwrap();
        assert_eq!(got.payload.len(), 8);
    }

    #[test]
    fn rendezvous_completes_on_take() {
        let mb = Mailbox::default();
        let Delivery::Pending(h) = mb.deliver(env(0, 1, 128), 64).unwrap() else {
            panic!("expected rendezvous");
        };
        assert!(!h.is_done());
        mb.try_take(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap()
            .unwrap();
        assert!(h.is_done());
    }

    #[test]
    fn posted_recv_matched_at_delivery() {
        let mb = Mailbox::default();
        let slot = mb
            .post_recv(Context::Pt2pt, C, Src::Rank(3), TagSel::Tag(9))
            .unwrap();
        assert!(!slot.is_filled());
        mb.deliver(env(3, 9, 4), 64).unwrap();
        assert!(slot.is_filled());
        assert_eq!(slot.take().unwrap().payload.len(), 4);
    }

    #[test]
    fn fifo_order_same_triple() {
        let mb = Mailbox::default();
        for i in 0..4 {
            mb.deliver(env(0, 5, i + 1), 1024).unwrap();
        }
        for i in 0..4 {
            let e = mb
                .try_take(Context::Pt2pt, C, Src::Rank(0), TagSel::Tag(5))
                .unwrap()
                .unwrap();
            assert_eq!(e.payload.len(), i + 1, "non-overtaking order violated");
        }
    }

    #[test]
    fn posted_order_respected() {
        let mb = Mailbox::default();
        let first = mb
            .post_recv(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap();
        let second = mb
            .post_recv(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap();
        mb.deliver(env(1, 1, 10), 64).unwrap();
        assert!(first.is_filled());
        assert!(!second.is_filled());
    }

    #[test]
    fn probe_sees_without_consuming() {
        let mb = Mailbox::default();
        mb.deliver(env(2, 3, 6), 64).unwrap();
        let st = mb.probe(Context::Pt2pt, C, Src::Any, TagSel::Any).unwrap();
        assert_eq!(st.source, 2);
        assert_eq!(st.bytes, 6);
        assert!(mb
            .try_take(Context::Pt2pt, C, Src::Rank(2), TagSel::Tag(3))
            .unwrap()
            .is_some());
    }

    #[test]
    fn contexts_are_isolated() {
        let mb = Mailbox::default();
        let coll = make_envelope(Context::Coll, C, 0, 0, 1, Bytes::new());
        mb.deliver(coll, 64).unwrap();
        assert!(mb
            .try_take(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap()
            .is_none());
        assert!(mb
            .try_take(Context::Coll, C, Src::Any, TagSel::Any)
            .unwrap()
            .is_some());
    }

    #[test]
    fn shutdown_wakes_and_errors() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t =
            std::thread::spawn(move || mb2.recv_blocking(Context::Pt2pt, C, Src::Any, TagSel::Any));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.shutdown();
        assert_eq!(t.join().unwrap().unwrap_err(), RtError::Shutdown);
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            mb2.recv_blocking(Context::Pt2pt, C, Src::Any, TagSel::Any)
                .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.deliver(env(1, 2, 3), 64).unwrap();
        assert_eq!(t.join().unwrap().payload.len(), 3);
    }
}
