//! Collective operations implemented over point-to-point messaging.
//!
//! Every collective draws one tag from the communicator's private collective
//! sequence (`Comm::next_coll_tag`) and runs in the [`Context::Coll`]
//! plane, so user point-to-point traffic can never interfere. Algorithms are
//! the textbook ones (dissemination barrier, binomial broadcast/reduction,
//! rotation all-to-all): at in-process scale correctness and log-depth matter
//! more than topology awareness.

use crate::comm::Comm;
use crate::envelope::{Context, Src, TagSel};
use crate::mpi::Mpi;
use crate::pod::{self, Pod};
use crate::request::wait_all;
use crate::{Result, RtError};
use bytes::{BufMut, Bytes, BytesMut};

/// Reduction helpers for the typed collectives.
pub mod ops {
    /// Elementwise sum.
    pub fn sum<T: Copy + std::ops::Add<Output = T>>(acc: &mut T, x: T) {
        *acc = *acc + x;
    }
    /// Elementwise minimum (total order via `partial_cmp`, NaN-latest).
    pub fn min<T: Copy + PartialOrd>(acc: &mut T, x: T) {
        if x < *acc {
            *acc = x;
        }
    }
    /// Elementwise maximum.
    pub fn max<T: Copy + PartialOrd>(acc: &mut T, x: T) {
        if x > *acc {
            *acc = x;
        }
    }
}

/// Dissemination barrier (`ceil(log2 n)` rounds).
pub fn barrier(mpi: &Mpi, comm: &Comm) -> Result<()> {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    if n == 1 {
        return Ok(());
    }
    let r = comm.local_rank();
    let mut step = 1usize;
    while step < n {
        let dst = (r + step) % n;
        let src = (r + n - step % n) % n;
        let sreq = mpi.isend_ctx(Context::Coll, comm, dst, tag, Bytes::new())?;
        mpi.recv_ctx(Context::Coll, comm, Src::Rank(src), TagSel::Tag(tag))?;
        sreq.wait()?;
        step <<= 1;
    }
    Ok(())
}

/// Binomial-tree broadcast. Root passes `Some(payload)`.
pub fn bcast(mpi: &Mpi, comm: &Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
    let n = comm.size();
    if root >= n {
        return Err(RtError::InvalidRank {
            rank: root,
            comm_size: n,
        });
    }
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    let vr = (r + n - root) % n;

    let mut payload = if vr == 0 {
        data.ok_or(RtError::CollectiveMismatch("bcast root passed no data"))?
    } else {
        Bytes::new()
    };

    // Receive phase: find the mask at which we receive from our parent.
    let mut mask = 1usize;
    while mask < n {
        if vr & mask != 0 {
            let parent = ((vr - mask) + root) % n;
            let (_st, got) =
                mpi.recv_ctx(Context::Coll, comm, Src::Rank(parent), TagSel::Tag(tag))?;
            payload = got;
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children below our mask.
    mask >>= 1;
    let mut reqs = Vec::new();
    while mask > 0 {
        if vr + mask < n {
            let child = ((vr + mask) + root) % n;
            reqs.push(mpi.isend_ctx(Context::Coll, comm, child, tag, payload.clone())?);
        }
        mask >>= 1;
    }
    wait_all(reqs)?;
    Ok(payload)
}

/// Binomial-tree reduction of a POD slice with a commutative operator.
/// Returns `Some(result)` at root, `None` elsewhere.
pub fn reduce_t<T: Pod>(
    mpi: &Mpi,
    comm: &Comm,
    root: usize,
    local: &[T],
    op: impl Fn(&mut T, T),
) -> Result<Option<Vec<T>>> {
    let n = comm.size();
    if root >= n {
        return Err(RtError::InvalidRank {
            rank: root,
            comm_size: n,
        });
    }
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    let vr = (r + n - root) % n;
    let mut acc = local.to_vec();

    let mut mask = 1usize;
    while mask < n {
        if vr & mask == 0 {
            let src_v = vr | mask;
            if src_v < n {
                let src = (src_v + root) % n;
                let (_st, data) =
                    mpi.recv_ctx(Context::Coll, comm, Src::Rank(src), TagSel::Tag(tag))?;
                let partial = pod::vec_from_bytes::<T>(&data).ok_or(RtError::TypeSize {
                    got: data.len(),
                    elem: std::mem::size_of::<T>(),
                })?;
                if partial.len() != acc.len() {
                    return Err(RtError::CollectiveMismatch("reduce length mismatch"));
                }
                for (a, x) in acc.iter_mut().zip(partial) {
                    op(a, x);
                }
            }
        } else {
            let dst = ((vr & !mask) + root) % n;
            mpi.send_ctx(Context::Coll, comm, dst, tag, pod::bytes_of_slice(&acc))?;
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Reduce-then-broadcast allreduce.
pub fn allreduce_t<T: Pod>(
    mpi: &Mpi,
    comm: &Comm,
    local: &[T],
    op: impl Fn(&mut T, T),
) -> Result<Vec<T>> {
    let reduced = reduce_t(mpi, comm, 0, local, op)?;
    let payload = bcast(mpi, comm, 0, reduced.map(|v| pod::bytes_of_slice(&v)))?;
    pod::vec_from_bytes::<T>(&payload).ok_or(RtError::TypeSize {
        got: payload.len(),
        elem: std::mem::size_of::<T>(),
    })
}

/// Linear gather to root. Returns `Some(parts)` (comm-rank order) at root.
pub fn gather(mpi: &Mpi, comm: &Comm, root: usize, local: Bytes) -> Result<Option<Vec<Bytes>>> {
    let n = comm.size();
    if root >= n {
        return Err(RtError::InvalidRank {
            rank: root,
            comm_size: n,
        });
    }
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    if r == root {
        let mut parts: Vec<Bytes> = vec![Bytes::new(); n];
        parts[root] = local;
        // Post all receives up front so senders can complete in any order.
        let mut reqs = Vec::new();
        for src in (0..n).filter(|&s| s != root) {
            reqs.push((
                src,
                mpi.irecv_ctx(Context::Coll, comm, Src::Rank(src), TagSel::Tag(tag))?,
            ));
        }
        for (src, req) in reqs {
            let (_st, data) = req.wait()?.ok_or(RtError::Protocol(
                "gather receive completed without payload",
            ))?;
            parts[src] = data;
        }
        Ok(Some(parts))
    } else {
        mpi.send_ctx(Context::Coll, comm, root, tag, local)?;
        Ok(None)
    }
}

fn pack_parts(parts: &[Bytes]) -> Bytes {
    let total: usize = parts.iter().map(|p| p.len() + 8).sum();
    let mut buf = BytesMut::with_capacity(total + 8);
    buf.put_u64_le(parts.len() as u64);
    for p in parts {
        buf.put_u64_le(p.len() as u64);
        buf.put_slice(p);
    }
    buf.freeze()
}

fn unpack_parts(mut data: Bytes) -> Result<Vec<Bytes>> {
    use bytes::Buf;
    if data.len() < 8 {
        return Err(RtError::CollectiveMismatch("packed parts truncated"));
    }
    let n = data.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if data.len() < 8 {
            return Err(RtError::CollectiveMismatch("packed parts truncated"));
        }
        let len = data.get_u64_le() as usize;
        if data.len() < len {
            return Err(RtError::CollectiveMismatch("packed parts truncated"));
        }
        out.push(data.split_to(len));
    }
    Ok(out)
}

/// Gather-to-0 + broadcast allgather (parts in comm-rank order).
pub fn allgather(mpi: &Mpi, comm: &Comm, local: Bytes) -> Result<Vec<Bytes>> {
    let gathered = gather(mpi, comm, 0, local)?;
    let packed = bcast(mpi, comm, 0, gathered.map(|p| pack_parts(&p)))?;
    unpack_parts(packed)
}

/// Typed allgather of POD slices.
pub fn allgather_t<T: Pod>(mpi: &Mpi, comm: &Comm, local: &[T]) -> Result<Vec<Vec<T>>> {
    let parts = allgather(mpi, comm, pod::bytes_of_slice(local))?;
    parts
        .into_iter()
        .map(|p| {
            pod::vec_from_bytes::<T>(&p).ok_or(RtError::TypeSize {
                got: p.len(),
                elem: std::mem::size_of::<T>(),
            })
        })
        .collect()
}

/// Linear scatter from root; root passes one payload per rank.
pub fn scatter(mpi: &Mpi, comm: &Comm, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes> {
    let n = comm.size();
    if root >= n {
        return Err(RtError::InvalidRank {
            rank: root,
            comm_size: n,
        });
    }
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    if r == root {
        let parts = parts.ok_or(RtError::CollectiveMismatch("scatter root passed no parts"))?;
        if parts.len() != n {
            return Err(RtError::CollectiveMismatch("scatter parts != comm size"));
        }
        let mut reqs = Vec::new();
        let mut mine = Bytes::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == root {
                mine = part;
            } else {
                reqs.push(mpi.isend_ctx(Context::Coll, comm, dst, tag, part)?);
            }
        }
        wait_all(reqs)?;
        Ok(mine)
    } else {
        let (_st, data) = mpi.recv_ctx(Context::Coll, comm, Src::Rank(root), TagSel::Tag(tag))?;
        Ok(data)
    }
}

/// Inclusive prefix reduction (`MPI_Scan`): rank `r` gets
/// `op(local_0 … local_r)`. Linear chain (log-depth is overkill in
/// process).
pub fn scan_t<T: Pod>(
    mpi: &Mpi,
    comm: &Comm,
    local: &[T],
    op: impl Fn(&mut T, T),
) -> Result<Vec<T>> {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    let mut acc = local.to_vec();
    if r > 0 {
        let (_st, data) = mpi.recv_ctx(Context::Coll, comm, Src::Rank(r - 1), TagSel::Tag(tag))?;
        let prefix = pod::vec_from_bytes::<T>(&data).ok_or(RtError::TypeSize {
            got: data.len(),
            elem: std::mem::size_of::<T>(),
        })?;
        if prefix.len() != acc.len() {
            return Err(RtError::CollectiveMismatch("scan length mismatch"));
        }
        // acc = prefix ⊕ local, preserving operand order.
        let mut combined = prefix;
        for (a, x) in combined.iter_mut().zip(acc.iter()) {
            op(a, *x);
        }
        acc = combined;
    }
    if r + 1 < n {
        mpi.send_ctx(Context::Coll, comm, r + 1, tag, pod::bytes_of_slice(&acc))?;
    }
    Ok(acc)
}

/// Exclusive prefix reduction (`MPI_Exscan`): rank 0 gets `None`, rank `r`
/// gets `op(local_0 … local_{r-1})`.
pub fn exscan_t<T: Pod>(
    mpi: &Mpi,
    comm: &Comm,
    local: &[T],
    op: impl Fn(&mut T, T),
) -> Result<Option<Vec<T>>> {
    let n = comm.size();
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    let incoming = if r > 0 {
        let (_st, data) = mpi.recv_ctx(Context::Coll, comm, Src::Rank(r - 1), TagSel::Tag(tag))?;
        Some(pod::vec_from_bytes::<T>(&data).ok_or(RtError::TypeSize {
            got: data.len(),
            elem: std::mem::size_of::<T>(),
        })?)
    } else {
        None
    };
    if r + 1 < n {
        let mut fwd = incoming.clone().unwrap_or_else(|| local.to_vec());
        if incoming.is_some() {
            for (a, x) in fwd.iter_mut().zip(local.iter()) {
                op(a, *x);
            }
        }
        mpi.send_ctx(Context::Coll, comm, r + 1, tag, pod::bytes_of_slice(&fwd))?;
    }
    Ok(incoming)
}

/// Reduce-then-scatter (`MPI_Reduce_scatter_block`): every rank contributes
/// `n × block` elements and receives the reduction of its own block.
pub fn reduce_scatter_t<T: Pod>(
    mpi: &Mpi,
    comm: &Comm,
    local: &[T],
    op: impl Fn(&mut T, T) + Copy,
) -> Result<Vec<T>> {
    let n = comm.size();
    if !local.len().is_multiple_of(n) {
        return Err(RtError::CollectiveMismatch(
            "reduce_scatter input not divisible by comm size",
        ));
    }
    let block = local.len() / n;
    let reduced = reduce_t(mpi, comm, 0, local, op)?;
    let parts = reduced.map(|v| {
        v.chunks(block)
            .map(pod::bytes_of_slice)
            .collect::<Vec<Bytes>>()
    });
    let mine = scatter(mpi, comm, 0, parts)?;
    pod::vec_from_bytes::<T>(&mine).ok_or(RtError::TypeSize {
        got: mine.len(),
        elem: std::mem::size_of::<T>(),
    })
}

/// Rotation all-to-all: phase `p` exchanges with ranks `±p`.
pub fn alltoall(mpi: &Mpi, comm: &Comm, parts: Vec<Bytes>) -> Result<Vec<Bytes>> {
    let n = comm.size();
    if parts.len() != n {
        return Err(RtError::CollectiveMismatch("alltoall parts != comm size"));
    }
    let tag = comm.next_coll_tag();
    let r = comm.local_rank();
    let mut out: Vec<Bytes> = vec![Bytes::new(); n];
    out[r] = parts[r].clone();
    for phase in 1..n {
        let dst = (r + phase) % n;
        let src = (r + n - phase) % n;
        let sreq = mpi.isend_ctx(Context::Coll, comm, dst, tag, parts[dst].clone())?;
        let (_st, data) = mpi.recv_ctx(Context::Coll, comm, Src::Rank(src), TagSel::Tag(tag))?;
        out[src] = data;
        sreq.wait()?;
    }
    Ok(out)
}
