//! MPMD launcher and the shared [`Universe`].
//!
//! The paper runs instrumented applications *and* the analysis engine inside
//! one MPI job in MPMD mode (`mpirun app1 : app2 : analyzer`). [`Launcher`]
//! reproduces that: each [`Launcher::partition`] call contributes a named
//! group of ranks running one entry point; `run` spawns one thread per rank,
//! hands each a [`crate::Mpi`] handle and joins them all. Partition
//! descriptions are visible from every rank (the paper's
//! `VMPI_Partition_desc`), which is what makes opportunistic partition
//! mapping possible.
//!
//! Envelopes move through a pluggable [`Transport`]: [`Launcher::run`] uses
//! the in-process backend ([`crate::transport::InProc`], ranks are threads
//! of this process), while [`Launcher::run_multiproc`] (see
//! [`crate::socket`]) hosts a *subset* of the ranks here and reaches the
//! rest over Unix-domain or TCP sockets.

use crate::comm::Comm;
use crate::fault::{FaultLayer, FaultPlan};
use crate::mailbox::Mailbox;
use crate::mpi::Mpi;
use crate::transport::{InProc, Transport};
use crate::RtError;
use std::sync::Arc;
use std::time::Instant;

/// Description of one MPMD partition, queryable from every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Dense partition identifier (launch order).
    pub id: usize,
    /// Partition name ("Analyzer", "app", ...). Names need not be unique,
    /// but lookups by name return the first match.
    pub name: String,
    /// Pseudo command line, mirroring the paper's grouping by command line.
    pub cmdline: String,
    /// World rank of this partition's first process.
    pub first_world_rank: usize,
    /// Number of processes in the partition.
    pub size: usize,
}

impl PartitionInfo {
    /// World ranks covered by this partition.
    pub fn world_ranks(&self) -> std::ops::Range<usize> {
        self.first_world_rank..self.first_world_rank + self.size
    }

    /// World rank of this partition's root (its first process).
    pub fn root_world_rank(&self) -> usize {
        self.first_world_rank
    }

    /// World rank of the partition-local rank `local`.
    pub fn world_rank_of(&self, local: usize) -> usize {
        debug_assert!(local < self.size, "local rank {local} out of partition");
        self.first_world_rank + local
    }
}

/// Shared state of a running job: transport, partition table, wall clock.
pub struct Universe {
    transport: Arc<dyn Transport>,
    partitions: Arc<Vec<PartitionInfo>>,
    eager_limit: usize,
    epoch: Instant,
    /// Installed fault-injection layer, if the launcher configured one.
    fault: Option<Arc<FaultLayer>>,
}

impl Universe {
    /// Default eager/rendezvous protocol switch-over, in bytes.
    pub const DEFAULT_EAGER_LIMIT: usize = 64 * 1024;

    pub(crate) fn new(
        partitions: Vec<PartitionInfo>,
        eager_limit: usize,
        fault_plan: Option<FaultPlan>,
    ) -> Arc<Self> {
        let total: usize = partitions.iter().map(|p| p.size).sum();
        Self::with_transport(
            partitions,
            eager_limit,
            fault_plan,
            Arc::new(InProc::new(total)),
        )
    }

    pub(crate) fn with_transport(
        partitions: Vec<PartitionInfo>,
        eager_limit: usize,
        fault_plan: Option<FaultPlan>,
        transport: Arc<dyn Transport>,
    ) -> Arc<Self> {
        let total: usize = partitions.iter().map(|p| p.size).sum();
        debug_assert_eq!(total, transport.world_size());
        Arc::new(Universe {
            transport,
            partitions: Arc::new(partitions),
            eager_limit,
            epoch: Instant::now(),
            fault: fault_plan.map(|p| Arc::new(FaultLayer::new(p, total))),
        })
    }

    /// Total number of ranks in the job.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// The transport backend moving this universe's envelopes.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Short name of the transport backend ("inproc", "socket").
    pub fn backend_name(&self) -> &'static str {
        self.transport.backend_name()
    }

    /// All partition descriptions.
    pub fn partitions(&self) -> &[PartitionInfo] {
        &self.partitions
    }

    /// First partition whose name matches, if any.
    pub fn partition_by_name(&self, name: &str) -> Option<&PartitionInfo> {
        self.partitions.iter().find(|p| p.name == name)
    }

    /// Partition containing a given world rank, if the rank exists.
    pub fn partition_of(&self, world_rank: usize) -> Option<&PartitionInfo> {
        self.partitions
            .iter()
            .find(|p| p.world_ranks().contains(&world_rank))
    }

    /// Mailbox of a rank hosted in this process. Receives and rendezvous
    /// waits are always local; a lookup of a remote rank's mailbox is a
    /// protocol violation surfaced as a typed error by the caller.
    pub(crate) fn local_mailbox(&self, world_rank: usize) -> Result<&Arc<Mailbox>, RtError> {
        self.transport
            .local_mailbox(world_rank)
            .ok_or(RtError::Protocol(
                "rank's mailbox is not hosted in this process",
            ))
    }

    /// The fault-injection layer, when one was installed via
    /// [`Launcher::fault_plan`].
    pub fn fault_layer(&self) -> Option<&Arc<FaultLayer>> {
        self.fault.as_ref()
    }

    /// True while `world_rank`'s entry point is still running. Because
    /// delivery is synchronous, once this turns false every message the
    /// rank ever sent is already in its destination mailbox.
    pub fn rank_alive(&self, world_rank: usize) -> bool {
        self.transport.rank_alive(world_rank)
    }

    pub(crate) fn mark_rank_done(&self, world_rank: usize) {
        self.transport.mark_rank_done(world_rank);
    }

    pub(crate) fn eager_limit(&self) -> usize {
        self.eager_limit
    }

    /// Seconds since the universe started (the runtime's `MPI_Wtime`).
    pub fn wtime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Nanoseconds since the universe started (used by instrumentation).
    pub fn wtime_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Wakes every blocked rank with [`crate::RtError::Shutdown`].
    pub fn shutdown_all(&self) {
        self.transport.shutdown_all();
    }
}

/// Boxed error type a fallible rank entry point may return.
pub type RankError = Box<dyn std::error::Error + Send + Sync + 'static>;

type EntryPoint = Arc<dyn Fn(Mpi) -> std::result::Result<(), RankError> + Send + Sync + 'static>;

#[derive(Clone)]
pub(crate) struct PartitionSpec {
    pub(crate) name: String,
    pub(crate) cmdline: String,
    pub(crate) size: usize,
    pub(crate) entry: EntryPoint,
}

/// How a rank failed: by unwinding or by returning a typed error from a
/// fallible entry point (see [`Launcher::partition_try`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The rank's entry point panicked (caught at the rank boundary).
    Panicked,
    /// The rank's entry point returned `Err(..)`; `message` carries the
    /// typed error's `Display` output.
    Errored,
}

/// One failed rank inside a [`LaunchError`].
#[derive(Debug, Clone)]
pub struct RankFailure {
    /// Name of the partition the rank belongs to.
    pub partition: String,
    /// World rank that failed.
    pub world_rank: usize,
    /// Whether the rank panicked or returned a typed error.
    pub kind: FailureKind,
    /// Panic payload or the error's `Display` rendering.
    pub message: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            FailureKind::Panicked => "panicked",
            FailureKind::Errored => "errored",
        };
        write!(
            f,
            "{}/world:{} {kind}: {}",
            self.partition, self.world_rank, self.message
        )
    }
}

/// Error reported when one or more ranks panicked or returned an error.
#[derive(Debug)]
pub struct LaunchError {
    /// One entry per failed rank.
    pub failures: Vec<RankFailure>,
}

impl LaunchError {
    /// True when at least one rank failed by unwinding (as opposed to
    /// returning a typed error).
    pub fn any_panicked(&self) -> bool {
        self.failures
            .iter()
            .any(|f| f.kind == FailureKind::Panicked)
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rank(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            write!(f, " [{failure}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for LaunchError {}

/// Builder for an MPMD job.
///
/// Cloning a launcher is cheap (entry points are shared); the socket
/// backend relies on it so every participating process can be handed the
/// same job description.
#[derive(Clone)]
pub struct Launcher {
    pub(crate) specs: Vec<PartitionSpec>,
    pub(crate) eager_limit: usize,
    pub(crate) stack_size: Option<usize>,
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl Default for Launcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Launcher {
    pub fn new() -> Self {
        Launcher {
            specs: Vec::new(),
            eager_limit: Universe::DEFAULT_EAGER_LIMIT,
            stack_size: None,
            fault_plan: None,
        }
    }

    /// Installs a deterministic fault-injection plan evaluated on the
    /// stream plane of every rank's transport (see [`FaultPlan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the eager/rendezvous switch-over (bytes).
    pub fn eager_limit(mut self, bytes: usize) -> Self {
        self.eager_limit = bytes;
        self
    }

    /// Overrides the per-rank thread stack size.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Number of partitions configured so far. Multi-process launchers
    /// use this to choose a process count before calling
    /// [`Launcher::run_multiproc`](crate::socket).
    pub fn partition_count(&self) -> usize {
        self.specs.len()
    }

    /// Adds a partition of `size` ranks all running `entry`.
    pub fn partition<F>(self, name: &str, size: usize, entry: F) -> Self
    where
        F: Fn(Mpi) + Send + Sync + 'static,
    {
        let cmdline = format!("./{name}");
        self.partition_with_cmdline(name, &cmdline, size, entry)
    }

    /// Adds a partition whose entry point may fail with a typed error.
    /// An `Err` return tears the job down exactly like a panic (peers
    /// unblock with [`crate::RtError::Shutdown`]) but is reported as
    /// [`FailureKind::Errored`] with the error's message, so callers can
    /// distinguish "rank hit a typed error path" from "rank aborted".
    pub fn partition_try<F>(self, name: &str, size: usize, entry: F) -> Self
    where
        F: Fn(Mpi) -> std::result::Result<(), RankError> + Send + Sync + 'static,
    {
        let cmdline = format!("./{name}");
        self.partition_try_with_cmdline(name, &cmdline, size, entry)
    }

    /// Adds a partition with an explicit pseudo command line.
    pub fn partition_with_cmdline<F>(self, name: &str, cmdline: &str, size: usize, entry: F) -> Self
    where
        F: Fn(Mpi) + Send + Sync + 'static,
    {
        self.partition_try_with_cmdline(name, cmdline, size, move |mpi| {
            entry(mpi);
            Ok(())
        })
    }

    /// Adds a fallible partition with an explicit pseudo command line.
    pub fn partition_try_with_cmdline<F>(
        mut self,
        name: &str,
        cmdline: &str,
        size: usize,
        entry: F,
    ) -> Self
    where
        F: Fn(Mpi) -> std::result::Result<(), RankError> + Send + Sync + 'static,
    {
        assert!(size > 0, "partition must have at least one rank");
        self.specs.push(PartitionSpec {
            name: name.to_string(),
            cmdline: cmdline.to_string(),
            size,
            entry: Arc::new(entry),
        });
        self
    }

    /// Partition table this job will launch with (dense ids, contiguous
    /// world ranks in declaration order).
    pub(crate) fn build_infos(&self) -> Vec<PartitionInfo> {
        let mut infos = Vec::with_capacity(self.specs.len());
        let mut first = 0usize;
        for (id, spec) in self.specs.iter().enumerate() {
            infos.push(PartitionInfo {
                id,
                name: spec.name.clone(),
                cmdline: spec.cmdline.clone(),
                first_world_rank: first,
                size: spec.size,
            });
            first += spec.size;
        }
        infos
    }

    /// Spawns every rank, runs the job to completion and joins all threads.
    pub fn run(self) -> Result<(), LaunchError> {
        assert!(!self.specs.is_empty(), "no partitions configured");
        let universe = Universe::new(
            self.build_infos(),
            self.eager_limit,
            self.fault_plan.clone(),
        );
        let failures = spawn_and_join(&universe, &self.specs, self.stack_size, |_| true);
        if failures.is_empty() {
            Ok(())
        } else {
            Err(LaunchError { failures })
        }
    }
}

/// Spawns one thread per rank selected by `hosted`, joins them all and
/// returns the failed ranks. Shared by [`Launcher::run`] (hosts every
/// rank) and the socket backend's multi-process launch (hosts a subset).
pub(crate) fn spawn_and_join(
    universe: &Arc<Universe>,
    specs: &[PartitionSpec],
    stack_size: Option<usize>,
    hosted: impl Fn(usize) -> bool,
) -> Vec<RankFailure> {
    let partitions = Arc::clone(&universe.partitions);
    let mut handles = Vec::new();
    let mut failures = Vec::new();
    for (pid, spec) in specs.iter().enumerate() {
        for local in 0..spec.size {
            let world_rank = universe.partitions()[pid].first_world_rank + local;
            if !hosted(world_rank) {
                continue;
            }
            let entry = Arc::clone(&spec.entry);
            let uni = Arc::clone(universe);
            let name = format!("{}#{}", spec.name, local);
            let mut builder = std::thread::Builder::new().name(name);
            if let Some(sz) = stack_size {
                builder = builder.stack_size(sz);
            }
            match builder.spawn(move || {
                let world = Comm::world(uni.world_size(), world_rank);
                let mpi = Mpi::new(Arc::clone(&uni), world_rank, world, pid);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || entry(mpi)));
                // Everything the rank sent is delivered by now
                // (sends complete synchronously), so readers that
                // see the flag drop will not miss data.
                uni.mark_rank_done(world_rank);
                if !matches!(result, Ok(Ok(()))) {
                    // Unblock every other rank so the job tears down
                    // instead of hanging on a dead peer.
                    uni.shutdown_all();
                }
                result
            }) {
                Ok(handle) => handles.push((pid, world_rank, handle)),
                Err(e) => {
                    // The OS refused the thread: record the rank as
                    // failed and wake everything that might wait on it.
                    universe.mark_rank_done(world_rank);
                    universe.shutdown_all();
                    failures.push(RankFailure {
                        partition: spec.name.clone(),
                        world_rank,
                        kind: FailureKind::Errored,
                        message: format!("failed to spawn rank thread: {e}"),
                    });
                }
            }
        }
    }

    for (pid, world_rank, handle) in handles {
        let partition = partitions
            .get(pid)
            .map(|p| p.name.clone())
            .unwrap_or_default();
        match handle.join() {
            Ok(Ok(Ok(()))) => {}
            Ok(Ok(Err(e))) => failures.push(RankFailure {
                partition,
                world_rank,
                kind: FailureKind::Errored,
                message: e.to_string(),
            }),
            Ok(Err(payload)) | Err(payload) => failures.push(RankFailure {
                partition,
                world_rank,
                kind: FailureKind::Panicked,
                message: panic_message(payload.as_ref()),
            }),
        }
    }
    failures
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partitions_are_laid_out_contiguously() {
        let uni = Universe::new(
            vec![
                PartitionInfo {
                    id: 0,
                    name: "a".into(),
                    cmdline: "./a".into(),
                    first_world_rank: 0,
                    size: 3,
                },
                PartitionInfo {
                    id: 1,
                    name: "b".into(),
                    cmdline: "./b".into(),
                    first_world_rank: 3,
                    size: 2,
                },
            ],
            1024,
            None,
        );
        assert_eq!(uni.world_size(), 5);
        assert_eq!(uni.backend_name(), "inproc");
        assert_eq!(uni.partition_of(0).unwrap().name, "a");
        assert_eq!(uni.partition_of(4).unwrap().name, "b");
        assert!(uni.partition_of(5).is_none());
        assert_eq!(uni.partition_by_name("b").unwrap().first_world_rank, 3);
        assert!(uni.partition_by_name("c").is_none());
    }

    #[test]
    fn every_rank_runs_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        Launcher::new()
            .partition("w", 7, |_mpi| {
                COUNT.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(COUNT.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn panic_is_reported_not_hung() {
        let err = Launcher::new()
            .partition("ok", 1, |_mpi| {})
            .partition("bad", 2, |mpi| {
                if mpi.world_rank() == 2 {
                    panic!("boom");
                }
            })
            .run()
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].partition, "bad");
        assert_eq!(err.failures[0].kind, FailureKind::Panicked);
        assert!(err.failures[0].message.contains("boom"));
        assert!(err.any_panicked());
    }

    #[test]
    fn typed_rank_error_is_reported_as_errored() {
        let err = Launcher::new()
            .partition("ok", 1, |_mpi| {})
            .partition_try("bad", 2, |mpi| {
                if mpi.world_rank() == 2 {
                    Err("typed failure".into())
                } else {
                    Ok(())
                }
            })
            .run()
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].partition, "bad");
        assert_eq!(err.failures[0].world_rank, 2);
        assert_eq!(err.failures[0].kind, FailureKind::Errored);
        assert!(err.failures[0].message.contains("typed failure"));
        assert!(!err.any_panicked());
    }

    #[test]
    fn cloned_launcher_shares_entry_points() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let l = Launcher::new().partition("w", 2, |_mpi| {
            COUNT.fetch_add(1, Ordering::Relaxed);
        });
        l.clone().run().unwrap();
        l.run().unwrap();
        assert_eq!(COUNT.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn wtime_is_monotonic() {
        let uni = Universe::new(
            vec![PartitionInfo {
                id: 0,
                name: "x".into(),
                cmdline: "./x".into(),
                first_world_rank: 0,
                size: 1,
            }],
            1024,
            None,
        );
        let a = uni.wtime();
        let b = uni.wtime();
        assert!(b >= a);
    }
}
