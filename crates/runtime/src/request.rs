//! Non-blocking operation handles.
//!
//! [`Request`] is the runtime's analogue of `MPI_Request`: returned by
//! `isend`/`irecv`, completed by `wait`/`is_complete`. A send request
//! completes when the message has been accepted by the destination (for
//! rendezvous messages this is when a matching receive took it); a receive
//! request completes when a matching message has been delivered into its
//! slot.

use crate::envelope::Status;
use crate::mailbox::{Mailbox, RecvSlot, SendHandle};
use crate::{Result, RtError};
use bytes::Bytes;
use std::sync::Arc;

enum State {
    /// Send already complete at creation (eager delivery).
    SendDone,
    /// Receive already complete (unexpected message matched at post time) —
    /// or completed by a prior `is_complete` poll.
    RecvDone(Status, Bytes),
    /// Rendezvous send waiting to be taken at the destination.
    Send {
        dst_mailbox: Arc<Mailbox>,
        handle: Arc<SendHandle>,
    },
    /// Posted receive waiting for delivery.
    Recv {
        own_mailbox: Arc<Mailbox>,
        slot: Arc<RecvSlot>,
    },
}

/// Handle for an in-flight non-blocking operation.
pub struct Request {
    state: State,
}

impl Request {
    pub(crate) fn send_done() -> Self {
        Request {
            state: State::SendDone,
        }
    }

    pub(crate) fn pending_send(dst_mailbox: Arc<Mailbox>, handle: Arc<SendHandle>) -> Self {
        Request {
            state: State::Send {
                dst_mailbox,
                handle,
            },
        }
    }

    pub(crate) fn pending_recv(own_mailbox: Arc<Mailbox>, slot: Arc<RecvSlot>) -> Self {
        Request {
            state: State::Recv { own_mailbox, slot },
        }
    }

    /// Polls for completion without blocking. A completed receive buffers its
    /// payload inside the request until [`Request::wait`] is called.
    pub fn is_complete(&mut self) -> bool {
        match &self.state {
            State::SendDone | State::RecvDone(..) => true,
            State::Send { handle, .. } => handle.is_done(),
            State::Recv { slot, .. } => {
                if let Some(env) = slot.take() {
                    let st = env.status();
                    self.state = State::RecvDone(st, env.payload);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Blocks until the operation completes. Returns `Some((status, data))`
    /// for receives and `None` for sends.
    pub fn wait(self) -> Result<Option<(Status, Bytes)>> {
        match self.state {
            State::SendDone => Ok(None),
            State::RecvDone(st, data) => Ok(Some((st, data))),
            State::Send {
                dst_mailbox,
                handle,
            } => {
                dst_mailbox.wait_send(&handle)?;
                Ok(None)
            }
            State::Recv { own_mailbox, slot } => {
                let env = own_mailbox.wait_recv(&slot)?;
                Ok(Some((env.status(), env.payload)))
            }
        }
    }
}

/// Waits on a batch of requests, returning receive payloads in request order
/// (`None` entries for sends) — the analogue of `MPI_Waitall`.
pub fn wait_all(reqs: Vec<Request>) -> Result<Vec<Option<(Status, Bytes)>>> {
    let mut out = Vec::with_capacity(reqs.len());
    let mut first_err: Option<RtError> = None;
    for r in reqs {
        match r.wait() {
            Ok(v) => out.push(v),
            Err(e) => {
                // Keep draining so no request is leaked half-waited.
                if first_err.is_none() {
                    first_err = Some(e);
                }
                out.push(None);
            }
        }
    }
    match first_err {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommId;
    use crate::envelope::{Context, Src, TagSel};
    use crate::mailbox::make_envelope;

    const C: CommId = CommId(3);

    #[test]
    fn send_done_is_complete() {
        let mut r = Request::send_done();
        assert!(r.is_complete());
        assert!(r.wait().unwrap().is_none());
    }

    #[test]
    fn recv_request_completes_on_delivery() {
        let mb = Arc::new(Mailbox::default());
        let slot = mb
            .post_recv(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap();
        let mut req = Request::pending_recv(Arc::clone(&mb), slot);
        assert!(!req.is_complete());
        mb.deliver(
            make_envelope(Context::Pt2pt, C, 1, 1, 4, Bytes::from_static(b"abc")),
            64,
        )
        .unwrap();
        assert!(req.is_complete());
        let (st, data) = req.wait().unwrap().unwrap();
        assert_eq!(st.source, 1);
        assert_eq!(&data[..], b"abc");
    }

    #[test]
    fn poll_then_wait_does_not_lose_payload() {
        let mb = Arc::new(Mailbox::default());
        let slot = mb
            .post_recv(Context::Pt2pt, C, Src::Any, TagSel::Any)
            .unwrap();
        let mut req = Request::pending_recv(Arc::clone(&mb), slot);
        mb.deliver(
            make_envelope(Context::Pt2pt, C, 0, 0, 1, Bytes::from_static(b"z")),
            64,
        )
        .unwrap();
        assert!(req.is_complete());
        assert!(req.is_complete(), "polling twice must stay complete");
        assert_eq!(&req.wait().unwrap().unwrap().1[..], b"z");
    }

    #[test]
    fn wait_all_preserves_order() {
        let mb = Arc::new(Mailbox::default());
        let mut reqs = Vec::new();
        for tag in 0..3 {
            mb.deliver(
                make_envelope(
                    Context::Pt2pt,
                    C,
                    0,
                    0,
                    tag,
                    Bytes::from(vec![tag as u8; 1]),
                ),
                64,
            )
            .unwrap();
            let slot = mb
                .post_recv(Context::Pt2pt, C, Src::Any, TagSel::Tag(tag))
                .unwrap();
            reqs.push(Request::pending_recv(Arc::clone(&mb), slot));
        }
        reqs.push(Request::send_done());
        let out = wait_all(reqs).unwrap();
        assert_eq!(out.len(), 4);
        for (tag, item) in out.iter().take(3).enumerate() {
            assert_eq!(item.as_ref().unwrap().1[0], tag as u8);
        }
        assert!(out[3].is_none());
    }
}
