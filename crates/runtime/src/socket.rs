//! Socket transport backend: one job, N OS processes.
//!
//! Every process hosts a subset of the world's ranks (threads, exactly as
//! in the in-process backend) and reaches the others over Unix-domain or
//! TCP sockets. Envelopes travel as length-prefixed, checksummed frames
//! (reusing the codec in `opmr-events`), multiplexed over one full-duplex
//! connection per process pair. The mailbox matching engine, the fault
//! layer and the stream protocols all sit *above* the
//! [`crate::Transport`] trait and are byte-for-byte the same code as in
//! the `InProc` backend — `tests/transport_conformance.rs` runs the same
//! assertions against both.
//!
//! # Handshake
//!
//! Process 0 is the coordinator: it listens on the configured
//! [`Endpoint`]; every other process dials it and sends a `Hello` frame
//! carrying a protocol magic/version, its process index and a hash of the
//! topology (process count plus the rank→process map, which every process
//! derives from the same job description). The coordinator validates each
//! `Hello` — garbage or mismatched peers are rejected with a typed error
//! and an obs counter, without aborting the handshake — then answers with
//! a `Roster` of every process's listen address plus a fresh session
//! epoch. Process *i* then dials every process *j < i* and accepts
//! connections from every *k > i*, producing a full mesh. The handshake
//! runs concurrently with partition startup: locally hosted ranks begin
//! executing immediately and block on a mesh gate only at their first
//! remote operation.
//!
//! # Link recovery
//!
//! Each process retains its listener after the handshake. Data frames
//! (envelopes and the `RankDone`/`Shutdown`/`ProcDone` control frames)
//! are sequenced per link and buffered until acknowledged (`Ack` frames
//! every few received frames prune the buffer). When a connection drops
//! *before* the peer's `ProcDone`, the higher-indexed side redials the
//! lower-indexed side's retained listener with bounded exponential
//! backoff, presenting the session epoch and its received-frame count;
//! the acceptor answers with its own count and both sides retransmit
//! exactly the suffix the other never saw — the stream above observes an
//! uninterrupted exactly-once frame sequence. Only when the retry budget
//! (dialer) or the reconnect grace window (acceptor) is exhausted does
//! the link degrade to the same typed `PeerLost` a crashed in-process
//! writer produces. Attempts, successes, exhaustions and stale-epoch
//! rejections are all counted in `obs`.
//!
//! # Liveness and teardown
//!
//! The in-process invariant "once `rank_alive` turns false, every message
//! the rank ever sent is already in its destination mailbox" is preserved
//! across processes by ordering: a rank's `RankDone` control frame is
//! written on each connection *after* all of that rank's envelope frames,
//! and each connection is read in order by a dedicated reader thread.
//! After a process has joined all its local ranks it broadcasts
//! `ProcDone`, waits for every peer's `ProcDone` (or disconnect), and
//! only then closes its sockets — so a normal close is never mistaken for
//! a crash. A connection that drops *without* `ProcDone` and exhausts the
//! reconnect policy marks every rank of that process dead (ticking
//! `transport_socket_peer_disconnects_total`), which blocked stream
//! readers surface as the same typed `PeerLost` error a crashed in-process
//! writer produces.

use crate::envelope::{Context, Envelope, EnvelopeHeader};
use crate::launch::{spawn_and_join, LaunchError, Launcher, Universe};
use crate::mailbox::{Delivery, Mailbox};
use crate::transport::Transport;
use crate::{CommId, Result, RtError};
use bytes::Bytes;
use opmr_events::{
    decompress_into, max_compressed_len, try_frame, Compression, FrameBuf, Lz4Encoder,
    MAX_FRAME_LEN,
};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

// Socket transport metrics (the obs "transport" family): registered once,
// cached handles, relaxed atomics on the hot path.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct SocketMetrics {
        pub frames_sent: Arc<Counter>,
        pub frames_received: Arc<Counter>,
        pub bytes_sent: Arc<Counter>,
        pub bytes_received: Arc<Counter>,
        pub connect_timeouts: Arc<Counter>,
        pub handshake_rejected: Arc<Counter>,
        pub peer_disconnects: Arc<Counter>,
        pub reconnect_attempts: Arc<Counter>,
        pub reconnects: Arc<Counter>,
        pub reconnect_exhausted: Arc<Counter>,
        pub reconnect_stale_epoch: Arc<Counter>,
        pub frames_retransmitted: Arc<Counter>,
        pub chaos_severs: Arc<Counter>,
        pub codec_rejected: Arc<Counter>,
        pub envelopes_compressed: Arc<Counter>,
    }

    pub(super) fn m() -> &'static SocketMetrics {
        static M: OnceLock<SocketMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            SocketMetrics {
                frames_sent: r.counter("transport_socket_frames_sent_total"),
                frames_received: r.counter("transport_socket_frames_received_total"),
                bytes_sent: r.counter("transport_socket_bytes_sent_total"),
                bytes_received: r.counter("transport_socket_bytes_received_total"),
                connect_timeouts: r.counter("transport_socket_connect_timeouts_total"),
                handshake_rejected: r.counter("transport_socket_handshake_rejected_total"),
                peer_disconnects: r.counter("transport_socket_peer_disconnects_total"),
                reconnect_attempts: r.counter("transport_socket_reconnect_attempts_total"),
                reconnects: r.counter("transport_socket_reconnects_total"),
                reconnect_exhausted: r.counter("transport_socket_reconnect_exhausted_total"),
                reconnect_stale_epoch: r.counter("transport_socket_reconnect_stale_epoch_total"),
                frames_retransmitted: r.counter("transport_socket_frames_retransmitted_total"),
                chaos_severs: r.counter("transport_socket_chaos_severs_total"),
                codec_rejected: r.counter("transport_socket_codec_rejected_total"),
                envelopes_compressed: r.counter("transport_socket_envelopes_compressed_total"),
            }
        })
    }
}

/// Where the job's coordinator (process 0) listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:39000`. Non-coordinator processes
    /// listen on an ephemeral loopback port advertised via the handshake.
    Tcp(String),
    /// Unix-domain socket path. Non-coordinator process `i` listens on
    /// the same path suffixed with `.p{i}`.
    Unix(PathBuf),
}

impl Endpoint {
    fn describe(&self) -> String {
        match self {
            Endpoint::Tcp(a) => format!("tcp:{a}"),
            Endpoint::Unix(p) => format!("unix:{}", p.display()),
        }
    }
}

/// Deterministic link-chaos injection: the lower-indexed side of every
/// link severs it once after `sever_after_frames` data frames have been
/// sent *or received* on that link (whichever threshold is crossed
/// first), exercising the reconnect path end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Sever each link once after this many data frames were sent on it.
    pub sever_after_frames: u64,
}

/// Socket-level configuration shared by every process of the job.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Coordinator endpoint.
    pub endpoint: Endpoint,
    /// Budget for dialing a peer during the handshake. Also bounds the
    /// post-join teardown drain.
    pub connect_timeout: Duration,
    /// Budget for the handshake's accept phase. `None` (the default)
    /// reuses `connect_timeout`.
    pub accept_timeout: Option<Duration>,
    /// Per-connection budget for reading a single handshake frame
    /// (`Hello` or a reconnect presentation), bounded separately so a
    /// stalled rogue connection cannot eat the whole handshake budget.
    pub hello_timeout: Duration,
    /// How many redial attempts the higher-indexed side of a dropped
    /// link makes before degrading to a typed `PeerLost`.
    pub retry_budget: u32,
    /// Backoff before redial attempt `k` is `backoff_base * 2^(k-1)`
    /// (the first attempt is immediate).
    pub backoff_base: Duration,
    /// How long the lower-indexed (accepting) side of a dropped link
    /// waits for the peer to redial before degrading to `PeerLost`.
    pub reconnect_grace: Duration,
    /// Optional deterministic link-chaos injection.
    pub link_fault: Option<LinkFault>,
    /// Envelope codec this process is willing to speak. The coordinator
    /// negotiates the *session* codec down to the weakest codec any peer
    /// advertised, so processes may legitimately differ here (a legacy
    /// peer advertising nothing pins the whole session to plain frames).
    pub compression: Compression,
}

impl SocketConfig {
    /// Configuration with the default timeouts and retry policy.
    pub fn new(endpoint: Endpoint) -> Self {
        SocketConfig {
            endpoint,
            connect_timeout: Duration::from_secs(10),
            accept_timeout: None,
            hello_timeout: Duration::from_secs(2),
            retry_budget: 5,
            backoff_base: Duration::from_millis(100),
            reconnect_grace: Duration::from_secs(3),
            link_fault: None,
            compression: Compression::None,
        }
    }

    /// Overrides the connect/drain budget.
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = d;
        self
    }

    /// Overrides the handshake accept budget (defaults to the connect
    /// budget).
    pub fn accept_timeout(mut self, d: Duration) -> Self {
        self.accept_timeout = Some(d);
        self
    }

    /// Overrides the per-connection handshake-frame read budget.
    pub fn hello_timeout(mut self, d: Duration) -> Self {
        self.hello_timeout = d;
        self
    }

    /// Overrides the redial retry budget.
    pub fn retry_budget(mut self, n: u32) -> Self {
        self.retry_budget = n;
        self
    }

    /// Overrides the redial backoff base.
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Overrides the acceptor-side reconnect grace window.
    pub fn reconnect_grace(mut self, d: Duration) -> Self {
        self.reconnect_grace = d;
        self
    }

    /// Enables deterministic link-chaos injection.
    pub fn link_fault(mut self, f: LinkFault) -> Self {
        self.link_fault = Some(f);
        self
    }

    /// Advertises an envelope codec for this process (see
    /// [`SocketConfig::compression`]).
    pub fn compression(mut self, c: Compression) -> Self {
        self.compression = c;
        self
    }

    fn effective_accept_timeout(&self) -> Duration {
        self.accept_timeout.unwrap_or(self.connect_timeout)
    }

    /// Rejects zero or absurd values with a typed error before any
    /// socket is opened. An hour-plus timeout or a 64+ redial budget is
    /// a config bug, not a deployment choice.
    pub fn validate(&self) -> std::result::Result<(), SocketError> {
        const HOUR: Duration = Duration::from_secs(3600);
        let bad = |what: String| Err(SocketError::InvalidConfig { what });
        if self.connect_timeout.is_zero() || self.connect_timeout > HOUR {
            return bad(format!("connect_timeout {:?}", self.connect_timeout));
        }
        if let Some(a) = self.accept_timeout {
            if a.is_zero() || a > HOUR {
                return bad(format!("accept_timeout {a:?}"));
            }
        }
        if self.hello_timeout.is_zero() || self.hello_timeout > HOUR {
            return bad(format!("hello_timeout {:?}", self.hello_timeout));
        }
        if self.retry_budget == 0 || self.retry_budget > 64 {
            return bad(format!("retry_budget {}", self.retry_budget));
        }
        if self.backoff_base.is_zero() || self.backoff_base > Duration::from_secs(60) {
            return bad(format!("backoff_base {:?}", self.backoff_base));
        }
        if self.reconnect_grace.is_zero() || self.reconnect_grace > HOUR {
            return bad(format!("reconnect_grace {:?}", self.reconnect_grace));
        }
        if let Some(f) = self.link_fault {
            if f.sever_after_frames == 0 {
                return bad("link_fault.sever_after_frames 0".to_string());
            }
        }
        Ok(())
    }
}

/// How partitions are assigned to processes. Every process derives the
/// same map from the same job description; the handshake cross-checks a
/// hash of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionAssign {
    /// Contiguous blocks of partitions, evenly split (partition `p` of
    /// `n` goes to process `p * procs / n`).
    Block,
    /// Partition `p` goes to process `p % procs`.
    RoundRobin,
    /// Explicit partition→process map (one entry per partition).
    Explicit(Vec<usize>),
}

impl PartitionAssign {
    fn proc_of(
        &self,
        partition: usize,
        n_partitions: usize,
        num_procs: usize,
    ) -> std::result::Result<usize, SocketError> {
        let p = match self {
            PartitionAssign::Block => partition * num_procs / n_partitions,
            PartitionAssign::RoundRobin => partition % num_procs,
            PartitionAssign::Explicit(v) => {
                *v.get(partition).ok_or_else(|| SocketError::BadTopology {
                    what: format!(
                        "explicit assignment has {} entries for {} partitions",
                        v.len(),
                        n_partitions
                    ),
                })?
            }
        };
        if p >= num_procs {
            return Err(SocketError::BadTopology {
                what: format!("partition {partition} assigned to process {p} of {num_procs}"),
            });
        }
        Ok(p)
    }
}

/// One process's view of a multi-process job.
#[derive(Debug, Clone)]
pub struct MultiprocTopology {
    /// Socket configuration (must be identical in every process).
    pub socket: SocketConfig,
    /// This process's index in `0..num_procs`.
    pub proc_index: usize,
    /// Total number of processes.
    pub num_procs: usize,
    /// Partition→process assignment (must be identical in every process).
    pub assign: PartitionAssign,
}

impl MultiprocTopology {
    /// Topology with block partition assignment.
    pub fn new(socket: SocketConfig, proc_index: usize, num_procs: usize) -> Self {
        MultiprocTopology {
            socket,
            proc_index,
            num_procs,
            assign: PartitionAssign::Block,
        }
    }

    /// Overrides the partition assignment.
    pub fn assign(mut self, assign: PartitionAssign) -> Self {
        self.assign = assign;
        self
    }
}

/// Typed socket-transport failures (handshake and configuration; runtime
/// data-plane loss surfaces through [`RtError`] and stream-level errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketError {
    /// Could not bind a listener.
    Bind { addr: String, detail: String },
    /// A peer did not answer within the connect budget.
    ConnectTimeout { addr: String, waited_ms: u64 },
    /// Expected peers never completed the handshake in time.
    AcceptTimeout { waited_ms: u64, missing: usize },
    /// A peer spoke garbage (or an incompatible topology) during the
    /// handshake.
    Handshake { addr: String, what: String },
    /// I/O failure outside the established data plane.
    Io {
        during: &'static str,
        detail: String,
    },
    /// The topology description itself is invalid.
    BadTopology { what: String },
    /// A `SocketConfig` field is zero or absurd.
    InvalidConfig { what: String },
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Bind { addr, detail } => write!(f, "failed to bind {addr}: {detail}"),
            SocketError::ConnectTimeout { addr, waited_ms } => {
                write!(f, "connect to {addr} timed out after {waited_ms} ms")
            }
            SocketError::AcceptTimeout { waited_ms, missing } => write!(
                f,
                "handshake timed out after {waited_ms} ms with {missing} peer(s) missing"
            ),
            SocketError::Handshake { addr, what } => {
                write!(f, "handshake with {addr} failed: {what}")
            }
            SocketError::Io { during, detail } => write!(f, "socket i/o during {during}: {detail}"),
            SocketError::BadTopology { what } => write!(f, "bad multiproc topology: {what}"),
            SocketError::InvalidConfig { what } => {
                write!(f, "invalid socket config: {what}")
            }
        }
    }
}

impl std::error::Error for SocketError {}

/// Failure of a multi-process launch: either the socket layer could not
/// assemble the mesh, or (exactly as in-process) some hosted ranks failed.
#[derive(Debug)]
pub enum MultiprocError {
    /// Handshake/configuration failure before any rank ran.
    Socket(SocketError),
    /// Rank failures among the ranks hosted by *this* process.
    Launch(LaunchError),
}

impl MultiprocError {
    /// The rank failures, when the mesh came up and ranks ran.
    pub fn into_launch(self) -> Option<LaunchError> {
        match self {
            MultiprocError::Launch(e) => Some(e),
            MultiprocError::Socket(_) => None,
        }
    }
}

impl std::fmt::Display for MultiprocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiprocError::Socket(e) => write!(f, "socket transport: {e}"),
            MultiprocError::Launch(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MultiprocError {}

impl From<SocketError> for MultiprocError {
    fn from(e: SocketError) -> Self {
        MultiprocError::Socket(e)
    }
}

impl From<LaunchError> for MultiprocError {
    fn from(e: LaunchError) -> Self {
        MultiprocError::Launch(e)
    }
}

// ---------------------------------------------------------------------
// Wire format. Every message is an `opmr-events` frame
// (`[len u32][fnv1a32 u32][payload]`); payload byte 0 is the kind.
// ---------------------------------------------------------------------

const MAGIC: u32 = 0x4F50_4D52; // "OPMR"
/// Protocol version 3 adds the codec byte to `Hello` and `Roster`.
const VERSION: u16 = 3;
/// Version 2 peers (no codec negotiation) are still accepted; they pin
/// the session codec to [`Compression::None`] and see only the frame
/// kinds version 2 defined.
const VERSION_LEGACY: u16 = 2;

const K_HELLO: u8 = 1;
const K_ENVELOPE: u8 = 2;
const K_RANK_DONE: u8 = 3;
const K_SHUTDOWN: u8 = 4;
const K_PROC_DONE: u8 = 5;
const K_ROSTER: u8 = 6;
const K_ACK: u8 = 7;
const K_RECONN: u8 = 8;
const K_RECONN_OK: u8 = 9;
const K_RECONN_NAK: u8 = 10;
/// A compressed envelope: `[kind][lz4 block]` where the block inflates
/// to a complete `K_ENVELOPE` payload. Only sent on sessions that
/// negotiated [`Compression::Lz4`].
const K_ENVELOPE_Z: u8 = 11;

/// Envelopes below this size are sent plain even on a compressed
/// session: the token overhead would beat any win.
const MIN_ENVELOPE_COMPRESS: usize = 128;

/// `K_RECONN_NAK` reason codes.
const NAK_STALE_EPOCH: u8 = 1;
const NAK_UNKNOWN_LINK: u8 = 2;
const NAK_LINK_LOST: u8 = 3;
const NAK_BUSY: u8 = 4;

fn ctx_to_u8(c: Context) -> u8 {
    match c {
        Context::Pt2pt => 0,
        Context::Coll => 1,
        Context::Stream => 2,
    }
}

fn ctx_from_u8(b: u8) -> Option<Context> {
    match b {
        0 => Some(Context::Pt2pt),
        1 => Some(Context::Coll),
        2 => Some(Context::Stream),
        _ => None,
    }
}

/// `[kind][ctx u8][tag i32][comm u64][src_local u32][src_world u32][dst u32][payload]`
fn encode_envelope(dst_world: usize, env: &Envelope) -> Vec<u8> {
    let h = &env.header;
    let mut out = Vec::with_capacity(26 + env.payload.len());
    out.push(K_ENVELOPE);
    out.push(ctx_to_u8(h.ctx));
    out.extend_from_slice(&h.tag.to_le_bytes());
    out.extend_from_slice(&h.comm.0.to_le_bytes());
    out.extend_from_slice(&(h.src_local as u32).to_le_bytes());
    out.extend_from_slice(&(h.src_world as u32).to_le_bytes());
    out.extend_from_slice(&(dst_world as u32).to_le_bytes());
    out.extend_from_slice(&env.payload);
    out
}

fn decode_envelope(p: &Bytes) -> Option<(usize, Envelope)> {
    // p[0] is the kind byte, already matched by the caller.
    let ctx = ctx_from_u8(*p.get(1)?)?;
    let tag = i32::from_le_bytes(p.get(2..6)?.try_into().ok()?);
    let comm = u64::from_le_bytes(p.get(6..14)?.try_into().ok()?);
    let src_local = u32::from_le_bytes(p.get(14..18)?.try_into().ok()?) as usize;
    let src_world = u32::from_le_bytes(p.get(18..22)?.try_into().ok()?) as usize;
    let dst_world = u32::from_le_bytes(p.get(22..26)?.try_into().ok()?) as usize;
    let payload = p.slice(26..);
    Some((
        dst_world,
        Envelope {
            header: EnvelopeHeader {
                ctx,
                comm: CommId(comm),
                src_local,
                src_world,
                tag,
            },
            payload,
        },
    ))
}

/// Why a `Hello` was turned away. `UnknownCodec` is split out so the
/// mesh can count hostile/garbled codec advertisements separately from
/// generic handshake noise.
#[derive(Debug)]
enum HelloReject {
    /// The peer advertised a codec id this build does not know.
    UnknownCodec(u8),
    /// Anything else: bad magic, wrong topology, truncation, ...
    Other(String),
}

impl std::fmt::Display for HelloReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HelloReject::UnknownCodec(id) => write!(f, "peer advertised unknown codec id {id}"),
            HelloReject::Other(what) => write!(f, "{what}"),
        }
    }
}

/// v3: `[kind][magic u32][version u16][proc u16][topo_hash u64][codec u8][addr]`
/// (v2 had no codec byte; the address started at offset 17).
fn encode_hello(
    proc_index: usize,
    topo_hash: u64,
    codec: Compression,
    listen_addr: &str,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(18 + listen_addr.len());
    out.push(K_HELLO);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(proc_index as u16).to_le_bytes());
    out.extend_from_slice(&topo_hash.to_le_bytes());
    out.push(codec.id());
    out.extend_from_slice(listen_addr.as_bytes());
    out
}

/// Returns `(proc_index, advertised_codec, listen_addr)` or why not.
fn decode_hello(
    p: &Bytes,
    expect_hash: u64,
) -> std::result::Result<(usize, Compression, String), HelloReject> {
    let other = |what: String| Err(HelloReject::Other(what));
    if p.first() != Some(&K_HELLO) {
        return other(format!("first frame is not a hello (kind {:?})", p.first()));
    }
    let magic = p
        .get(1..5)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes);
    if magic != Some(MAGIC) {
        return other("bad protocol magic".to_string());
    }
    let version = p
        .get(5..7)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes);
    if version != Some(VERSION) && version != Some(VERSION_LEGACY) {
        return other(format!("unsupported protocol version {version:?}"));
    }
    let proc = p
        .get(7..9)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes)
        .ok_or(HelloReject::Other("truncated hello".to_string()))? as usize;
    let hash = p
        .get(9..17)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(HelloReject::Other("truncated hello".to_string()))?;
    // A legacy (v2) hello has no codec byte: the peer can only speak
    // plain frames, which is exactly Compression::None.
    let (codec, addr_from) = if version == Some(VERSION_LEGACY) {
        (Compression::None, 17)
    } else {
        let codec_id = *p
            .get(17)
            .ok_or(HelloReject::Other("truncated hello".to_string()))?;
        let codec = Compression::from_id(codec_id).ok_or(HelloReject::UnknownCodec(codec_id))?;
        (codec, 18)
    };
    // Codec skew is diagnosed before the topology check: a peer that
    // speaks an unknown codec is off-protocol no matter what job it
    // thinks it joined.
    if hash != expect_hash {
        return other(format!(
            "topology mismatch (peer {hash:#018x}, local {expect_hash:#018x})"
        ));
    }
    let addr = String::from_utf8_lossy(p.get(addr_from..).unwrap_or(&[])).into_owned();
    Ok((proc, codec, addr))
}

/// `[kind][epoch u64][n u16]([len u16][addr bytes])*[codec u8]`
///
/// The session codec rides at the *tail* so a v2 roster (no codec byte)
/// still decodes — as a plain session — and a v2 peer reading a v3
/// roster parses its entries unchanged.
fn encode_roster(epoch: u64, codec: Compression, addrs: &[String]) -> Vec<u8> {
    let mut out = vec![K_ROSTER];
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(addrs.len() as u16).to_le_bytes());
    for a in addrs {
        out.extend_from_slice(&(a.len() as u16).to_le_bytes());
        out.extend_from_slice(a.as_bytes());
    }
    out.push(codec.id());
    out
}

fn decode_roster(p: &Bytes) -> Option<(u64, Compression, Vec<String>)> {
    if p.first() != Some(&K_ROSTER) {
        return None;
    }
    let epoch = u64::from_le_bytes(p.get(1..9)?.try_into().ok()?);
    let n = u16::from_le_bytes(p.get(9..11)?.try_into().ok()?) as usize;
    let mut addrs = Vec::with_capacity(n);
    let mut off = 11usize;
    for _ in 0..n {
        let len = u16::from_le_bytes(p.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        addrs.push(String::from_utf8_lossy(p.get(off..off + len)?).into_owned());
        off += len;
    }
    let codec = match p.get(off) {
        // Legacy roster without a codec tail: plain session.
        None => Compression::None,
        Some(&id) => Compression::from_id(id)?,
    };
    Some((epoch, codec, addrs))
}

/// `[kind][magic u32][version u16][proc u16][epoch u64][rx_seq u64]`:
/// a redialing peer presents the session epoch and how many data frames
/// it has received on the link so far.
fn encode_reconn(proc_index: usize, epoch: u64, rx_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.push(K_RECONN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(proc_index as u16).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&rx_seq.to_le_bytes());
    out
}

/// Returns `(proc_index, epoch, rx_seq)` or a description of the defect.
fn decode_reconn(p: &Bytes) -> std::result::Result<(usize, u64, u64), String> {
    if p.first() != Some(&K_RECONN) {
        return Err(format!("not a reconnect frame (kind {:?})", p.first()));
    }
    let magic = p
        .get(1..5)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes);
    if magic != Some(MAGIC) {
        return Err("bad protocol magic".to_string());
    }
    let version = p
        .get(5..7)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes);
    if version != Some(VERSION) && version != Some(VERSION_LEGACY) {
        return Err(format!("unsupported protocol version {version:?}"));
    }
    let proc = p
        .get(7..9)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes)
        .ok_or("truncated reconnect frame")? as usize;
    let epoch = p
        .get(9..17)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or("truncated reconnect frame")?;
    let rx = p
        .get(17..25)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or("truncated reconnect frame")?;
    Ok((proc, epoch, rx))
}

/// `[kind][rx_seq u64]`: the acceptor's received-frame count.
fn encode_reconn_ok(rx_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(K_RECONN_OK);
    out.extend_from_slice(&rx_seq.to_le_bytes());
    out
}

fn decode_reconn_ok(p: &Bytes) -> Option<u64> {
    if p.first() != Some(&K_RECONN_OK) {
        return None;
    }
    Some(u64::from_le_bytes(p.get(1..9)?.try_into().ok()?))
}

/// `[kind][rx_seq u64]`: cumulative data frames received on this link.
fn encode_ack(rx_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(K_ACK);
    out.extend_from_slice(&rx_seq.to_le_bytes());
    out
}

/// Deterministic hash of the topology every process must agree on.
fn topology_hash(num_procs: usize, rank_owner: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.rotate_left(27).wrapping_mul(0x1000_0000_01B3);
    };
    mix(num_procs as u64);
    mix(rank_owner.len() as u64);
    for &o in rank_owner {
        mix(o as u64);
    }
    h
}

/// A fresh session epoch, unique enough to reject a redial from a stale
/// job that found the same endpoint: wall-clock nanoseconds mixed with
/// the coordinator's pid.
fn session_epoch() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED_5EED);
    let mut h = nanos ^ ((std::process::id() as u64) << 32);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    // Epoch 0 is reserved as "no session" so a zeroed frame never matches.
    if h == 0 {
        1
    } else {
        h
    }
}

// ---------------------------------------------------------------------
// Byte-stream plumbing: one enum over TCP / Unix sockets.
// ---------------------------------------------------------------------

enum SockStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SockStream {
    fn try_clone(&self) -> std::io::Result<SockStream> {
        Ok(match self {
            SockStream::Tcp(s) => SockStream::Tcp(s.try_clone()?),
            SockStream::Unix(s) => SockStream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_read_timeout(d),
            SockStream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            SockStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            SockStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.read(buf),
            SockStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.write(buf),
            SockStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.flush(),
            SockStream::Unix(s) => s.flush(),
        }
    }
}

enum SockListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl SockListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            SockListener::Tcp(l) => l.set_nonblocking(nb),
            SockListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<SockStream> {
        match self {
            SockListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(SockStream::Tcp(s))
            }
            SockListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(SockStream::Unix(s))
            }
        }
    }
}

/// The address process `i` listens on, and how to advertise it.
fn listen_endpoint(endpoint: &Endpoint, proc_index: usize) -> Endpoint {
    if proc_index == 0 {
        return endpoint.clone();
    }
    match endpoint {
        // Ephemeral loopback port; the real address is advertised via Hello.
        Endpoint::Tcp(_) => Endpoint::Tcp("127.0.0.1:0".to_string()),
        Endpoint::Unix(p) => {
            let mut os = p.clone().into_os_string();
            os.push(format!(".p{proc_index}"));
            Endpoint::Unix(PathBuf::from(os))
        }
    }
}

fn bind(endpoint: &Endpoint) -> std::result::Result<(SockListener, String), SocketError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| SocketError::Bind {
                addr: endpoint.describe(),
                detail: e.to_string(),
            })?;
            let advertised = l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.clone());
            Ok((SockListener::Tcp(l), format!("tcp:{advertised}")))
        }
        Endpoint::Unix(path) => {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path).map_err(|e| SocketError::Bind {
                addr: endpoint.describe(),
                detail: e.to_string(),
            })?;
            Ok((SockListener::Unix(l), format!("unix:{}", path.display())))
        }
    }
}

/// One connect attempt, no retry loop (redials supply their own backoff).
fn dial_once(addr: &str) -> std::result::Result<SockStream, SocketError> {
    let attempt = if let Some(a) = addr.strip_prefix("tcp:") {
        TcpStream::connect(a).map(|s| {
            let _ = s.set_nodelay(true);
            SockStream::Tcp(s)
        })
    } else if let Some(p) = addr.strip_prefix("unix:") {
        UnixStream::connect(p).map(SockStream::Unix)
    } else {
        return Err(SocketError::Handshake {
            addr: addr.to_string(),
            what: "unparseable peer address in roster".to_string(),
        });
    };
    attempt.map_err(|e| SocketError::Io {
        during: "dial",
        detail: e.to_string(),
    })
}

fn dial(
    addr: &str,
    deadline: Instant,
    waited: Duration,
) -> std::result::Result<SockStream, SocketError> {
    loop {
        match dial_once(addr) {
            Ok(s) => return Ok(s),
            Err(e @ SocketError::Handshake { .. }) => return Err(e),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                obs::m().connect_timeouts.inc();
                return Err(SocketError::ConnectTimeout {
                    addr: addr.to_string(),
                    waited_ms: waited.as_millis() as u64,
                });
            }
        }
    }
}

/// Reads exactly one frame from a handshake-phase connection, keeping any
/// over-read bytes in `fb` for the subsequent reader thread.
fn read_one_frame(
    stream: &mut SockStream,
    fb: &mut FrameBuf,
    deadline: Instant,
    addr: &str,
) -> std::result::Result<Bytes, SocketError> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match fb.next_frame() {
            Ok(Some(p)) => return Ok(p),
            Ok(None) => {}
            Err(e) => {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: format!("unframeable bytes on the wire: {e}"),
                })
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(SocketError::Handshake {
                addr: addr.to_string(),
                what: "timed out waiting for a handshake frame".to_string(),
            });
        }
        let _ = stream.set_read_timeout(Some(deadline - now));
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: "peer closed the connection during the handshake".to_string(),
                })
            }
            Ok(n) => fb.push(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: "timed out waiting for a handshake frame".to_string(),
                })
            }
            Err(e) => {
                return Err(SocketError::Io {
                    during: "handshake read",
                    detail: e.to_string(),
                })
            }
        }
    }
}

fn write_frame(stream: &mut SockStream, payload: &[u8]) -> std::io::Result<()> {
    let framed = try_frame(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(&framed)?;
    obs::m().frames_sent.inc();
    obs::m().bytes_sent.add(framed.len() as u64);
    Ok(())
}

/// One fully-handshaken connection plus bytes over-read past the
/// handshake frames (they belong to the data plane).
struct PeerConn {
    proc: usize,
    stream: SockStream,
    residual: FrameBuf,
}

/// Everything `connect_mesh` produces: the per-peer connections, the
/// retained listener (redials land on it for the rest of the session),
/// the advertised address of every process and the session epoch.
struct Mesh {
    conns: Vec<PeerConn>,
    listener: SockListener,
    roster: Vec<String>,
    epoch: u64,
    /// Session envelope codec: the weakest codec any process advertised.
    codec: Compression,
}

/// Establishes the full mesh for this process.
fn connect_mesh(
    topo: &MultiprocTopology,
    topo_hash: u64,
) -> std::result::Result<Mesh, SocketError> {
    let n = topo.num_procs;
    let me = topo.proc_index;
    let hello_budget = topo.socket.hello_timeout;
    let accept_deadline = Instant::now() + topo.socket.effective_accept_timeout();
    let dial_deadline = Instant::now() + topo.socket.connect_timeout;
    let mut conns: Vec<PeerConn> = Vec::with_capacity(n.saturating_sub(1));

    let (listener, my_addr) = bind(&listen_endpoint(&topo.socket.endpoint, me))?;

    if me == 0 {
        // Coordinator: collect n-1 Hellos, negotiate the session codec
        // down to the weakest any peer advertised, then broadcast the
        // roster carrying it.
        let epoch = session_epoch();
        let mut codec = topo.socket.compression;
        let mut addrs: Vec<Option<String>> = vec![None; n];
        addrs[0] = Some(my_addr);
        listener
            .set_nonblocking(true)
            .map_err(|e| SocketError::Io {
                during: "listener setup",
                detail: e.to_string(),
            })?;
        while conns.len() < n - 1 {
            match listener.accept() {
                Ok(mut s) => {
                    let _ = s.set_read_timeout(Some(hello_budget));
                    let mut fb = FrameBuf::new();
                    let hello_deadline = accept_deadline.min(Instant::now() + hello_budget);
                    let hello = read_one_frame(&mut s, &mut fb, hello_deadline, "incoming")
                        .map_err(|e| HelloReject::Other(e.to_string()))
                        .and_then(|p| decode_hello(&p, topo_hash));
                    match hello {
                        Ok((proc, peer_codec, addr))
                            if proc > 0 && proc < n && addrs[proc].is_none() =>
                        {
                            codec = codec.weakest(peer_codec);
                            addrs[proc] = Some(addr);
                            conns.push(PeerConn {
                                proc,
                                stream: s,
                                residual: fb,
                            });
                        }
                        Ok((proc, _, _)) => {
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                            return Err(SocketError::Handshake {
                                addr: "incoming".to_string(),
                                what: format!("duplicate or out-of-range process index {proc}"),
                            });
                        }
                        Err(what) => {
                            // A rogue or garbled connection: reject it,
                            // count it, keep waiting for the real peers.
                            // An unknown codec id gets its own counter —
                            // a legitimate *older* peer never trips this
                            // (it advertises a known id or none at all),
                            // so it is either hostile or a skew bug worth
                            // alerting on.
                            if let HelloReject::UnknownCodec(_) = what {
                                obs::m().codec_rejected.inc();
                            }
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                            let _ = what;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= accept_deadline {
                        obs::m().connect_timeouts.inc();
                        return Err(SocketError::AcceptTimeout {
                            waited_ms: topo.socket.effective_accept_timeout().as_millis() as u64,
                            missing: (n - 1) - conns.len(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(SocketError::Io {
                        during: "accept",
                        detail: e.to_string(),
                    })
                }
            }
        }
        let roster: Vec<String> = addrs.into_iter().map(Option::unwrap_or_default).collect();
        let payload = encode_roster(epoch, codec, &roster);
        for c in &mut conns {
            write_frame(&mut c.stream, &payload).map_err(|e| SocketError::Io {
                during: "roster broadcast",
                detail: e.to_string(),
            })?;
        }
        return Ok(Mesh {
            conns,
            listener,
            roster,
            epoch,
            codec,
        });
    }

    // Non-coordinator: dial the coordinator, learn the roster, dial every
    // lower-indexed peer, accept every higher-indexed one.
    let coord_addr = match &topo.socket.endpoint {
        Endpoint::Tcp(a) => format!("tcp:{a}"),
        Endpoint::Unix(p) => format!("unix:{}", p.display()),
    };
    let mut coord = dial(&coord_addr, dial_deadline, topo.socket.connect_timeout)?;
    write_frame(
        &mut coord,
        &encode_hello(me, topo_hash, topo.socket.compression, &my_addr),
    )
    .map_err(|e| SocketError::Io {
        during: "hello send",
        detail: e.to_string(),
    })?;
    let mut coord_fb = FrameBuf::new();
    let roster_frame = read_one_frame(&mut coord, &mut coord_fb, dial_deadline, &coord_addr)?;
    let (epoch, roster_codec, roster) =
        decode_roster(&roster_frame).ok_or_else(|| SocketError::Handshake {
            addr: coord_addr.clone(),
            what: "coordinator sent an invalid roster".to_string(),
        })?;
    // The coordinator already folded our advertisement into the session
    // codec; clamping again costs nothing and protects against a rogue
    // coordinator upgrading us past what we can speak.
    let codec = topo.socket.compression.weakest(roster_codec);
    if roster.len() != n {
        return Err(SocketError::Handshake {
            addr: coord_addr.clone(),
            what: format!("roster lists {} processes, expected {n}", roster.len()),
        });
    }
    conns.push(PeerConn {
        proc: 0,
        stream: coord,
        residual: coord_fb,
    });

    for (j, addr) in roster.iter().enumerate().take(me).skip(1) {
        let mut s = dial(addr, dial_deadline, topo.socket.connect_timeout)?;
        write_frame(&mut s, &encode_hello(me, topo_hash, codec, "")).map_err(|e| {
            SocketError::Io {
                during: "hello send",
                detail: e.to_string(),
            }
        })?;
        conns.push(PeerConn {
            proc: j,
            stream: s,
            residual: FrameBuf::new(),
        });
    }

    let expected_accepts = n - 1 - me;
    if expected_accepts > 0 {
        listener
            .set_nonblocking(true)
            .map_err(|e| SocketError::Io {
                during: "listener setup",
                detail: e.to_string(),
            })?;
        let mut accepted = 0usize;
        while accepted < expected_accepts {
            match listener.accept() {
                Ok(mut s) => {
                    let _ = s.set_read_timeout(Some(hello_budget));
                    let mut fb = FrameBuf::new();
                    let hello_deadline = accept_deadline.min(Instant::now() + hello_budget);
                    let hello = read_one_frame(&mut s, &mut fb, hello_deadline, "incoming")
                        .map_err(|e| HelloReject::Other(e.to_string()))
                        .and_then(|p| decode_hello(&p, topo_hash));
                    match hello {
                        // Peer-to-peer hellos still carry a codec byte,
                        // but the roster's session codec is authoritative
                        // for every link — the advertisement is ignored.
                        Ok((proc, _, _)) if proc > me && proc < n => {
                            conns.push(PeerConn {
                                proc,
                                stream: s,
                                residual: fb,
                            });
                            accepted += 1;
                        }
                        hello => {
                            if let Err(HelloReject::UnknownCodec(_)) = hello {
                                obs::m().codec_rejected.inc();
                            }
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= accept_deadline {
                        obs::m().connect_timeouts.inc();
                        return Err(SocketError::AcceptTimeout {
                            waited_ms: topo.socket.effective_accept_timeout().as_millis() as u64,
                            missing: expected_accepts - accepted,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(SocketError::Io {
                        during: "accept",
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    Ok(Mesh {
        conns,
        listener,
        roster,
        epoch,
        codec,
    })
}

// ---------------------------------------------------------------------
// The transport itself.
// ---------------------------------------------------------------------

/// How many received data frames between acknowledgements. Bounds the
/// sender's retransmit buffer to roughly this many frames plus whatever
/// is in flight.
const ACK_INTERVAL: u64 = 32;

/// Per-link state guarded by one mutex: the write half, the retransmit
/// buffer and the stream-generation bookkeeping the reconnect protocol
/// needs.
struct LinkState {
    /// Write half; `None` while the link is down or after loss.
    writer: Option<SockStream>,
    /// Data frames appended to this link (sent or buffered).
    tx_seq: u64,
    /// Sequence number of the front of `tx_buf` (last acked frame count).
    tx_base: u64,
    /// Unacknowledged data-frame payloads, sequences `tx_base..tx_seq`.
    tx_buf: VecDeque<Vec<u8>>,
    /// Stream generation: bumped every time a new stream is installed.
    /// A reader thread carries the generation it was spawned for, so a
    /// stale reader's exit cannot tear down its successor.
    generation: u64,
    /// Highest generation whose reader thread has fully drained and
    /// exited. A redial is answered only once the current generation's
    /// reader settled, so `rx_seq` is final.
    settled_gen: u64,
    /// A recovery (redial or grace watchdog) is in flight.
    recovering: bool,
    /// Chaos: this side already severed the link once.
    severed: bool,
}

struct Link {
    proc: usize,
    state: Mutex<LinkState>,
    /// Signalled on every state transition (stream installed, reader
    /// settled, link lost).
    cv: Condvar,
    /// Data frames received on this link, written by the reader thread.
    rx_seq: AtomicU64,
    /// The peer announced clean completion (`ProcDone`).
    done: AtomicBool,
    /// The link degraded permanently (retry budget / grace exhausted).
    lost: AtomicBool,
}

impl Link {
    fn new(proc: usize) -> Self {
        Link {
            proc,
            state: Mutex::new(LinkState {
                writer: None,
                tx_seq: 0,
                tx_base: 0,
                tx_buf: VecDeque::new(),
                generation: 0,
                settled_gen: 0,
                recovering: false,
                severed: false,
            }),
            cv: Condvar::new(),
            rx_seq: AtomicU64::new(0),
            done: AtomicBool::new(false),
            lost: AtomicBool::new(false),
        }
    }
}

/// The mesh handshake runs concurrently with partition startup; remote
/// operations block on this gate until the mesh is up (or failed).
enum MeshState {
    Pending,
    Ready,
    Failed(SocketError),
}

struct MeshGate {
    state: Mutex<MeshState>,
    cv: Condvar,
}

impl MeshGate {
    fn new() -> Self {
        MeshGate {
            state: Mutex::new(MeshState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the mesh resolved; `true` iff it came up.
    fn wait_ready(&self) -> bool {
        let mut g = self.state.lock();
        while matches!(*g, MeshState::Pending) {
            self.cv.wait(&mut g);
        }
        matches!(*g, MeshState::Ready)
    }

    fn set_ready(&self) {
        *self.state.lock() = MeshState::Ready;
        self.cv.notify_all();
    }

    fn set_failed(&self, e: SocketError) {
        let mut g = self.state.lock();
        if matches!(*g, MeshState::Pending) {
            *g = MeshState::Failed(e);
        }
        self.cv.notify_all();
    }

    fn take_error(&self) -> Option<SocketError> {
        match &*self.state.lock() {
            MeshState::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }
}

/// Reconnect policy snapshot taken from [`SocketConfig`] at launch.
#[derive(Clone)]
struct LinkPolicy {
    retry_budget: u32,
    backoff_base: Duration,
    reconnect_grace: Duration,
    hello_timeout: Duration,
    link_fault: Option<LinkFault>,
}

struct Teardown {
    state: Mutex<()>,
    cv: Condvar,
}

/// Socket-backed [`Transport`]: local ranks use in-process mailboxes,
/// remote ranks are reached over framed byte streams with per-link
/// reconnect/retransmit recovery.
pub struct SocketTransport {
    /// `Some(mailbox)` for ranks hosted in this process.
    mailboxes: Vec<Option<Arc<Mailbox>>>,
    /// Liveness of *every* rank; remote flags flip on `RankDone` frames
    /// or on permanent peer loss.
    alive: Vec<AtomicBool>,
    /// Owning process of every world rank.
    rank_owner: Vec<usize>,
    /// This process's index.
    proc_index: usize,
    /// Slot per process; set once during `start`, before the gate opens.
    links: Vec<OnceLock<Arc<Link>>>,
    /// Reader + recovery + acceptor thread handles, joined at finalize.
    thread_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown_sent: AtomicBool,
    teardown: Teardown,
    drain_budget: Duration,
    policy: LinkPolicy,
    gate: MeshGate,
    /// Session epoch + advertised address of every process; set by
    /// `start` together with the links.
    session: OnceLock<(u64, Vec<String>)>,
    /// Negotiated session envelope codec (weakest across all peers);
    /// `None` until the mesh is up, which is fine — `deliver` cannot
    /// run before the gate opens.
    codec: OnceLock<Compression>,
    /// Finalize has begun: recovery threads stand down, the acceptor
    /// loop exits.
    closing: AtomicBool,
}

impl SocketTransport {
    fn new(
        proc_index: usize,
        rank_owner: Vec<usize>,
        num_procs: usize,
        drain_budget: Duration,
        policy: LinkPolicy,
    ) -> Arc<Self> {
        let mailboxes = rank_owner
            .iter()
            .map(|&o| (o == proc_index).then(|| Arc::new(Mailbox::default())))
            .collect();
        let alive = rank_owner.iter().map(|_| AtomicBool::new(true)).collect();
        Arc::new(SocketTransport {
            mailboxes,
            alive,
            rank_owner,
            proc_index,
            links: (0..num_procs).map(|_| OnceLock::new()).collect(),
            thread_handles: Mutex::new(Vec::new()),
            shutdown_sent: AtomicBool::new(false),
            teardown: Teardown {
                state: Mutex::new(()),
                cv: Condvar::new(),
            },
            drain_budget,
            policy,
            gate: MeshGate::new(),
            session: OnceLock::new(),
            codec: OnceLock::new(),
            closing: AtomicBool::new(false),
        })
    }

    /// Installs the handshaken connections, spawns one reader thread per
    /// peer plus the redial acceptor, and opens the mesh gate. Called
    /// exactly once, from the mesh thread.
    fn start(self: &Arc<Self>, mesh: Mesh) {
        let _ = self.session.set((mesh.epoch, mesh.roster));
        let _ = self.codec.set(mesh.codec);
        for conn in mesh.conns {
            let link = Arc::new(Link::new(conn.proc));
            if let Some(slot) = self.links.get(conn.proc) {
                let _ = slot.set(Arc::clone(&link));
            }
            let gen = {
                let mut st = link.state.lock();
                st.generation += 1;
                match conn.stream.try_clone() {
                    Ok(w) => st.writer = Some(w),
                    Err(_) => {
                        // Cloning the descriptor failed: the peer is
                        // unreachable for writes from the start.
                        drop(st);
                        self.finish_lost(&link);
                        continue;
                    }
                }
                st.generation
            };
            self.spawn_reader(conn.proc, conn.stream, conn.residual, gen);
        }
        self.spawn_acceptor(mesh.listener);
        self.gate.set_ready();
    }

    /// The mesh never came up: fail the gate, release local ranks and
    /// mark every remote rank dead so nothing blocks forever.
    fn mesh_failed(&self, e: SocketError) {
        self.gate.set_failed(e);
        for (r, &o) in self.rank_owner.iter().enumerate() {
            if o != self.proc_index {
                self.alive[r].store(false, Ordering::Release);
            }
        }
        self.shutdown_local();
        let _g = self.teardown.state.lock();
        self.teardown.cv.notify_all();
    }

    fn link(&self, proc: usize) -> Option<&Arc<Link>> {
        self.links.get(proc).and_then(|slot| slot.get())
    }

    fn all_links(&self) -> impl Iterator<Item = &Arc<Link>> {
        self.links.iter().filter_map(|slot| slot.get())
    }

    fn spawn_reader(self: &Arc<Self>, proc: usize, stream: SockStream, fb: FrameBuf, gen: u64) {
        let this = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("sock-rx-p{proc}"))
            .spawn(move || this.reader_loop(proc, stream, fb, gen));
        match h {
            Ok(h) => self.thread_handles.lock().push(h),
            Err(_) => {
                if let Some(link) = self.link(proc) {
                    let link = Arc::clone(link);
                    {
                        let mut st = link.state.lock();
                        st.settled_gen = st.settled_gen.max(gen);
                    }
                    self.finish_lost(&link);
                }
            }
        }
    }

    /// Sends one *data* frame on a link: sequenced, buffered for
    /// retransmission, written through if the stream is up — silently
    /// queued while a reconnect is in flight.
    fn send_data(&self, link: &Arc<Link>, payload: &[u8]) -> std::result::Result<(), ()> {
        if link.lost.load(Ordering::Acquire) {
            return Err(());
        }
        let mut st = link.state.lock();
        st.tx_seq += 1;
        st.tx_buf.push_back(payload.to_vec());
        if st.writer.is_some() {
            let severed_now = self.chaos_should_sever(link.proc, &mut st);
            let write_failed = match st.writer.as_mut() {
                Some(w) => write_frame(w, payload).is_err(),
                None => false,
            };
            if write_failed || severed_now {
                // Shut the stream down and let the reader thread drive
                // recovery once it has drained everything in flight.
                if let Some(w) = st.writer.take() {
                    w.shutdown_both();
                }
            }
        }
        Ok(())
    }

    /// Chaos hook, send side: the lower-indexed side of each link severs
    /// it once after the configured number of sent data frames.
    fn chaos_should_sever(&self, peer_proc: usize, st: &mut LinkState) -> bool {
        let Some(fault) = self.policy.link_fault else {
            return false;
        };
        if self.proc_index > peer_proc || st.severed || st.tx_seq < fault.sever_after_frames {
            return false;
        }
        st.severed = true;
        obs::m().chaos_severs.inc();
        true
    }

    /// Chaos hook, receive side: a link's heavy direction may be inbound
    /// (the analyzer process mostly receives), so the lower-indexed side
    /// also severs once after *receiving* the configured number of data
    /// frames. Shares the once-per-link `severed` flag with the send
    /// hook.
    fn chaos_maybe_sever_rx(&self, link: &Arc<Link>) {
        let Some(fault) = self.policy.link_fault else {
            return;
        };
        if self.proc_index > link.proc
            || link.rx_seq.load(Ordering::Acquire) < fault.sever_after_frames
        {
            return;
        }
        let mut st = link.state.lock();
        if st.severed {
            return;
        }
        st.severed = true;
        obs::m().chaos_severs.inc();
        // Shutting the socket down makes both readers see EOF; the
        // normal recovery path (grace watchdog here, redial on the
        // peer) takes it from there.
        if let Some(w) = st.writer.take() {
            w.shutdown_both();
        }
    }

    /// Wraps an encoded envelope in a `K_ENVELOPE_Z` frame when the
    /// session codec is LZ4 and compression actually wins. Runs *before*
    /// `send_data` so the retransmit buffer holds the exact wire bytes —
    /// a retransmitted frame is bit-identical to the original send.
    fn maybe_compress_envelope(&self, payload: Vec<u8>) -> Vec<u8> {
        if self.codec.get() != Some(&Compression::Lz4) || payload.len() < MIN_ENVELOPE_COMPRESS {
            return payload;
        }
        thread_local! {
            static ENC: std::cell::RefCell<Lz4Encoder> =
                std::cell::RefCell::new(Lz4Encoder::new());
        }
        let mut out = Vec::with_capacity(1 + max_compressed_len(payload.len()));
        out.push(K_ENVELOPE_Z);
        ENC.with(|enc| enc.borrow_mut().compress(&payload, &mut out));
        if out.len() < payload.len() {
            obs::m().envelopes_compressed.inc();
            out
        } else {
            payload
        }
    }

    /// Sends one *link* frame (ack / reconnect control): unsequenced,
    /// never buffered, errors ignored (the reader notices real loss).
    fn send_link_frame(&self, link: &Arc<Link>, payload: &[u8]) {
        let mut st = link.state.lock();
        if let Some(w) = st.writer.as_mut() {
            if write_frame(w, payload).is_err() {
                if let Some(w) = st.writer.take() {
                    w.shutdown_both();
                }
            }
        }
    }

    fn broadcast(&self, payload: &[u8]) {
        for link in self.all_links() {
            let _ = self.send_data(link, payload);
        }
    }

    /// Prunes the retransmit buffer up to the peer's acknowledged count.
    fn prune_acked(&self, link: &Arc<Link>, acked: u64) {
        let mut st = link.state.lock();
        while st.tx_base < acked {
            if st.tx_buf.pop_front().is_none() {
                break;
            }
            st.tx_base += 1;
        }
    }

    /// Permanent link loss: flips rank liveness, ticks the disconnect
    /// counter exactly once, wakes everything waiting on the link.
    fn finish_lost(&self, link: &Arc<Link>) {
        if link.lost.swap(true, Ordering::AcqRel) {
            return;
        }
        obs::m().peer_disconnects.inc();
        {
            let mut st = link.state.lock();
            if let Some(w) = st.writer.take() {
                w.shutdown_both();
            }
            st.recovering = false;
        }
        link.cv.notify_all();
        for (r, &o) in self.rank_owner.iter().enumerate() {
            if o == link.proc {
                self.alive[r].store(false, Ordering::Release);
            }
        }
        let _g = self.teardown.state.lock();
        self.teardown.cv.notify_all();
    }

    fn shutdown_local(&self) {
        for mb in self.mailboxes.iter().flatten() {
            mb.shutdown();
        }
    }

    fn handle_frame(&self, proc: usize, payload: &Bytes) -> bool {
        match payload.first().copied() {
            Some(K_ENVELOPE) => {
                if let Some((dst, env)) = decode_envelope(payload) {
                    if let Some(Some(mb)) = self.mailboxes.get(dst) {
                        // Remote deliveries are always eager: the socket's
                        // flow control *is* the back-pressure. A Shutdown
                        // error here just means the job is tearing down.
                        let _ = mb.deliver(env, usize::MAX);
                    }
                }
                true
            }
            Some(K_ENVELOPE_Z) => {
                // Inflate, then reuse the plain envelope path. Any
                // defect — truncated block, bad offset, declared-size
                // mismatch, wrong inner kind — makes the connection
                // off-protocol (`false` → link loss), exactly like an
                // unknown frame kind.
                let Some(z) = payload.get(1..) else {
                    return false;
                };
                let mut raw = bytes::BytesMut::new();
                if decompress_into(z, MAX_FRAME_LEN, &mut raw).is_err() {
                    return false;
                }
                let raw = raw.freeze();
                if raw.first() != Some(&K_ENVELOPE) {
                    return false;
                }
                if let Some((dst, env)) = decode_envelope(&raw) {
                    if let Some(Some(mb)) = self.mailboxes.get(dst) {
                        let _ = mb.deliver(env, usize::MAX);
                    }
                }
                true
            }
            Some(K_RANK_DONE) => {
                if let Some(r) = payload
                    .get(1..5)
                    .and_then(|b| b.try_into().ok())
                    .map(u32::from_le_bytes)
                {
                    if let Some(flag) = self.alive.get(r as usize) {
                        flag.store(false, Ordering::Release);
                    }
                }
                true
            }
            Some(K_SHUTDOWN) => {
                // A remote rank failed: release every local blocked rank,
                // exactly like the in-process teardown.
                self.shutdown_local();
                true
            }
            Some(K_PROC_DONE) => {
                if let Some(link) = self.link(proc) {
                    link.done.store(true, Ordering::Release);
                }
                let _g = self.teardown.state.lock();
                self.teardown.cv.notify_all();
                true
            }
            // Unknown or handshake-phase frame on the data plane: the
            // peer is off-protocol. Treat the connection as lost.
            _ => false,
        }
    }

    fn reader_loop(
        self: Arc<Self>,
        proc: usize,
        mut stream: SockStream,
        mut fb: FrameBuf,
        gen: u64,
    ) {
        let _ = stream.set_read_timeout(None);
        let mut buf = vec![0u8; 64 * 1024];
        let link = self.link(proc).map(Arc::clone);
        let mut unacked: u64 = 0;
        let clean = 'conn: loop {
            loop {
                match fb.next_frame() {
                    Ok(Some(p)) => {
                        obs::m().frames_received.inc();
                        match p.first().copied() {
                            Some(K_ACK) => {
                                if let (Some(link), Some(acked)) = (
                                    link.as_ref(),
                                    p.get(1..9)
                                        .and_then(|b| b.try_into().ok())
                                        .map(u64::from_le_bytes),
                                ) {
                                    self.prune_acked(link, acked);
                                }
                            }
                            Some(K_ENVELOPE) | Some(K_ENVELOPE_Z) | Some(K_RANK_DONE)
                            | Some(K_SHUTDOWN) | Some(K_PROC_DONE) => {
                                if let Some(link) = link.as_ref() {
                                    link.rx_seq.fetch_add(1, Ordering::AcqRel);
                                    unacked += 1;
                                    if unacked >= ACK_INTERVAL {
                                        unacked = 0;
                                        let rx = link.rx_seq.load(Ordering::Acquire);
                                        self.send_link_frame(link, &encode_ack(rx));
                                    }
                                    self.chaos_maybe_sever_rx(link);
                                }
                                if !self.handle_frame(proc, &p) {
                                    break 'conn false;
                                }
                            }
                            _ => break 'conn false,
                        }
                    }
                    Ok(None) => break,
                    // Corrupt framing: no resync is possible, the
                    // connection is unusable.
                    Err(_) => break 'conn false,
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => break 'conn true,
                Ok(n) => {
                    obs::m().bytes_received.add(n as u64);
                    fb.push(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break 'conn true,
            }
        };
        self.reader_exited(proc, gen, clean);
    }

    /// Classifies a reader thread's exit: clean completion, stale
    /// generation, teardown — or a mid-session drop that starts the
    /// reconnect protocol for the link.
    fn reader_exited(self: &Arc<Self>, proc: usize, gen: u64, clean: bool) {
        let Some(link) = self.link(proc).map(Arc::clone) else {
            return;
        };
        let start_recovery = {
            let mut st = link.state.lock();
            st.settled_gen = st.settled_gen.max(gen);
            link.cv.notify_all();
            let peer_done = link.done.load(Ordering::Acquire);
            let stale = gen != st.generation;
            let off_protocol = !clean;
            if stale || link.lost.load(Ordering::Acquire) || st.recovering {
                false
            } else if peer_done && !off_protocol {
                // Normal close after ProcDone: nothing to recover.
                false
            } else if self.closing.load(Ordering::Acquire) {
                // Our own finalize shut the streams down.
                false
            } else if peer_done && off_protocol {
                // Garbage after a clean ProcDone: data is complete, the
                // peer is settled either way.
                false
            } else {
                // EOF/garbage without ProcDone: the stream dropped
                // mid-session. Take the link down and recover.
                if let Some(w) = st.writer.take() {
                    w.shutdown_both();
                }
                st.recovering = true;
                true
            }
        };
        if !start_recovery {
            let _g = self.teardown.state.lock();
            self.teardown.cv.notify_all();
            return;
        }
        let this = Arc::clone(self);
        let l = Arc::clone(&link);
        let name = format!("sock-rec-p{proc}");
        let spawned = std::thread::Builder::new().name(name).spawn(move || {
            if this.proc_index > l.proc {
                this.redial_loop(&l);
            } else {
                this.grace_watchdog(&l);
            }
        });
        match spawned {
            Ok(h) => self.thread_handles.lock().push(h),
            Err(_) => self.finish_lost(&link),
        }
    }

    /// Dialer-side recovery: bounded exponential-backoff redials of the
    /// peer's retained listener.
    fn redial_loop(self: &Arc<Self>, link: &Arc<Link>) {
        let mut backoff = self.policy.backoff_base;
        for attempt in 0..self.policy.retry_budget {
            if self.closing.load(Ordering::Acquire) || link.lost.load(Ordering::Acquire) {
                return;
            }
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            obs::m().reconnect_attempts.inc();
            match self.redial_once(link) {
                Ok(()) => {
                    obs::m().reconnects.inc();
                    return;
                }
                Err(fatal) if fatal => break,
                Err(_) => {}
            }
        }
        obs::m().reconnect_exhausted.inc();
        self.finish_lost(link);
    }

    /// One redial attempt. `Err(true)` is fatal (stale epoch / lost),
    /// `Err(false)` is retryable.
    fn redial_once(self: &Arc<Self>, link: &Arc<Link>) -> std::result::Result<(), bool> {
        let Some((epoch, roster)) = self.session.get() else {
            return Err(true);
        };
        let Some(addr) = roster.get(link.proc) else {
            return Err(true);
        };
        let mut s = dial_once(addr).map_err(|_| false)?;
        let rx = link.rx_seq.load(Ordering::Acquire);
        write_frame(&mut s, &encode_reconn(self.proc_index, *epoch, rx)).map_err(|_| false)?;
        // The acceptor may hold the reply until its own reader drained,
        // bounded by its grace window.
        let deadline = Instant::now() + self.policy.reconnect_grace + self.policy.hello_timeout;
        let mut fb = FrameBuf::new();
        let reply = read_one_frame(&mut s, &mut fb, deadline, addr).map_err(|_| false)?;
        match reply.first().copied() {
            Some(K_RECONN_OK) => {
                let Some(peer_rx) = decode_reconn_ok(&reply) else {
                    return Err(false);
                };
                self.install_stream(link, s, fb, peer_rx)
            }
            Some(K_RECONN_NAK) => {
                let reason = reply.get(1).copied().unwrap_or(0);
                if reason == NAK_STALE_EPOCH {
                    obs::m().reconnect_stale_epoch.inc();
                }
                // Stale epoch or lost link: no future attempt can
                // succeed. Busy/unknown may be a race; retry.
                Err(reason == NAK_STALE_EPOCH || reason == NAK_LINK_LOST)
            }
            _ => Err(false),
        }
    }

    /// Installs a re-established stream on a link: retransmits the
    /// suffix the peer never received, swaps the writer in and spawns
    /// the next-generation reader. Shared by both sides.
    fn install_stream(
        self: &Arc<Self>,
        link: &Arc<Link>,
        stream: SockStream,
        residual: FrameBuf,
        peer_rx: u64,
    ) -> std::result::Result<(), bool> {
        let mut s = stream;
        let gen = {
            let mut st = link.state.lock();
            if link.lost.load(Ordering::Acquire) {
                return Err(true);
            }
            // The peer acknowledged everything up to `peer_rx`; drop it
            // from the buffer, resend the rest in order.
            while st.tx_base < peer_rx {
                if st.tx_buf.pop_front().is_none() {
                    break;
                }
                st.tx_base += 1;
            }
            for payload in st.tx_buf.iter() {
                if write_frame(&mut s, payload).is_err() {
                    return Err(false);
                }
                obs::m().frames_retransmitted.inc();
            }
            let writer = s.try_clone().map_err(|_| false)?;
            st.writer = Some(writer);
            st.generation += 1;
            st.recovering = false;
            st.generation
        };
        link.cv.notify_all();
        self.spawn_reader(link.proc, s, residual, gen);
        Ok(())
    }

    /// Acceptor-side recovery: wait for the peer to redial within the
    /// grace window; degrade to `PeerLost` if it never does. A dead
    /// peer's redials fail instantly, so the dialer's budget is usually
    /// exhausted well inside this window.
    fn grace_watchdog(self: &Arc<Self>, link: &Arc<Link>) {
        let deadline = Instant::now() + self.policy.reconnect_grace;
        let mut st = link.state.lock();
        loop {
            if !st.recovering || link.lost.load(Ordering::Acquire) {
                return; // redial landed (or loss already recorded)
            }
            if self.closing.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            link.cv.wait_for(&mut st, deadline - now);
        }
        drop(st);
        obs::m().reconnect_exhausted.inc();
        self.finish_lost(link);
    }

    /// The redial acceptor: owns the retained listener for the rest of
    /// the session and splices re-established streams back into links.
    fn spawn_acceptor(self: &Arc<Self>, listener: SockListener) {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        let this = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name("sock-accept".to_string())
            .spawn(move || loop {
                if this.closing.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok(s) => this.handle_redial(s),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            });
        if let Ok(h) = h {
            self.thread_handles.lock().push(h);
        }
    }

    /// Validates one incoming redial: protocol magic, session epoch and
    /// link identity, then answers with our received count and resumes
    /// the stream.
    fn handle_redial(self: &Arc<Self>, mut s: SockStream) {
        let _ = s.set_read_timeout(Some(self.policy.hello_timeout));
        let mut fb = FrameBuf::new();
        let deadline = Instant::now() + self.policy.hello_timeout;
        let frame = match read_one_frame(&mut s, &mut fb, deadline, "redial") {
            Ok(f) => f,
            Err(_) => {
                obs::m().handshake_rejected.inc();
                s.shutdown_both();
                return;
            }
        };
        let (proc, peer_epoch, peer_rx) = match decode_reconn(&frame) {
            Ok(t) => t,
            Err(_) => {
                obs::m().handshake_rejected.inc();
                s.shutdown_both();
                return;
            }
        };
        let nak = |mut s: SockStream, reason: u8| {
            let _ = write_frame(&mut s, &[K_RECONN_NAK, reason]);
            s.shutdown_both();
        };
        let Some((epoch, _)) = self.session.get() else {
            nak(s, NAK_BUSY);
            return;
        };
        if peer_epoch != *epoch {
            obs::m().reconnect_stale_epoch.inc();
            nak(s, NAK_STALE_EPOCH);
            return;
        }
        if proc <= self.proc_index {
            obs::m().handshake_rejected.inc();
            nak(s, NAK_UNKNOWN_LINK);
            return;
        }
        let Some(link) = self.link(proc).map(Arc::clone) else {
            obs::m().handshake_rejected.inc();
            nak(s, NAK_UNKNOWN_LINK);
            return;
        };
        if link.lost.load(Ordering::Acquire) {
            nak(s, NAK_LINK_LOST);
            return;
        }
        // Wait until our reader for the dying stream has fully drained,
        // so `rx_seq` is final and the retransmit suffix is exact. The
        // redial itself proves the old stream is gone, so force it shut
        // to unblock that reader.
        {
            let grace_deadline = Instant::now() + self.policy.reconnect_grace;
            let mut st = link.state.lock();
            if let Some(w) = st.writer.take() {
                w.shutdown_both();
            }
            while st.settled_gen < st.generation {
                if link.lost.load(Ordering::Acquire) {
                    drop(st);
                    nak(s, NAK_LINK_LOST);
                    return;
                }
                let now = Instant::now();
                if now >= grace_deadline {
                    drop(st);
                    nak(s, NAK_BUSY);
                    return;
                }
                link.cv.wait_for(&mut st, grace_deadline - now);
            }
            // Claim the recovery so a late grace watchdog stands down.
            st.recovering = false;
        }
        link.cv.notify_all();
        let rx = link.rx_seq.load(Ordering::Acquire);
        if write_frame(&mut s, &encode_reconn_ok(rx)).is_err() {
            s.shutdown_both();
            return;
        }
        if self.install_stream(&link, s, fb, peer_rx).is_ok() {
            obs::m().reconnects.inc();
        }
    }

    fn peers_settled(&self) -> bool {
        self.all_links()
            .all(|l| l.done.load(Ordering::Acquire) || l.lost.load(Ordering::Acquire))
    }
}

impl Transport for SocketTransport {
    fn world_size(&self) -> usize {
        self.rank_owner.len()
    }

    fn backend_name(&self) -> &'static str {
        "socket"
    }

    fn deliver(&self, dst_world: usize, env: Envelope, eager_limit: usize) -> Result<Delivery> {
        if let Some(Some(mb)) = self.mailboxes.get(dst_world) {
            return mb.deliver(env, eager_limit);
        }
        // First remote operation blocks here until the overlapped mesh
        // handshake resolves.
        if !self.gate.wait_ready() {
            return Err(RtError::Dropped { dst: dst_world });
        }
        let proc = *self
            .rank_owner
            .get(dst_world)
            .ok_or(RtError::Protocol("destination rank outside the world"))?;
        let link = self
            .link(proc)
            .ok_or(RtError::Protocol("no connection to destination process"))?;
        let payload = self.maybe_compress_envelope(encode_envelope(dst_world, &env));
        if self.send_data(link, &payload).is_err() {
            return Err(RtError::Dropped { dst: dst_world });
        }
        Ok(Delivery::Complete)
    }

    fn local_mailbox(&self, world_rank: usize) -> Option<&Arc<Mailbox>> {
        self.mailboxes.get(world_rank).and_then(|m| m.as_ref())
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        self.alive
            .get(world_rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    fn mark_rank_done(&self, world_rank: usize) {
        self.alive[world_rank].store(false, Ordering::Release);
        // Ordered after every envelope the rank wrote (same per-link
        // sequence, same connection): peers observing the flag flip
        // already have all of the rank's data in their mailboxes.
        if self.gate.wait_ready() {
            let mut payload = vec![K_RANK_DONE];
            payload.extend_from_slice(&(world_rank as u32).to_le_bytes());
            self.broadcast(&payload);
        }
    }

    fn shutdown_all(&self) {
        self.shutdown_local();
        if !self.shutdown_sent.swap(true, Ordering::AcqRel) && self.gate.wait_ready() {
            self.broadcast(&[K_SHUTDOWN]);
        }
    }

    fn finalize_local(&self) {
        // 0. If the mesh never came up there is nothing to drain.
        if !self.gate.wait_ready() {
            self.closing.store(true, Ordering::Release);
            return;
        }
        // 1. Announce clean completion of this process…
        self.broadcast(&[K_PROC_DONE]);
        // 2. …wait until every peer has done the same (or vanished)…
        let deadline = Instant::now() + self.drain_budget;
        {
            let mut g = self.teardown.state.lock();
            while !self.peers_settled() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.teardown.cv.wait_for(&mut g, deadline - now);
            }
        }
        // 3. …then close. Recovery threads and the acceptor stand down;
        // readers (ours and the peers') wake with EOF *after* ProcDone,
        // so nobody classifies this as a crash.
        self.closing.store(true, Ordering::Release);
        for link in self.all_links() {
            let st = link.state.lock();
            if let Some(w) = st.writer.as_ref() {
                w.shutdown_both();
            }
            drop(st);
            link.cv.notify_all();
        }
        // Threads can push handles (a recovery spawning its reader)
        // while we drain, so sweep until the list stays empty.
        loop {
            let handles: Vec<_> = self.thread_handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Multi-process launch.
// ---------------------------------------------------------------------

impl Launcher {
    /// Runs this job as one of `topo.num_procs` cooperating OS processes.
    ///
    /// Every process must be handed the *same* job description (same
    /// partitions in the same order, same fault plan and eager limit) and
    /// the same topology apart from `proc_index`; the handshake
    /// cross-checks a topology hash and rejects mismatches with a typed
    /// [`SocketError`]. Ranks of partitions assigned to `proc_index` run
    /// here as threads; all other ranks are reached through the socket
    /// mesh. The mesh handshake overlaps partition startup: local ranks
    /// begin executing immediately and block only at their first remote
    /// operation. Returns when all locally hosted ranks have finished and
    /// the mesh has drained; a handshake failure takes precedence over
    /// the rank failures it induced.
    pub fn run_multiproc(self, topo: MultiprocTopology) -> std::result::Result<(), MultiprocError> {
        assert!(!self.specs.is_empty(), "no partitions configured");
        topo.socket.validate()?;
        if topo.num_procs == 0 || topo.proc_index >= topo.num_procs {
            return Err(SocketError::BadTopology {
                what: format!(
                    "process index {} outside 0..{}",
                    topo.proc_index, topo.num_procs
                ),
            }
            .into());
        }
        let infos = self.build_infos();
        let n_partitions = infos.len();
        let mut rank_owner = Vec::new();
        for info in &infos {
            let owner = topo
                .assign
                .proc_of(info.id, n_partitions, topo.num_procs)
                .map_err(MultiprocError::Socket)?;
            rank_owner.extend(std::iter::repeat_n(owner, info.size));
        }
        let topo_hash = topology_hash(topo.num_procs, &rank_owner);

        let policy = LinkPolicy {
            retry_budget: topo.socket.retry_budget,
            backoff_base: topo.socket.backoff_base,
            reconnect_grace: topo.socket.reconnect_grace,
            hello_timeout: topo.socket.hello_timeout,
            link_fault: topo.socket.link_fault,
        };
        let transport = SocketTransport::new(
            topo.proc_index,
            rank_owner.clone(),
            topo.num_procs,
            topo.socket.connect_timeout,
            policy,
        );

        // Overlap the coordinator handshake with partition startup: the
        // mesh assembles on its own thread while local ranks construct
        // and run; the transport's gate serializes only the first remote
        // operation against handshake completion.
        let mesh_thread = if topo.num_procs == 1 {
            transport.gate.set_ready();
            None
        } else {
            let t = Arc::clone(&transport);
            let topo2 = topo.clone();
            let h = std::thread::Builder::new()
                .name("sock-mesh".to_string())
                .spawn(move || match connect_mesh(&topo2, topo_hash) {
                    Ok(mesh) => t.start(mesh),
                    Err(e) => t.mesh_failed(e),
                })
                .map_err(|e| SocketError::Io {
                    during: "mesh thread spawn",
                    detail: e.to_string(),
                })?;
            Some(h)
        };

        let universe = Universe::with_transport(
            infos,
            self.eager_limit,
            self.fault_plan.clone(),
            Arc::clone(&transport) as Arc<dyn Transport>,
        );
        let me = topo.proc_index;
        let failures = spawn_and_join(&universe, &self.specs, self.stack_size, |world_rank| {
            rank_owner[world_rank] == me
        });
        universe.transport().finalize_local();
        if let Some(h) = mesh_thread {
            let _ = h.join();
        }
        // A mesh failure explains any rank failures it induced: surface
        // the root cause, not the symptoms.
        if let Some(e) = transport.gate.take_error() {
            return Err(MultiprocError::Socket(e));
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(LaunchError { failures }.into())
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;
    use crate::mailbox::make_envelope;

    #[test]
    fn envelope_roundtrips_on_the_wire() {
        let env = make_envelope(
            Context::Stream,
            CommId(0xDEAD_BEEF_0042),
            3,
            7,
            0x0500_0001,
            Bytes::from(vec![9u8; 300]),
        );
        let wire = Bytes::from(encode_envelope(11, &env));
        let (dst, back) = decode_envelope(&wire).unwrap();
        assert_eq!(dst, 11);
        assert_eq!(back.header, env.header);
        assert_eq!(back.payload, env.payload);
    }

    #[test]
    fn context_codes_are_stable() {
        for ctx in [Context::Pt2pt, Context::Coll, Context::Stream] {
            assert_eq!(ctx_from_u8(ctx_to_u8(ctx)), Some(ctx));
        }
        assert_eq!(ctx_from_u8(9), None);
    }

    #[test]
    fn hello_roundtrip_and_validation() {
        let wire = Bytes::from(encode_hello(3, 0xABCD, Compression::Lz4, "unix:/tmp/x"));
        let (proc, codec, addr) = decode_hello(&wire, 0xABCD).unwrap();
        assert_eq!(
            (proc, codec, addr.as_str()),
            (3, Compression::Lz4, "unix:/tmp/x")
        );
        // Wrong topology hash is rejected with a description.
        let err = decode_hello(&wire, 0x1234).unwrap_err().to_string();
        assert!(err.contains("topology mismatch"), "{err}");
        // Garbage is rejected, not mis-decoded.
        let garbage = Bytes::from_static(b"\x01nonsense....................");
        assert!(decode_hello(&garbage, 0xABCD).is_err());
    }

    /// A version-2 hello (no codec byte, address at offset 17) still
    /// decodes — as a plain-codec peer — so old builds can join.
    #[test]
    fn legacy_v2_hello_decodes_as_plain_codec() {
        let mut wire = Vec::new();
        wire.push(K_HELLO);
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.extend_from_slice(&VERSION_LEGACY.to_le_bytes());
        wire.extend_from_slice(&2u16.to_le_bytes());
        wire.extend_from_slice(&0xABCDu64.to_le_bytes());
        wire.extend_from_slice(b"unix:/tmp/legacy");
        let (proc, codec, addr) = decode_hello(&Bytes::from(wire), 0xABCD).unwrap();
        assert_eq!(
            (proc, codec, addr.as_str()),
            (2, Compression::None, "unix:/tmp/legacy")
        );
    }

    /// An unknown codec id is a *typed* rejection, distinguishable from
    /// generic handshake garbage.
    #[test]
    fn unknown_codec_id_is_a_typed_rejection() {
        let mut wire = encode_hello(1, 0xABCD, Compression::None, "unix:/tmp/x");
        wire[17] = 0x7F; // codec byte: no such codec
        let err = decode_hello(&Bytes::from(wire), 0xABCD).unwrap_err();
        assert!(
            matches!(err, HelloReject::UnknownCodec(0x7F)),
            "want UnknownCodec(0x7F), got {err}"
        );
    }

    #[test]
    fn roster_roundtrips_with_epoch_and_codec() {
        let addrs = vec![
            "tcp:127.0.0.1:9000".to_string(),
            String::new(),
            "unix:/tmp/a.sock".to_string(),
        ];
        for codec in [Compression::None, Compression::Lz4] {
            let wire = Bytes::from(encode_roster(0xFEED_F00D, codec, &addrs));
            assert_eq!(
                decode_roster(&wire).unwrap(),
                (0xFEED_F00D, codec, addrs.clone())
            );
        }
        assert_eq!(decode_roster(&Bytes::from_static(b"\x07junk")), None);
        // A legacy roster without the codec tail is a plain session.
        let legacy = {
            let mut w = encode_roster(7, Compression::Lz4, &addrs);
            w.pop();
            Bytes::from(w)
        };
        assert_eq!(
            decode_roster(&legacy).unwrap(),
            (7, Compression::None, addrs.clone())
        );
        // An unknown codec tail fails the parse instead of guessing.
        let mut bad = encode_roster(7, Compression::Lz4, &addrs);
        if let Some(last) = bad.last_mut() {
            *last = 0x7F;
        }
        assert_eq!(decode_roster(&Bytes::from(bad)), None);
    }

    #[test]
    fn reconn_frames_roundtrip_and_validate() {
        let wire = Bytes::from(encode_reconn(5, 0xE90C4, 1234));
        assert_eq!(decode_reconn(&wire).unwrap(), (5, 0xE90C4, 1234));
        // Garbage magic is rejected with a description.
        let mut bad = encode_reconn(5, 1, 2);
        bad[1] ^= 0xFF;
        let err = decode_reconn(&Bytes::from(bad)).unwrap_err();
        assert!(err.contains("magic"), "{err}");
        // Truncation never mis-decodes.
        let trunc = Bytes::from(encode_reconn(5, 1, 2)[..10].to_vec());
        assert!(decode_reconn(&trunc).is_err());

        let ok = Bytes::from(encode_reconn_ok(987));
        assert_eq!(decode_reconn_ok(&ok), Some(987));
        assert_eq!(decode_reconn_ok(&Bytes::from_static(b"\x09abc")), None);

        let ack = encode_ack(42);
        assert_eq!(ack[0], K_ACK);
        assert_eq!(u64::from_le_bytes(ack[1..9].try_into().unwrap()), 42);
    }

    #[test]
    fn session_epochs_are_nonzero_and_distinct_across_time() {
        let a = session_epoch();
        assert_ne!(a, 0);
        // Two calls in a row *may* collide within clock resolution, but
        // a sample of many must produce at least two distinct values.
        let distinct: std::collections::HashSet<u64> = (0..64)
            .map(|_| {
                std::thread::sleep(Duration::from_micros(50));
                session_epoch()
            })
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn topology_hash_is_order_sensitive() {
        let a = topology_hash(2, &[0, 0, 1]);
        let b = topology_hash(2, &[0, 1, 0]);
        let c = topology_hash(3, &[0, 0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, topology_hash(2, &[0, 0, 1]));
    }

    #[test]
    fn partition_assign_maps_and_validates() {
        // Block: 4 partitions over 2 procs → [0,0,1,1].
        let block: Vec<usize> = (0..4)
            .map(|p| PartitionAssign::Block.proc_of(p, 4, 2).unwrap())
            .collect();
        assert_eq!(block, vec![0, 0, 1, 1]);
        let rr: Vec<usize> = (0..4)
            .map(|p| PartitionAssign::RoundRobin.proc_of(p, 4, 2).unwrap())
            .collect();
        assert_eq!(rr, vec![0, 1, 0, 1]);
        assert_eq!(
            PartitionAssign::Explicit(vec![1, 0])
                .proc_of(1, 2, 2)
                .unwrap(),
            0
        );
        assert!(matches!(
            PartitionAssign::Explicit(vec![5]).proc_of(0, 1, 2),
            Err(SocketError::BadTopology { .. })
        ));
        assert!(matches!(
            PartitionAssign::Explicit(vec![]).proc_of(0, 1, 2),
            Err(SocketError::BadTopology { .. })
        ));
    }

    #[test]
    fn socket_config_validation_rejects_zero_and_absurd_values() {
        let ep = || Endpoint::Tcp("127.0.0.1:0".to_string());
        assert!(SocketConfig::new(ep()).validate().is_ok());
        let cases: Vec<SocketConfig> = vec![
            SocketConfig::new(ep()).connect_timeout(Duration::ZERO),
            SocketConfig::new(ep()).connect_timeout(Duration::from_secs(7200)),
            SocketConfig::new(ep()).accept_timeout(Duration::ZERO),
            SocketConfig::new(ep()).hello_timeout(Duration::ZERO),
            SocketConfig::new(ep()).retry_budget(0),
            SocketConfig::new(ep()).retry_budget(65),
            SocketConfig::new(ep()).backoff_base(Duration::ZERO),
            SocketConfig::new(ep()).backoff_base(Duration::from_secs(90)),
            SocketConfig::new(ep()).reconnect_grace(Duration::ZERO),
            SocketConfig::new(ep()).link_fault(LinkFault {
                sever_after_frames: 0,
            }),
        ];
        for cfg in cases {
            assert!(
                matches!(cfg.validate(), Err(SocketError::InvalidConfig { .. })),
                "accepted invalid config: {cfg:?}"
            );
        }
        // Defaults fall back: accept budget inherits connect budget.
        let cfg = SocketConfig::new(ep()).connect_timeout(Duration::from_millis(250));
        assert_eq!(cfg.effective_accept_timeout(), Duration::from_millis(250));
        assert_eq!(
            SocketConfig::new(ep())
                .accept_timeout(Duration::from_secs(1))
                .effective_accept_timeout(),
            Duration::from_secs(1)
        );
    }
}
