//! Socket transport backend: one job, N OS processes.
//!
//! Every process hosts a subset of the world's ranks (threads, exactly as
//! in the in-process backend) and reaches the others over Unix-domain or
//! TCP sockets. Envelopes travel as length-prefixed, checksummed frames
//! (reusing the codec in `opmr-events`), multiplexed over one full-duplex
//! connection per process pair. The mailbox matching engine, the fault
//! layer and the stream protocols all sit *above* the
//! [`crate::Transport`] trait and are byte-for-byte the same code as in
//! the `InProc` backend — `tests/transport_conformance.rs` runs the same
//! assertions against both.
//!
//! # Handshake
//!
//! Process 0 is the coordinator: it listens on the configured
//! [`Endpoint`]; every other process dials it and sends a `Hello` frame
//! carrying a protocol magic/version, its process index and a hash of the
//! topology (process count plus the rank→process map, which every process
//! derives from the same job description). The coordinator validates each
//! `Hello` — garbage or mismatched peers are rejected with a typed error
//! and an obs counter, without aborting the handshake — then answers with
//! a `Roster` of every process's listen address. Process *i* then dials
//! every process *j < i* and accepts connections from every *k > i*,
//! producing a full mesh.
//!
//! # Liveness and teardown
//!
//! The in-process invariant "once `rank_alive` turns false, every message
//! the rank ever sent is already in its destination mailbox" is preserved
//! across processes by ordering: a rank's `RankDone` control frame is
//! written on each connection *after* all of that rank's envelope frames,
//! and each connection is read in order by a dedicated reader thread.
//! After a process has joined all its local ranks it broadcasts
//! `ProcDone`, waits for every peer's `ProcDone` (or disconnect), and
//! only then closes its sockets — so a normal close is never mistaken for
//! a crash. A connection that drops *without* `ProcDone` marks every rank
//! of that process dead (ticking
//! `transport_socket_peer_disconnects_total`), which blocked stream
//! readers surface as the same typed `PeerLost` error a crashed in-process
//! writer produces.

use crate::envelope::{Context, Envelope, EnvelopeHeader};
use crate::launch::{spawn_and_join, LaunchError, Launcher, Universe};
use crate::mailbox::{Delivery, Mailbox};
use crate::transport::Transport;
use crate::{CommId, Result, RtError};
use bytes::Bytes;
use opmr_events::{try_frame, FrameBuf};
use parking_lot::{Condvar, Mutex};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// Socket transport metrics (the obs "transport" family): registered once,
// cached handles, relaxed atomics on the hot path.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct SocketMetrics {
        pub frames_sent: Arc<Counter>,
        pub frames_received: Arc<Counter>,
        pub bytes_sent: Arc<Counter>,
        pub bytes_received: Arc<Counter>,
        pub connect_timeouts: Arc<Counter>,
        pub handshake_rejected: Arc<Counter>,
        pub peer_disconnects: Arc<Counter>,
    }

    pub(super) fn m() -> &'static SocketMetrics {
        static M: OnceLock<SocketMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            SocketMetrics {
                frames_sent: r.counter("transport_socket_frames_sent_total"),
                frames_received: r.counter("transport_socket_frames_received_total"),
                bytes_sent: r.counter("transport_socket_bytes_sent_total"),
                bytes_received: r.counter("transport_socket_bytes_received_total"),
                connect_timeouts: r.counter("transport_socket_connect_timeouts_total"),
                handshake_rejected: r.counter("transport_socket_handshake_rejected_total"),
                peer_disconnects: r.counter("transport_socket_peer_disconnects_total"),
            }
        })
    }
}

/// Where the job's coordinator (process 0) listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:39000`. Non-coordinator processes
    /// listen on an ephemeral loopback port advertised via the handshake.
    Tcp(String),
    /// Unix-domain socket path. Non-coordinator process `i` listens on
    /// the same path suffixed with `.p{i}`.
    Unix(PathBuf),
}

impl Endpoint {
    fn describe(&self) -> String {
        match self {
            Endpoint::Tcp(a) => format!("tcp:{a}"),
            Endpoint::Unix(p) => format!("unix:{}", p.display()),
        }
    }
}

/// Socket-level configuration shared by every process of the job.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Coordinator endpoint.
    pub endpoint: Endpoint,
    /// Budget for dialing a peer and for the whole handshake's accept
    /// phase. Also bounds the post-join teardown drain.
    pub connect_timeout: Duration,
}

impl SocketConfig {
    /// Configuration with the default 10 s connect/handshake budget.
    pub fn new(endpoint: Endpoint) -> Self {
        SocketConfig {
            endpoint,
            connect_timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the connect/handshake budget.
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = d;
        self
    }
}

/// How partitions are assigned to processes. Every process derives the
/// same map from the same job description; the handshake cross-checks a
/// hash of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionAssign {
    /// Contiguous blocks of partitions, evenly split (partition `p` of
    /// `n` goes to process `p * procs / n`).
    Block,
    /// Partition `p` goes to process `p % procs`.
    RoundRobin,
    /// Explicit partition→process map (one entry per partition).
    Explicit(Vec<usize>),
}

impl PartitionAssign {
    fn proc_of(
        &self,
        partition: usize,
        n_partitions: usize,
        num_procs: usize,
    ) -> std::result::Result<usize, SocketError> {
        let p = match self {
            PartitionAssign::Block => partition * num_procs / n_partitions,
            PartitionAssign::RoundRobin => partition % num_procs,
            PartitionAssign::Explicit(v) => {
                *v.get(partition).ok_or_else(|| SocketError::BadTopology {
                    what: format!(
                        "explicit assignment has {} entries for {} partitions",
                        v.len(),
                        n_partitions
                    ),
                })?
            }
        };
        if p >= num_procs {
            return Err(SocketError::BadTopology {
                what: format!("partition {partition} assigned to process {p} of {num_procs}"),
            });
        }
        Ok(p)
    }
}

/// One process's view of a multi-process job.
#[derive(Debug, Clone)]
pub struct MultiprocTopology {
    /// Socket configuration (must be identical in every process).
    pub socket: SocketConfig,
    /// This process's index in `0..num_procs`.
    pub proc_index: usize,
    /// Total number of processes.
    pub num_procs: usize,
    /// Partition→process assignment (must be identical in every process).
    pub assign: PartitionAssign,
}

impl MultiprocTopology {
    /// Topology with block partition assignment.
    pub fn new(socket: SocketConfig, proc_index: usize, num_procs: usize) -> Self {
        MultiprocTopology {
            socket,
            proc_index,
            num_procs,
            assign: PartitionAssign::Block,
        }
    }

    /// Overrides the partition assignment.
    pub fn assign(mut self, assign: PartitionAssign) -> Self {
        self.assign = assign;
        self
    }
}

/// Typed socket-transport failures (handshake and configuration; runtime
/// data-plane loss surfaces through [`RtError`] and stream-level errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketError {
    /// Could not bind a listener.
    Bind { addr: String, detail: String },
    /// A peer did not answer within the connect budget.
    ConnectTimeout { addr: String, waited_ms: u64 },
    /// Expected peers never completed the handshake in time.
    AcceptTimeout { waited_ms: u64, missing: usize },
    /// A peer spoke garbage (or an incompatible topology) during the
    /// handshake.
    Handshake { addr: String, what: String },
    /// I/O failure outside the established data plane.
    Io {
        during: &'static str,
        detail: String,
    },
    /// The topology description itself is invalid.
    BadTopology { what: String },
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Bind { addr, detail } => write!(f, "failed to bind {addr}: {detail}"),
            SocketError::ConnectTimeout { addr, waited_ms } => {
                write!(f, "connect to {addr} timed out after {waited_ms} ms")
            }
            SocketError::AcceptTimeout { waited_ms, missing } => write!(
                f,
                "handshake timed out after {waited_ms} ms with {missing} peer(s) missing"
            ),
            SocketError::Handshake { addr, what } => {
                write!(f, "handshake with {addr} failed: {what}")
            }
            SocketError::Io { during, detail } => write!(f, "socket i/o during {during}: {detail}"),
            SocketError::BadTopology { what } => write!(f, "bad multiproc topology: {what}"),
        }
    }
}

impl std::error::Error for SocketError {}

/// Failure of a multi-process launch: either the socket layer could not
/// assemble the mesh, or (exactly as in-process) some hosted ranks failed.
#[derive(Debug)]
pub enum MultiprocError {
    /// Handshake/configuration failure before any rank ran.
    Socket(SocketError),
    /// Rank failures among the ranks hosted by *this* process.
    Launch(LaunchError),
}

impl MultiprocError {
    /// The rank failures, when the mesh came up and ranks ran.
    pub fn into_launch(self) -> Option<LaunchError> {
        match self {
            MultiprocError::Launch(e) => Some(e),
            MultiprocError::Socket(_) => None,
        }
    }
}

impl std::fmt::Display for MultiprocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiprocError::Socket(e) => write!(f, "socket transport: {e}"),
            MultiprocError::Launch(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MultiprocError {}

impl From<SocketError> for MultiprocError {
    fn from(e: SocketError) -> Self {
        MultiprocError::Socket(e)
    }
}

impl From<LaunchError> for MultiprocError {
    fn from(e: LaunchError) -> Self {
        MultiprocError::Launch(e)
    }
}

// ---------------------------------------------------------------------
// Wire format. Every message is an `opmr-events` frame
// (`[len u32][fnv1a32 u32][payload]`); payload byte 0 is the kind.
// ---------------------------------------------------------------------

const MAGIC: u32 = 0x4F50_4D52; // "OPMR"
const VERSION: u16 = 1;

const K_HELLO: u8 = 1;
const K_ENVELOPE: u8 = 2;
const K_RANK_DONE: u8 = 3;
const K_SHUTDOWN: u8 = 4;
const K_PROC_DONE: u8 = 5;
const K_ROSTER: u8 = 6;

fn ctx_to_u8(c: Context) -> u8 {
    match c {
        Context::Pt2pt => 0,
        Context::Coll => 1,
        Context::Stream => 2,
    }
}

fn ctx_from_u8(b: u8) -> Option<Context> {
    match b {
        0 => Some(Context::Pt2pt),
        1 => Some(Context::Coll),
        2 => Some(Context::Stream),
        _ => None,
    }
}

/// `[kind][ctx u8][tag i32][comm u64][src_local u32][src_world u32][dst u32][payload]`
fn encode_envelope(dst_world: usize, env: &Envelope) -> Vec<u8> {
    let h = &env.header;
    let mut out = Vec::with_capacity(22 + env.payload.len());
    out.push(K_ENVELOPE);
    out.push(ctx_to_u8(h.ctx));
    out.extend_from_slice(&h.tag.to_le_bytes());
    out.extend_from_slice(&h.comm.0.to_le_bytes());
    out.extend_from_slice(&(h.src_local as u32).to_le_bytes());
    out.extend_from_slice(&(h.src_world as u32).to_le_bytes());
    out.extend_from_slice(&(dst_world as u32).to_le_bytes());
    out.extend_from_slice(&env.payload);
    out
}

fn decode_envelope(p: &Bytes) -> Option<(usize, Envelope)> {
    // p[0] is the kind byte, already matched by the caller.
    let ctx = ctx_from_u8(*p.get(1)?)?;
    let tag = i32::from_le_bytes(p.get(2..6)?.try_into().ok()?);
    let comm = u64::from_le_bytes(p.get(6..14)?.try_into().ok()?);
    let src_local = u32::from_le_bytes(p.get(14..18)?.try_into().ok()?) as usize;
    let src_world = u32::from_le_bytes(p.get(18..22)?.try_into().ok()?) as usize;
    let dst_world = u32::from_le_bytes(p.get(22..26)?.try_into().ok()?) as usize;
    let payload = p.slice(26..);
    Some((
        dst_world,
        Envelope {
            header: EnvelopeHeader {
                ctx,
                comm: CommId(comm),
                src_local,
                src_world,
                tag,
            },
            payload,
        },
    ))
}

fn encode_hello(proc_index: usize, topo_hash: u64, listen_addr: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + listen_addr.len());
    out.push(K_HELLO);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(proc_index as u16).to_le_bytes());
    out.extend_from_slice(&topo_hash.to_le_bytes());
    out.extend_from_slice(listen_addr.as_bytes());
    out
}

/// Returns `(proc_index, listen_addr)` or a description of what was wrong.
fn decode_hello(p: &Bytes, expect_hash: u64) -> std::result::Result<(usize, String), String> {
    if p.first() != Some(&K_HELLO) {
        return Err(format!("first frame is not a hello (kind {:?})", p.first()));
    }
    let magic = p
        .get(1..5)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes);
    if magic != Some(MAGIC) {
        return Err("bad protocol magic".to_string());
    }
    let version = p
        .get(5..7)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes);
    if version != Some(VERSION) {
        return Err(format!("unsupported protocol version {version:?}"));
    }
    let proc = p
        .get(7..9)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes)
        .ok_or("truncated hello")? as usize;
    let hash = p
        .get(9..17)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or("truncated hello")?;
    if hash != expect_hash {
        return Err(format!(
            "topology mismatch (peer {hash:#018x}, local {expect_hash:#018x})"
        ));
    }
    let addr = String::from_utf8_lossy(p.get(17..).unwrap_or(&[])).into_owned();
    Ok((proc, addr))
}

fn encode_roster(addrs: &[String]) -> Vec<u8> {
    let mut out = vec![K_ROSTER];
    out.extend_from_slice(&(addrs.len() as u16).to_le_bytes());
    for a in addrs {
        out.extend_from_slice(&(a.len() as u16).to_le_bytes());
        out.extend_from_slice(a.as_bytes());
    }
    out
}

fn decode_roster(p: &Bytes) -> Option<Vec<String>> {
    if p.first() != Some(&K_ROSTER) {
        return None;
    }
    let n = u16::from_le_bytes(p.get(1..3)?.try_into().ok()?) as usize;
    let mut addrs = Vec::with_capacity(n);
    let mut off = 3usize;
    for _ in 0..n {
        let len = u16::from_le_bytes(p.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        addrs.push(String::from_utf8_lossy(p.get(off..off + len)?).into_owned());
        off += len;
    }
    Some(addrs)
}

/// Deterministic hash of the topology every process must agree on.
fn topology_hash(num_procs: usize, rank_owner: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.rotate_left(27).wrapping_mul(0x1000_0000_01B3);
    };
    mix(num_procs as u64);
    mix(rank_owner.len() as u64);
    for &o in rank_owner {
        mix(o as u64);
    }
    h
}

// ---------------------------------------------------------------------
// Byte-stream plumbing: one enum over TCP / Unix sockets.
// ---------------------------------------------------------------------

enum SockStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SockStream {
    fn try_clone(&self) -> std::io::Result<SockStream> {
        Ok(match self {
            SockStream::Tcp(s) => SockStream::Tcp(s.try_clone()?),
            SockStream::Unix(s) => SockStream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_read_timeout(d),
            SockStream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            SockStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            SockStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.read(buf),
            SockStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.write(buf),
            SockStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.flush(),
            SockStream::Unix(s) => s.flush(),
        }
    }
}

enum SockListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl SockListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            SockListener::Tcp(l) => l.set_nonblocking(nb),
            SockListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<SockStream> {
        match self {
            SockListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(SockStream::Tcp(s))
            }
            SockListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(SockStream::Unix(s))
            }
        }
    }
}

/// The address process `i` listens on, and how to advertise it.
fn listen_endpoint(endpoint: &Endpoint, proc_index: usize) -> Endpoint {
    if proc_index == 0 {
        return endpoint.clone();
    }
    match endpoint {
        // Ephemeral loopback port; the real address is advertised via Hello.
        Endpoint::Tcp(_) => Endpoint::Tcp("127.0.0.1:0".to_string()),
        Endpoint::Unix(p) => {
            let mut os = p.clone().into_os_string();
            os.push(format!(".p{proc_index}"));
            Endpoint::Unix(PathBuf::from(os))
        }
    }
}

fn bind(endpoint: &Endpoint) -> std::result::Result<(SockListener, String), SocketError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| SocketError::Bind {
                addr: endpoint.describe(),
                detail: e.to_string(),
            })?;
            let advertised = l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.clone());
            Ok((SockListener::Tcp(l), format!("tcp:{advertised}")))
        }
        Endpoint::Unix(path) => {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path).map_err(|e| SocketError::Bind {
                addr: endpoint.describe(),
                detail: e.to_string(),
            })?;
            Ok((SockListener::Unix(l), format!("unix:{}", path.display())))
        }
    }
}

fn dial(
    addr: &str,
    deadline: Instant,
    waited: Duration,
) -> std::result::Result<SockStream, SocketError> {
    loop {
        let attempt = if let Some(a) = addr.strip_prefix("tcp:") {
            TcpStream::connect(a).map(|s| {
                let _ = s.set_nodelay(true);
                SockStream::Tcp(s)
            })
        } else if let Some(p) = addr.strip_prefix("unix:") {
            UnixStream::connect(p).map(SockStream::Unix)
        } else {
            return Err(SocketError::Handshake {
                addr: addr.to_string(),
                what: "unparseable peer address in roster".to_string(),
            });
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                obs::m().connect_timeouts.inc();
                return Err(SocketError::ConnectTimeout {
                    addr: addr.to_string(),
                    waited_ms: waited.as_millis() as u64,
                });
            }
        }
    }
}

/// Reads exactly one frame from a handshake-phase connection, keeping any
/// over-read bytes in `fb` for the subsequent reader thread.
fn read_one_frame(
    stream: &mut SockStream,
    fb: &mut FrameBuf,
    deadline: Instant,
    addr: &str,
) -> std::result::Result<Bytes, SocketError> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match fb.next_frame() {
            Ok(Some(p)) => return Ok(p),
            Ok(None) => {}
            Err(e) => {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: format!("unframeable bytes on the wire: {e}"),
                })
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(SocketError::Handshake {
                addr: addr.to_string(),
                what: "timed out waiting for a handshake frame".to_string(),
            });
        }
        let _ = stream.set_read_timeout(Some(deadline - now));
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: "peer closed the connection during the handshake".to_string(),
                })
            }
            Ok(n) => fb.push(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(SocketError::Handshake {
                    addr: addr.to_string(),
                    what: "timed out waiting for a handshake frame".to_string(),
                })
            }
            Err(e) => {
                return Err(SocketError::Io {
                    during: "handshake read",
                    detail: e.to_string(),
                })
            }
        }
    }
}

fn write_frame(stream: &mut SockStream, payload: &[u8]) -> std::io::Result<()> {
    let framed = try_frame(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(&framed)?;
    obs::m().frames_sent.inc();
    obs::m().bytes_sent.add(framed.len() as u64);
    Ok(())
}

/// Per-connection budget for reading one peer's Hello: bounded separately
/// so a stalled rogue connection cannot eat the whole handshake budget.
const HELLO_BUDGET: Duration = Duration::from_secs(2);

/// One fully-handshaken connection plus bytes over-read past the
/// handshake frames (they belong to the data plane).
struct PeerConn {
    proc: usize,
    stream: SockStream,
    residual: FrameBuf,
}

/// Establishes the full mesh for this process. Returns one connection per
/// remote process.
fn connect_mesh(
    topo: &MultiprocTopology,
    topo_hash: u64,
) -> std::result::Result<Vec<PeerConn>, SocketError> {
    let n = topo.num_procs;
    let me = topo.proc_index;
    let deadline = Instant::now() + topo.socket.connect_timeout;
    let mut conns: Vec<PeerConn> = Vec::with_capacity(n.saturating_sub(1));

    let (listener, my_addr) = bind(&listen_endpoint(&topo.socket.endpoint, me))?;

    if me == 0 {
        // Coordinator: collect n-1 Hellos, then broadcast the roster.
        let mut addrs: Vec<Option<String>> = vec![None; n];
        addrs[0] = Some(my_addr);
        listener
            .set_nonblocking(true)
            .map_err(|e| SocketError::Io {
                during: "listener setup",
                detail: e.to_string(),
            })?;
        while conns.len() < n - 1 {
            match listener.accept() {
                Ok(mut s) => {
                    let _ = s.set_read_timeout(Some(HELLO_BUDGET));
                    let mut fb = FrameBuf::new();
                    let hello_deadline = deadline.min(Instant::now() + HELLO_BUDGET);
                    let hello = read_one_frame(&mut s, &mut fb, hello_deadline, "incoming")
                        .map_err(|e| e.to_string())
                        .and_then(|p| decode_hello(&p, topo_hash));
                    match hello {
                        Ok((proc, addr)) if proc > 0 && proc < n && addrs[proc].is_none() => {
                            addrs[proc] = Some(addr);
                            conns.push(PeerConn {
                                proc,
                                stream: s,
                                residual: fb,
                            });
                        }
                        Ok((proc, _)) => {
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                            return Err(SocketError::Handshake {
                                addr: "incoming".to_string(),
                                what: format!("duplicate or out-of-range process index {proc}"),
                            });
                        }
                        Err(what) => {
                            // A rogue or garbled connection: reject it,
                            // count it, keep waiting for the real peers.
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                            let _ = what;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        obs::m().connect_timeouts.inc();
                        return Err(SocketError::AcceptTimeout {
                            waited_ms: topo.socket.connect_timeout.as_millis() as u64,
                            missing: (n - 1) - conns.len(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(SocketError::Io {
                        during: "accept",
                        detail: e.to_string(),
                    })
                }
            }
        }
        let roster: Vec<String> = addrs.into_iter().map(Option::unwrap_or_default).collect();
        let payload = encode_roster(&roster);
        for c in &mut conns {
            write_frame(&mut c.stream, &payload).map_err(|e| SocketError::Io {
                during: "roster broadcast",
                detail: e.to_string(),
            })?;
        }
        return Ok(conns);
    }

    // Non-coordinator: dial the coordinator, learn the roster, dial every
    // lower-indexed peer, accept every higher-indexed one.
    let coord_addr = match &topo.socket.endpoint {
        Endpoint::Tcp(a) => format!("tcp:{a}"),
        Endpoint::Unix(p) => format!("unix:{}", p.display()),
    };
    let mut coord = dial(&coord_addr, deadline, topo.socket.connect_timeout)?;
    write_frame(&mut coord, &encode_hello(me, topo_hash, &my_addr)).map_err(|e| {
        SocketError::Io {
            during: "hello send",
            detail: e.to_string(),
        }
    })?;
    let mut coord_fb = FrameBuf::new();
    let roster_frame = read_one_frame(&mut coord, &mut coord_fb, deadline, &coord_addr)?;
    let roster = decode_roster(&roster_frame).ok_or_else(|| SocketError::Handshake {
        addr: coord_addr.clone(),
        what: "coordinator sent an invalid roster".to_string(),
    })?;
    if roster.len() != n {
        return Err(SocketError::Handshake {
            addr: coord_addr.clone(),
            what: format!("roster lists {} processes, expected {n}", roster.len()),
        });
    }
    conns.push(PeerConn {
        proc: 0,
        stream: coord,
        residual: coord_fb,
    });

    for (j, addr) in roster.iter().enumerate().take(me).skip(1) {
        let mut s = dial(addr, deadline, topo.socket.connect_timeout)?;
        write_frame(&mut s, &encode_hello(me, topo_hash, "")).map_err(|e| SocketError::Io {
            during: "hello send",
            detail: e.to_string(),
        })?;
        conns.push(PeerConn {
            proc: j,
            stream: s,
            residual: FrameBuf::new(),
        });
    }

    let expected_accepts = n - 1 - me;
    if expected_accepts > 0 {
        listener
            .set_nonblocking(true)
            .map_err(|e| SocketError::Io {
                during: "listener setup",
                detail: e.to_string(),
            })?;
        let mut accepted = 0usize;
        while accepted < expected_accepts {
            match listener.accept() {
                Ok(mut s) => {
                    let _ = s.set_read_timeout(Some(HELLO_BUDGET));
                    let mut fb = FrameBuf::new();
                    let hello_deadline = deadline.min(Instant::now() + HELLO_BUDGET);
                    let hello = read_one_frame(&mut s, &mut fb, hello_deadline, "incoming")
                        .map_err(|e| e.to_string())
                        .and_then(|p| decode_hello(&p, topo_hash));
                    match hello {
                        Ok((proc, _)) if proc > me && proc < n => {
                            conns.push(PeerConn {
                                proc,
                                stream: s,
                                residual: fb,
                            });
                            accepted += 1;
                        }
                        _ => {
                            obs::m().handshake_rejected.inc();
                            s.shutdown_both();
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        obs::m().connect_timeouts.inc();
                        return Err(SocketError::AcceptTimeout {
                            waited_ms: topo.socket.connect_timeout.as_millis() as u64,
                            missing: expected_accepts - accepted,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(SocketError::Io {
                        during: "accept",
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    Ok(conns)
}

// ---------------------------------------------------------------------
// The transport itself.
// ---------------------------------------------------------------------

struct Peer {
    /// Write half; `None` once the peer is lost or torn down.
    writer: Mutex<Option<SockStream>>,
    /// The peer announced clean completion (`ProcDone`).
    done: AtomicBool,
    /// The connection dropped without `ProcDone`.
    lost: AtomicBool,
}

struct Teardown {
    state: Mutex<()>,
    cv: Condvar,
}

/// Socket-backed [`Transport`]: local ranks use in-process mailboxes,
/// remote ranks are reached over framed byte streams.
pub struct SocketTransport {
    /// `Some(mailbox)` for ranks hosted in this process.
    mailboxes: Vec<Option<Arc<Mailbox>>>,
    /// Liveness of *every* rank; remote flags flip on `RankDone` frames
    /// or on peer disconnect.
    alive: Vec<AtomicBool>,
    /// Owning process of every world rank.
    rank_owner: Vec<usize>,
    /// Slot per process; set once during `start`, before any rank runs.
    peers: Vec<OnceLock<Arc<Peer>>>,
    reader_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown_sent: AtomicBool,
    teardown: Teardown,
    drain_budget: Duration,
}

impl SocketTransport {
    fn new(
        proc_index: usize,
        rank_owner: Vec<usize>,
        num_procs: usize,
        drain_budget: Duration,
    ) -> Arc<Self> {
        let mailboxes = rank_owner
            .iter()
            .map(|&o| (o == proc_index).then(|| Arc::new(Mailbox::default())))
            .collect();
        let alive = rank_owner.iter().map(|_| AtomicBool::new(true)).collect();
        Arc::new(SocketTransport {
            mailboxes,
            alive,
            rank_owner,
            peers: (0..num_procs).map(|_| OnceLock::new()).collect(),
            reader_handles: Mutex::new(Vec::new()),
            shutdown_sent: AtomicBool::new(false),
            teardown: Teardown {
                state: Mutex::new(()),
                cv: Condvar::new(),
            },
            drain_budget,
        })
    }

    /// Installs the handshaken connections and spawns one reader thread
    /// per peer. Called exactly once, before any rank starts.
    fn start(self: &Arc<Self>, conns: Vec<PeerConn>) {
        let mut handles = Vec::new();
        for conn in conns {
            let writer = match conn.stream.try_clone() {
                Ok(w) => w,
                Err(_) => {
                    // Cloning the descriptor failed: the peer is
                    // unreachable for writes from the start.
                    self.note_peer_lost(conn.proc);
                    continue;
                }
            };
            let peer = Arc::new(Peer {
                writer: Mutex::new(Some(writer)),
                done: AtomicBool::new(false),
                lost: AtomicBool::new(false),
            });
            if let Some(slot) = self.peers.get(conn.proc) {
                let _ = slot.set(peer);
            }
            let proc = conn.proc;
            let (stream, residual) = (conn.stream, conn.residual);
            let reader_this = Arc::clone(self);
            let h = std::thread::Builder::new()
                .name(format!("sock-rx-p{proc}"))
                .spawn(move || reader_this.reader_loop(proc, stream, residual));
            if let Ok(h) = h {
                handles.push(h);
            } else {
                self.note_peer_lost(proc);
            }
        }
        self.reader_handles.lock().extend(handles);
    }

    fn peer(&self, proc: usize) -> Option<&Arc<Peer>> {
        self.peers.get(proc).and_then(|slot| slot.get())
    }

    fn all_peers(&self) -> impl Iterator<Item = &Arc<Peer>> {
        self.peers.iter().filter_map(|slot| slot.get())
    }

    fn broadcast(&self, payload: &[u8]) {
        for peer in self.all_peers() {
            let mut g = peer.writer.lock();
            if let Some(w) = g.as_mut() {
                if write_frame(w, payload).is_err() {
                    *g = None;
                }
            }
        }
    }

    fn note_peer_lost(&self, proc: usize) {
        if let Some(peer) = self.peer(proc) {
            if peer.lost.swap(true, Ordering::AcqRel) {
                return;
            }
            obs::m().peer_disconnects.inc();
            *peer.writer.lock() = None;
        }
        for (r, &o) in self.rank_owner.iter().enumerate() {
            if o == proc {
                self.alive[r].store(false, Ordering::Release);
            }
        }
        let _g = self.teardown.state.lock();
        self.teardown.cv.notify_all();
    }

    fn shutdown_local(&self) {
        for mb in self.mailboxes.iter().flatten() {
            mb.shutdown();
        }
    }

    fn handle_frame(&self, proc: usize, payload: &Bytes) -> bool {
        match payload.first().copied() {
            Some(K_ENVELOPE) => {
                if let Some((dst, env)) = decode_envelope(payload) {
                    if let Some(Some(mb)) = self.mailboxes.get(dst) {
                        // Remote deliveries are always eager: the socket's
                        // flow control *is* the back-pressure. A Shutdown
                        // error here just means the job is tearing down.
                        let _ = mb.deliver(env, usize::MAX);
                    }
                }
                true
            }
            Some(K_RANK_DONE) => {
                if let Some(r) = payload
                    .get(1..5)
                    .and_then(|b| b.try_into().ok())
                    .map(u32::from_le_bytes)
                {
                    if let Some(flag) = self.alive.get(r as usize) {
                        flag.store(false, Ordering::Release);
                    }
                }
                true
            }
            Some(K_SHUTDOWN) => {
                // A remote rank failed: release every local blocked rank,
                // exactly like the in-process teardown.
                self.shutdown_local();
                true
            }
            Some(K_PROC_DONE) => {
                if let Some(peer) = self.peer(proc) {
                    peer.done.store(true, Ordering::Release);
                }
                let _g = self.teardown.state.lock();
                self.teardown.cv.notify_all();
                true
            }
            // Unknown or handshake-phase frame on the data plane: the
            // peer is off-protocol. Treat the connection as lost.
            _ => false,
        }
    }

    fn reader_loop(self: Arc<Self>, proc: usize, mut stream: SockStream, mut fb: FrameBuf) {
        let _ = stream.set_read_timeout(None);
        let mut buf = vec![0u8; 64 * 1024];
        let clean = 'conn: loop {
            loop {
                match fb.next_frame() {
                    Ok(Some(p)) => {
                        obs::m().frames_received.inc();
                        if !self.handle_frame(proc, &p) {
                            break 'conn false;
                        }
                    }
                    Ok(None) => break,
                    // Corrupt framing: no resync is possible, the
                    // connection is unusable.
                    Err(_) => break 'conn false,
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => break 'conn true,
                Ok(n) => {
                    obs::m().bytes_received.add(n as u64);
                    fb.push(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break 'conn true,
            }
        };
        let peer_done = self
            .peer(proc)
            .is_some_and(|p| p.done.load(Ordering::Acquire));
        if !(clean && peer_done) {
            // EOF/garbage without ProcDone: the peer crashed or went
            // off-protocol mid-stream.
            self.note_peer_lost(proc);
        }
        let _g = self.teardown.state.lock();
        self.teardown.cv.notify_all();
    }

    fn peers_settled(&self) -> bool {
        self.all_peers()
            .all(|p| p.done.load(Ordering::Acquire) || p.lost.load(Ordering::Acquire))
    }
}

impl Transport for SocketTransport {
    fn world_size(&self) -> usize {
        self.rank_owner.len()
    }

    fn backend_name(&self) -> &'static str {
        "socket"
    }

    fn deliver(&self, dst_world: usize, env: Envelope, eager_limit: usize) -> Result<Delivery> {
        if let Some(Some(mb)) = self.mailboxes.get(dst_world) {
            return mb.deliver(env, eager_limit);
        }
        let proc = *self
            .rank_owner
            .get(dst_world)
            .ok_or(RtError::Protocol("destination rank outside the world"))?;
        let peer = self
            .peer(proc)
            .ok_or(RtError::Protocol("no connection to destination process"))?;
        if peer.lost.load(Ordering::Acquire) {
            return Err(RtError::Dropped { dst: dst_world });
        }
        let payload = encode_envelope(dst_world, &env);
        let mut g = peer.writer.lock();
        let Some(w) = g.as_mut() else {
            return Err(RtError::Dropped { dst: dst_world });
        };
        if write_frame(w, &payload).is_err() {
            *g = None;
            drop(g);
            self.note_peer_lost(proc);
            return Err(RtError::Dropped { dst: dst_world });
        }
        Ok(Delivery::Complete)
    }

    fn local_mailbox(&self, world_rank: usize) -> Option<&Arc<Mailbox>> {
        self.mailboxes.get(world_rank).and_then(|m| m.as_ref())
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        self.alive
            .get(world_rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    fn mark_rank_done(&self, world_rank: usize) {
        self.alive[world_rank].store(false, Ordering::Release);
        // Ordered after every envelope the rank wrote (same per-peer
        // write mutex, same connection): peers observing the flag flip
        // already have all of the rank's data in their mailboxes.
        let mut payload = vec![K_RANK_DONE];
        payload.extend_from_slice(&(world_rank as u32).to_le_bytes());
        self.broadcast(&payload);
    }

    fn shutdown_all(&self) {
        self.shutdown_local();
        if !self.shutdown_sent.swap(true, Ordering::AcqRel) {
            self.broadcast(&[K_SHUTDOWN]);
        }
    }

    fn finalize_local(&self) {
        // 1. Announce clean completion of this process…
        self.broadcast(&[K_PROC_DONE]);
        // 2. …wait until every peer has done the same (or vanished)…
        let deadline = Instant::now() + self.drain_budget;
        {
            let mut g = self.teardown.state.lock();
            while !self.peers_settled() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.teardown.cv.wait_for(&mut g, deadline - now);
            }
        }
        // 3. …then close. Readers (ours and the peers') wake with EOF
        // *after* ProcDone, so nobody classifies this as a crash.
        for peer in self.all_peers() {
            let g = peer.writer.lock();
            if let Some(w) = g.as_ref() {
                w.shutdown_both();
            }
        }
        let handles: Vec<_> = self.reader_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Multi-process launch.
// ---------------------------------------------------------------------

impl Launcher {
    /// Runs this job as one of `topo.num_procs` cooperating OS processes.
    ///
    /// Every process must be handed the *same* job description (same
    /// partitions in the same order, same fault plan and eager limit) and
    /// the same topology apart from `proc_index`; the handshake
    /// cross-checks a topology hash and rejects mismatches with a typed
    /// [`SocketError`]. Ranks of partitions assigned to `proc_index` run
    /// here as threads; all other ranks are reached through the socket
    /// mesh. Returns when all locally hosted ranks have finished and the
    /// mesh has drained.
    pub fn run_multiproc(self, topo: MultiprocTopology) -> std::result::Result<(), MultiprocError> {
        assert!(!self.specs.is_empty(), "no partitions configured");
        if topo.num_procs == 0 || topo.proc_index >= topo.num_procs {
            return Err(SocketError::BadTopology {
                what: format!(
                    "process index {} outside 0..{}",
                    topo.proc_index, topo.num_procs
                ),
            }
            .into());
        }
        let infos = self.build_infos();
        let n_partitions = infos.len();
        let mut rank_owner = Vec::new();
        for info in &infos {
            let owner = topo
                .assign
                .proc_of(info.id, n_partitions, topo.num_procs)
                .map_err(MultiprocError::Socket)?;
            rank_owner.extend(std::iter::repeat_n(owner, info.size));
        }
        let topo_hash = topology_hash(topo.num_procs, &rank_owner);

        let conns = if topo.num_procs == 1 {
            Vec::new()
        } else {
            connect_mesh(&topo, topo_hash).map_err(MultiprocError::Socket)?
        };

        let transport = SocketTransport::new(
            topo.proc_index,
            rank_owner.clone(),
            topo.num_procs,
            topo.socket.connect_timeout,
        );
        transport.start(conns);

        let universe = Universe::with_transport(
            infos,
            self.eager_limit,
            self.fault_plan.clone(),
            Arc::clone(&transport) as Arc<dyn Transport>,
        );
        let me = topo.proc_index;
        let failures = spawn_and_join(&universe, &self.specs, self.stack_size, |world_rank| {
            rank_owner[world_rank] == me
        });
        universe.transport().finalize_local();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(LaunchError { failures }.into())
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
    use super::*;
    use crate::mailbox::make_envelope;

    #[test]
    fn envelope_roundtrips_on_the_wire() {
        let env = make_envelope(
            Context::Stream,
            CommId(0xDEAD_BEEF_0042),
            3,
            7,
            0x0500_0001,
            Bytes::from(vec![9u8; 300]),
        );
        let wire = Bytes::from(encode_envelope(11, &env));
        let (dst, back) = decode_envelope(&wire).unwrap();
        assert_eq!(dst, 11);
        assert_eq!(back.header, env.header);
        assert_eq!(back.payload, env.payload);
    }

    #[test]
    fn context_codes_are_stable() {
        for ctx in [Context::Pt2pt, Context::Coll, Context::Stream] {
            assert_eq!(ctx_from_u8(ctx_to_u8(ctx)), Some(ctx));
        }
        assert_eq!(ctx_from_u8(9), None);
    }

    #[test]
    fn hello_roundtrip_and_validation() {
        let wire = Bytes::from(encode_hello(3, 0xABCD, "unix:/tmp/x"));
        let (proc, addr) = decode_hello(&wire, 0xABCD).unwrap();
        assert_eq!((proc, addr.as_str()), (3, "unix:/tmp/x"));
        // Wrong topology hash is rejected with a description.
        let err = decode_hello(&wire, 0x1234).unwrap_err();
        assert!(err.contains("topology mismatch"), "{err}");
        // Garbage is rejected, not mis-decoded.
        let garbage = Bytes::from_static(b"\x01nonsense....................");
        assert!(decode_hello(&garbage, 0xABCD).is_err());
    }

    #[test]
    fn roster_roundtrips() {
        let addrs = vec![
            "tcp:127.0.0.1:9000".to_string(),
            String::new(),
            "unix:/tmp/a.sock".to_string(),
        ];
        let wire = Bytes::from(encode_roster(&addrs));
        assert_eq!(decode_roster(&wire).unwrap(), addrs);
        assert_eq!(decode_roster(&Bytes::from_static(b"\x07junk")), None);
    }

    #[test]
    fn topology_hash_is_order_sensitive() {
        let a = topology_hash(2, &[0, 0, 1]);
        let b = topology_hash(2, &[0, 1, 0]);
        let c = topology_hash(3, &[0, 0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, topology_hash(2, &[0, 0, 1]));
    }

    #[test]
    fn partition_assign_maps_and_validates() {
        // Block: 4 partitions over 2 procs → [0,0,1,1].
        let block: Vec<usize> = (0..4)
            .map(|p| PartitionAssign::Block.proc_of(p, 4, 2).unwrap())
            .collect();
        assert_eq!(block, vec![0, 0, 1, 1]);
        let rr: Vec<usize> = (0..4)
            .map(|p| PartitionAssign::RoundRobin.proc_of(p, 4, 2).unwrap())
            .collect();
        assert_eq!(rr, vec![0, 1, 0, 1]);
        assert_eq!(
            PartitionAssign::Explicit(vec![1, 0])
                .proc_of(1, 2, 2)
                .unwrap(),
            0
        );
        assert!(matches!(
            PartitionAssign::Explicit(vec![5]).proc_of(0, 1, 2),
            Err(SocketError::BadTopology { .. })
        ));
        assert!(matches!(
            PartitionAssign::Explicit(vec![]).proc_of(0, 1, 2),
            Err(SocketError::BadTopology { .. })
        ));
    }
}
