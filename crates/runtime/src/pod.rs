//! Plain-old-data marker trait for typed message payloads.
//!
//! Messages travel through the runtime as [`bytes::Bytes`]. Typed helpers
//! (`send_t`, `recv_t`, collectives over numeric slices) copy element slices
//! to and from byte buffers. Because sender and receiver live in the same
//! process, layout and endianness are trivially identical; the only safety
//! requirements are the classic POD ones encoded by [`Pod`].

use bytes::Bytes;

/// Marker for types that can be copied byte-wise into messages.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding whose content matters, no
/// pointers/references, and every bit pattern of the right size must be a
/// valid value. All implementations in this crate are primitive numeric
/// types, for which this trivially holds.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => { $( unsafe impl Pod for $t {} )* };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128, usize, isize, f32, f64);

unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Copies a slice of POD elements into a standalone byte buffer.
pub fn bytes_of_slice<T: Pod>(slice: &[T]) -> Bytes {
    let len = std::mem::size_of_val(slice);
    let mut out = Vec::<u8>::with_capacity(len);
    // SAFETY: `T: Pod` guarantees the source is plain bytes; the destination
    // has exactly `len` bytes of capacity and we set the length right after.
    unsafe {
        std::ptr::copy_nonoverlapping(slice.as_ptr().cast::<u8>(), out.as_mut_ptr(), len);
        out.set_len(len);
    }
    Bytes::from(out)
}

/// Copies one POD value into a byte buffer.
pub fn bytes_of<T: Pod>(value: &T) -> Bytes {
    bytes_of_slice(std::slice::from_ref(value))
}

/// Reconstructs a vector of POD elements from raw bytes.
///
/// Returns `None` when `bytes.len()` is not a multiple of the element size.
pub fn vec_from_bytes<T: Pod>(bytes: &[u8]) -> Option<Vec<T>> {
    let elem = std::mem::size_of::<T>();
    if elem == 0 || !bytes.len().is_multiple_of(elem) {
        return None;
    }
    let n = bytes.len() / elem;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: destination is freshly allocated with capacity for `n` aligned
    // elements; `T: Pod` makes any byte content a valid `T`.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    Some(out)
}

/// Reconstructs a single POD value from raw bytes (size must match exactly).
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Option<T> {
    let mut v = vec_from_bytes::<T>(bytes)?;
    if v.len() == 1 {
        v.pop()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_slice() {
        let data = [1.0f64, -2.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        let b = bytes_of_slice(&data);
        assert_eq!(b.len(), 40);
        let back = vec_from_bytes::<f64>(&b).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_single_value() {
        let b = bytes_of(&0xDEAD_BEEF_u64);
        assert_eq!(from_bytes::<u64>(&b), Some(0xDEAD_BEEF));
    }

    #[test]
    fn size_mismatch_is_none() {
        assert!(vec_from_bytes::<u32>(&[1, 2, 3]).is_none());
        assert!(from_bytes::<u32>(&[1, 2, 3, 4, 5, 6, 7, 8]).is_none());
    }

    #[test]
    fn empty_slice_roundtrip() {
        let b = bytes_of_slice::<u64>(&[]);
        assert!(b.is_empty());
        assert_eq!(vec_from_bytes::<u64>(&b).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn array_elements() {
        let data = [[1u32, 2], [3, 4], [5, 6]];
        let b = bytes_of_slice(&data);
        let back = vec_from_bytes::<[u32; 2]>(&b).unwrap();
        assert_eq!(back, data);
    }
}
