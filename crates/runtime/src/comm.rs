//! Communicators.
//!
//! A [`Comm`] is a per-rank view of a process group: the ordered list of
//! world ranks that belong to it, this rank's position inside it, and a
//! 64-bit identifier shared by every member. Identifiers for derived
//! communicators are computed *locally but deterministically* on every
//! member (a hash of the parent id, a per-parent split sequence number and
//! the split color), so no central registry is needed for message matching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally-unique communicator identifier (same value on every member).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

/// Identifier of the initial world communicator.
pub const WORLD_ID: CommId = CommId(1);

struct CommInner {
    id: CommId,
    /// World ranks of the members, in communicator-rank order.
    members: Arc<Vec<usize>>,
    /// This rank's communicator-local rank.
    my_local: usize,
    /// Number of `split`/`dup` calls performed on this communicator by this
    /// rank. Collective calls keep it consistent across members.
    derive_seq: AtomicU64,
    /// Number of collectives performed, used to give each collective a
    /// private tag space.
    coll_seq: AtomicU64,
}

/// A per-rank communicator handle (cheap to clone).
#[derive(Clone)]
pub struct Comm {
    inner: Arc<CommInner>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("id", &self.inner.id)
            .field("size", &self.size())
            .field("local", &self.inner.my_local)
            .finish()
    }
}

/// SplitMix64 — small, well-distributed hash used to derive communicator ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Comm {
    pub(crate) fn new(id: CommId, members: Arc<Vec<usize>>, my_local: usize) -> Self {
        debug_assert!(my_local < members.len());
        Comm {
            inner: Arc::new(CommInner {
                id,
                members,
                my_local,
                derive_seq: AtomicU64::new(0),
                coll_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Builds the world communicator for a universe of `n` ranks.
    pub(crate) fn world(n: usize, my_world: usize) -> Self {
        Comm::new(WORLD_ID, Arc::new((0..n).collect()), my_world)
    }

    /// Identifier shared by all members.
    pub fn id(&self) -> CommId {
        self.inner.id
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.inner.members.len()
    }

    /// This rank's communicator-local rank.
    pub fn local_rank(&self) -> usize {
        self.inner.my_local
    }

    /// World ranks of all members, in communicator-rank order.
    pub fn members(&self) -> &[usize] {
        &self.inner.members
    }

    /// World rank of communicator-local rank `local`.
    pub fn world_of(&self, local: usize) -> Option<usize> {
        self.inner.members.get(local).copied()
    }

    /// Communicator-local rank of world rank `world` (linear scan).
    pub fn local_of_world(&self, world: usize) -> Option<usize> {
        self.inner.members.iter().position(|&w| w == world)
    }

    /// Derives the id of the next `split`/`dup` child for a given color.
    ///
    /// Every member calls this in the same collective call, with the same
    /// parent state, so all members of one color compute the same id.
    pub(crate) fn next_derived_id(&self, color: u64) -> CommId {
        let seq = self.inner.derive_seq.fetch_add(1, Ordering::Relaxed);
        CommId(splitmix64(
            self.inner.id.0 ^ splitmix64(seq.wrapping_add(1)) ^ splitmix64(color ^ 0xC0FF_EE00),
        ))
    }

    /// Reserves a private tag for one collective invocation.
    pub(crate) fn next_coll_tag(&self) -> i32 {
        let seq = self.inner.coll_seq.fetch_add(1, Ordering::Relaxed);
        (seq % (i32::MAX as u64)) as i32
    }

    /// Builds a per-rank clone describing the same group from another rank's
    /// point of view (used by the launcher when constructing worlds).
    pub(crate) fn with_members(id: CommId, members: Arc<Vec<usize>>, my_local: usize) -> Self {
        Comm::new(id, members, my_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_layout() {
        let c = Comm::world(4, 2);
        assert_eq!(c.id(), WORLD_ID);
        assert_eq!(c.size(), 4);
        assert_eq!(c.local_rank(), 2);
        assert_eq!(c.members(), &[0, 1, 2, 3]);
        assert_eq!(c.world_of(3), Some(3));
        assert_eq!(c.local_of_world(1), Some(1));
        assert_eq!(c.world_of(4), None);
    }

    #[test]
    fn derived_ids_deterministic_and_distinct() {
        let a = Comm::world(4, 0);
        let b = Comm::world(4, 3);
        // Same call sequence on two ranks yields the same ids.
        let ids_a: Vec<_> = (0..5).map(|c| a.next_derived_id(c)).collect();
        let ids_b: Vec<_> = (0..5).map(|c| b.next_derived_id(c)).collect();
        assert_eq!(ids_a, ids_b);
        // Different colors / sequence positions yield distinct ids.
        let mut uniq = ids_a.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids_a.len());
        assert!(!ids_a.contains(&WORLD_ID));
    }

    #[test]
    fn coll_tags_advance() {
        let c = Comm::world(2, 0);
        let t0 = c.next_coll_tag();
        let t1 = c.next_coll_tag();
        assert_ne!(t0, t1);
    }

    #[test]
    fn subgroup_mapping() {
        let c = Comm::new(CommId(9), Arc::new(vec![5, 1, 7]), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world_of(0), Some(5));
        assert_eq!(c.local_of_world(7), Some(2));
        assert_eq!(c.local_of_world(2), None);
    }
}
