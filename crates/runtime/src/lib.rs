//! # opmr-runtime — in-process MPI-like message-passing runtime
//!
//! This crate is the substrate underneath the online-coupling reproduction of
//! *Besnard, Pérache, Jalby — Event Streaming for Online Performance
//! Measurements Reduction (ICPP 2013)*. The paper builds on a real MPI
//! library in MPMD mode; this crate provides the same semantics in a single
//! process so the whole measurement chain can run and be tested on one
//! machine:
//!
//! * **ranks are OS threads**, launched in named MPMD *partitions*;
//! * **point-to-point** messaging with MPI matching rules
//!   (`(communicator, source, tag)` plus `ANY_SOURCE` / `ANY_TAG`,
//!   non-overtaking order), an **eager protocol** for small messages and a
//!   **rendezvous protocol** with real sender back-pressure for large ones;
//! * **non-blocking** operations returning [`Request`] handles;
//! * **communicators** with `split` / `dup`, and
//! * the usual **collectives** (barrier, bcast, reduce, allreduce, gather,
//!   allgather, scatter, alltoall) implemented over point-to-point.
//!
//! The API is deliberately close to the MPI concepts the paper manipulates,
//! not to the C bindings: payloads are [`bytes::Bytes`] (zero-copy in
//! process) with typed helpers via the [`pod::Pod`] trait.
//!
//! ```
//! use opmr_runtime::{Launcher, Mpi, Src, TagSel};
//!
//! Launcher::new()
//!     .partition("ping", 2, |mpi: Mpi| {
//!         let world = mpi.world();
//!         if mpi.world_rank() == 0 {
//!             mpi.send(&world, 1, 7, &b"hello"[..]).unwrap();
//!         } else {
//!             let (_st, data) = mpi.recv(&world, Src::Any, TagSel::Any).unwrap();
//!             assert_eq!(&data[..], b"hello");
//!         }
//!     })
//!     .run()
//!     .unwrap();
//! ```

pub mod collectives;
pub mod comm;
pub mod envelope;
pub mod fault;
pub mod launch;
pub mod mailbox;
pub mod mpi;
pub mod pod;
pub mod request;
pub mod socket;
pub mod transport;

pub use comm::{Comm, CommId};
pub use envelope::{Context, Src, Status, TagSel, ANY_TAG};
pub use fault::{FaultLayer, FaultPlan, FaultStats, WriterCrash};
pub use launch::{
    FailureKind, LaunchError, Launcher, PartitionInfo, RankError, RankFailure, Universe,
};
pub use mpi::Mpi;
pub use pod::Pod;
pub use request::Request;
pub use socket::{
    Endpoint, LinkFault, MultiprocError, MultiprocTopology, PartitionAssign, SocketConfig,
    SocketError,
};
pub use transport::{InProc, Transport};

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A rank referenced a peer outside the communicator.
    InvalidRank { rank: usize, comm_size: usize },
    /// The universe is shutting down (a peer panicked or finalized early).
    Shutdown,
    /// A collective was invoked with inconsistent arguments across ranks.
    CollectiveMismatch(&'static str),
    /// Typed receive got a payload whose size is not a multiple of the type.
    TypeSize { got: usize, elem: usize },
    /// Non-blocking operation would block (used by stream layers).
    WouldBlock,
    /// An injected fault dropped the message before delivery; the sender
    /// may resend (see [`fault::FaultPlan`]).
    Dropped { dst: usize },
    /// A peer or the transport violated an internal protocol invariant
    /// (e.g. a completed receive carrying no payload).
    Protocol(&'static str),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::InvalidRank { rank, comm_size } => {
                write!(f, "rank {rank} outside communicator of size {comm_size}")
            }
            RtError::Shutdown => write!(f, "runtime universe is shutting down"),
            RtError::CollectiveMismatch(what) => write!(f, "collective mismatch: {what}"),
            RtError::TypeSize { got, elem } => {
                write!(
                    f,
                    "payload of {got} bytes is not a multiple of element size {elem}"
                )
            }
            RtError::WouldBlock => write!(f, "operation would block"),
            RtError::Dropped { dst } => {
                write!(f, "message to rank {dst} dropped by fault injection")
            }
            RtError::Protocol(what) => write!(f, "runtime protocol violation: {what}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Result alias used throughout the runtime.
pub type Result<T> = std::result::Result<T, RtError>;
