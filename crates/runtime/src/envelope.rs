//! Message envelopes and matching rules.
//!
//! Every message in flight carries an [`EnvelopeHeader`] used for MPI-style
//! matching: the receiver selects on `(context, communicator, source, tag)`,
//! where source and tag each admit a wildcard. The `context` field separates
//! the point-to-point, collective and stream planes so that library-internal
//! traffic can never be matched by user receives (the same role MPI's
//! communicator *context id* plays).

use crate::comm::CommId;
use bytes::Bytes;

/// Wildcard tag value (mirrors `MPI_ANY_TAG` when used through [`TagSel`]).
pub const ANY_TAG: i32 = -1;

/// Communication plane of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Context {
    /// User point-to-point traffic.
    Pt2pt,
    /// Collective-internal traffic (never visible to user receives).
    Coll,
    /// VMPI stream traffic (block transport and control).
    Stream,
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match any source rank (`MPI_ANY_SOURCE`).
    Any,
    /// Match one specific communicator-local rank.
    Rank(usize),
}

/// Tag selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match one specific tag.
    Tag(i32),
}

impl TagSel {
    pub(crate) fn matches(self, tag: i32) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => t == tag,
        }
    }
}

/// Completion information returned by receives and probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Communicator-local rank of the sender.
    pub source: usize,
    /// Tag the message was sent with.
    pub tag: i32,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Matching header of an in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeHeader {
    pub ctx: Context,
    pub comm: CommId,
    /// Sender's communicator-local rank (what the receiver matches against).
    pub src_local: usize,
    /// Sender's world rank (for diagnostics and stream bookkeeping).
    pub src_world: usize,
    pub tag: i32,
}

/// A complete in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub header: EnvelopeHeader,
    pub payload: Bytes,
}

impl Envelope {
    /// Does this message satisfy a receive posted with the given selectors?
    pub fn matches(&self, ctx: Context, comm: CommId, src: Src, tag: TagSel) -> bool {
        if self.header.ctx != ctx || self.header.comm != comm {
            return false;
        }
        let src_ok = match src {
            Src::Any => true,
            Src::Rank(r) => self.header.src_local == r,
        };
        src_ok && tag.matches(self.header.tag)
    }

    /// Status as seen by the receiver.
    pub fn status(&self) -> Status {
        Status {
            source: self.header.src_local,
            tag: self.header.tag,
            bytes: self.payload.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: i32) -> Envelope {
        Envelope {
            header: EnvelopeHeader {
                ctx: Context::Pt2pt,
                comm: CommId(42),
                src_local: src,
                src_world: src,
                tag,
            },
            payload: Bytes::from_static(b"xy"),
        }
    }

    #[test]
    fn exact_match() {
        let e = env(3, 7);
        assert!(e.matches(Context::Pt2pt, CommId(42), Src::Rank(3), TagSel::Tag(7)));
    }

    #[test]
    fn wildcards_match() {
        let e = env(3, 7);
        assert!(e.matches(Context::Pt2pt, CommId(42), Src::Any, TagSel::Any));
        assert!(e.matches(Context::Pt2pt, CommId(42), Src::Any, TagSel::Tag(7)));
        assert!(e.matches(Context::Pt2pt, CommId(42), Src::Rank(3), TagSel::Any));
    }

    #[test]
    fn wrong_fields_do_not_match() {
        let e = env(3, 7);
        assert!(!e.matches(Context::Pt2pt, CommId(41), Src::Any, TagSel::Any));
        assert!(!e.matches(Context::Coll, CommId(42), Src::Any, TagSel::Any));
        assert!(!e.matches(Context::Pt2pt, CommId(42), Src::Rank(2), TagSel::Any));
        assert!(!e.matches(Context::Pt2pt, CommId(42), Src::Any, TagSel::Tag(8)));
    }

    #[test]
    fn status_reflects_envelope() {
        let e = env(5, 9);
        assert_eq!(
            e.status(),
            Status {
                source: 5,
                tag: 9,
                bytes: 2
            }
        );
    }
}
