//! Concurrency stress for the versioned snapshot store: publishers
//! swapping `current` and evicting ring history while readers clone,
//! probe and walk delta chains. Seeded and iteration-bounded so failures
//! reproduce; every invariant below is checked from a reader's view of a
//! store that is being mutated underneath it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::wire::{decode_partials, AppPartial};
use opmr_events::EventKind;
use opmr_serve::{apply_delta, SnapshotStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Self-describing payload: every derived field is a fixed function of
/// `hits`, so a decoded snapshot can be checked for internal consistency
/// — a torn publish (fields from two different versions) cannot pass.
fn parts(hits: u64) -> Vec<AppPartial> {
    let mut profile = MpiProfile::new();
    profile.absorb_stats(0, EventKind::Send, hits, hits * 10, hits * 64, 10, 10);
    vec![AppPartial {
        app_id: 0,
        packs: hits,
        wire_bytes: hits * 48,
        decode_errors: 0,
        profile,
        topology: Topology::new(),
        waitstate: None,
        metrics: None,
    }]
}

fn check_consistent(encoded: &[u8], ctx: &str) -> u64 {
    let decoded = decode_partials(encoded).unwrap_or_else(|e| panic!("{ctx}: decode: {e:?}"));
    assert_eq!(decoded.len(), 1, "{ctx}: app count");
    let p = &decoded[0];
    assert_eq!(p.wire_bytes, p.packs * 48, "{ctx}: torn snapshot");
    let send = p.profile.kind(EventKind::Send).expect("send stats");
    assert_eq!(send.hits, p.packs, "{ctx}: torn snapshot");
    assert_eq!(send.bytes, p.packs * 64, "{ctx}: torn snapshot");
    p.packs
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn concurrent_publish_read_evict() {
    const RING: usize = 4;
    const PUBLISHERS: usize = 2;
    const PUBLISHES_EACH: usize = 400;
    const READERS: usize = 4;

    let store = Arc::new(SnapshotStore::new(RING, 1));
    let done = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for p in 0..PUBLISHERS {
        let store = Arc::clone(&store);
        workers.push(std::thread::spawn(move || {
            let mut rng = 0xA11C_E000 + p as u64;
            for _ in 0..PUBLISHES_EACH {
                // The version is assigned under the store's writer mutex;
                // the payload only needs to be self-consistent.
                let hits = 1 + splitmix64(&mut rng) % 10_000;
                let v = store.publish(parts(hits));
                assert!(v >= 1);
                if hits.is_multiple_of(7) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let mut readers = Vec::new();
    for r in 0..READERS {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut rng = 0xBEEF_0000 + r as u64;
            let mut last_seen = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) {
                // `current` only moves forward, and what it points at is
                // internally consistent even mid-eviction.
                if let Some(cur) = store.current() {
                    assert!(
                        cur.version >= last_seen,
                        "current went backwards: {} after {last_seen}",
                        cur.version
                    );
                    last_seen = cur.version;
                    check_consistent(&cur.encoded, "current");
                    observations += 1;
                }
                // The ring never holds more than its capacity, and `get`
                // answers exactly the retained span.
                let (front, back) = store.version_span();
                if back != 0 {
                    assert!(back - front < RING as u64, "span {front}..={back}");
                    let probe = front + splitmix64(&mut rng) % (back - front + 1);
                    if let Some(e) = store.get(probe) {
                        assert_eq!(e.version, probe);
                        check_consistent(&e.encoded, "get");
                        // Retained deltas chain: applying this entry's
                        // delta to its predecessor's encoding must land
                        // byte-identically on this entry. Both entries
                        // are immutable Arcs, so eviction racing past
                        // them cannot disturb the check.
                        if let (Some(prev), Some(delta)) =
                            (store.get(probe.wrapping_sub(1)), e.delta.as_ref())
                        {
                            let mut live = decode_partials(&prev.encoded).unwrap();
                            let (f, t) = apply_delta(&mut live, delta).unwrap();
                            assert_eq!((f, t), (probe - 1, probe));
                            assert_eq!(
                                opmr_analysis::wire::encode_partials(&live),
                                e.encoded,
                                "delta chain broke at {probe}"
                            );
                        }
                    }
                }
            }
            observations
        }));
    }

    for w in workers {
        w.join().expect("publisher");
    }
    done.store(true, Ordering::Release);
    let mut total_observations = 0u64;
    for r in readers {
        total_observations += r.join().expect("reader");
    }
    assert!(total_observations > 0, "readers never saw a snapshot");

    // Post-run accounting: every publish landed, eviction kept the ring.
    let stats = store.stats();
    assert_eq!(stats.published, (PUBLISHERS * PUBLISHES_EACH) as u64);
    assert_eq!(stats.evicted, stats.published - RING as u64);
    let (front, back) = store.version_span();
    assert_eq!(back, stats.published);
    assert_eq!(back - front + 1, RING as u64);

    // The final publish protocol still closes cleanly under the ring.
    assert!(store.mark_writer_done());
    let v = store.publish_final(parts(1));
    assert_eq!(v, stats.published + 1);
    assert!(store.finished());
    assert!(store.current().unwrap().is_final);
    assert_eq!(store.publish(parts(2)), v, "publish after final must no-op");
}
