//! Concurrency stress for the versioned snapshot store: publishers
//! swapping `current` and evicting ring history while readers clone,
//! probe and walk delta chains. Seeded and iteration-bounded so failures
//! reproduce; every invariant below is checked from a reader's view of a
//! store that is being mutated underneath it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::wire::{decode_partials, AppPartial};
use opmr_events::EventKind;
use opmr_serve::{apply_delta, ShardedStore, SnapshotStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Self-describing payload: every derived field is a fixed function of
/// `hits`, so a decoded snapshot can be checked for internal consistency
/// — a torn publish (fields from two different versions) cannot pass.
fn parts(hits: u64) -> Vec<AppPartial> {
    let mut profile = MpiProfile::new();
    profile.absorb_stats(0, EventKind::Send, hits, hits * 10, hits * 64, 10, 10);
    vec![AppPartial {
        app_id: 0,
        packs: hits,
        wire_bytes: hits * 48,
        decode_errors: 0,
        profile,
        topology: Topology::new(),
        waitstate: None,
        metrics: None,
    }]
}

fn check_consistent(encoded: &[u8], ctx: &str) -> u64 {
    let decoded = decode_partials(encoded).unwrap_or_else(|e| panic!("{ctx}: decode: {e:?}"));
    assert_eq!(decoded.len(), 1, "{ctx}: app count");
    let p = &decoded[0];
    assert_eq!(p.wire_bytes, p.packs * 48, "{ctx}: torn snapshot");
    let send = p.profile.kind(EventKind::Send).expect("send stats");
    assert_eq!(send.hits, p.packs, "{ctx}: torn snapshot");
    assert_eq!(send.bytes, p.packs * 64, "{ctx}: torn snapshot");
    p.packs
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn concurrent_publish_read_evict() {
    const RING: usize = 4;
    const PUBLISHERS: usize = 2;
    const PUBLISHES_EACH: usize = 400;
    const READERS: usize = 4;

    let store = Arc::new(SnapshotStore::new(RING, 1));
    let done = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for p in 0..PUBLISHERS {
        let store = Arc::clone(&store);
        workers.push(std::thread::spawn(move || {
            let mut rng = 0xA11C_E000 + p as u64;
            for _ in 0..PUBLISHES_EACH {
                // The version is assigned under the store's writer mutex;
                // the payload only needs to be self-consistent.
                let hits = 1 + splitmix64(&mut rng) % 10_000;
                let v = store.publish(parts(hits)).unwrap();
                assert!(v >= 1);
                if hits.is_multiple_of(7) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let mut readers = Vec::new();
    for r in 0..READERS {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut rng = 0xBEEF_0000 + r as u64;
            let mut last_seen = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) {
                // `current` only moves forward, and what it points at is
                // internally consistent even mid-eviction.
                if let Some(cur) = store.current() {
                    assert!(
                        cur.version >= last_seen,
                        "current went backwards: {} after {last_seen}",
                        cur.version
                    );
                    last_seen = cur.version;
                    check_consistent(&cur.encoded, "current");
                    observations += 1;
                }
                // The ring never holds more than its capacity, and `get`
                // answers exactly the retained span.
                let (front, back) = store.version_span();
                if back != 0 {
                    assert!(back - front < RING as u64, "span {front}..={back}");
                    let probe = front + splitmix64(&mut rng) % (back - front + 1);
                    if let Some(e) = store.get(probe) {
                        assert_eq!(e.version, probe);
                        check_consistent(&e.encoded, "get");
                        // Retained deltas chain: applying this entry's
                        // delta to its predecessor's encoding must land
                        // byte-identically on this entry. Both entries
                        // are immutable Arcs, so eviction racing past
                        // them cannot disturb the check.
                        if let (Some(prev), Some(delta)) =
                            (store.get(probe.wrapping_sub(1)), e.delta.as_ref())
                        {
                            let mut live = decode_partials(&prev.encoded).unwrap();
                            let (f, t) = apply_delta(&mut live, delta).unwrap();
                            assert_eq!((f, t), (probe - 1, probe));
                            assert_eq!(
                                opmr_analysis::wire::encode_partials(&live),
                                e.encoded,
                                "delta chain broke at {probe}"
                            );
                        }
                    }
                }
            }
            observations
        }));
    }

    for w in workers {
        w.join().expect("publisher");
    }
    done.store(true, Ordering::Release);
    let mut total_observations = 0u64;
    for r in readers {
        total_observations += r.join().expect("reader");
    }
    assert!(total_observations > 0, "readers never saw a snapshot");

    // Post-run accounting: every publish landed, eviction kept the ring.
    let stats = store.stats();
    assert_eq!(stats.published, (PUBLISHERS * PUBLISHES_EACH) as u64);
    assert_eq!(stats.evicted, stats.published - RING as u64);
    let (front, back) = store.version_span();
    assert_eq!(back, stats.published);
    assert_eq!(back - front + 1, RING as u64);

    // The final publish protocol still closes cleanly under the ring.
    assert!(store.mark_writer_done());
    let v = store.publish_final(parts(1)).unwrap();
    assert_eq!(v, stats.published + 1);
    assert!(store.finished());
    assert!(store.current().unwrap().is_final);
    assert_eq!(
        store.publish(parts(2)).unwrap(),
        v,
        "publish after final must no-op"
    );
}

/// Self-consistent payload for `apps` applications, one per shard-routable
/// id. Each app's derived fields are fixed functions of `hits + app_id`,
/// so a decoded shard slice is checkable exactly like the single-app case.
fn multi_parts(hits: u64, app_ids: &[u16]) -> Vec<AppPartial> {
    app_ids
        .iter()
        .map(|&id| {
            let h = hits + id as u64;
            let mut profile = MpiProfile::new();
            profile.absorb_stats(0, EventKind::Send, h, h * 10, h * 64, 10, 10);
            AppPartial {
                app_id: id,
                packs: h,
                wire_bytes: h * 48,
                decode_errors: 0,
                profile,
                topology: Topology::new(),
                waitstate: None,
                metrics: None,
            }
        })
        .collect()
}

/// Shard-boundary behavior under concurrent multi-shard publishes: every
/// shard's ring evicts independently, every shard's retained delta chain
/// stays byte-exact while other shards publish, and a reader that fell
/// off a shard's ring observes exactly the slow-consumer resync contract
/// (the version is gone; `current` is a consistent snapshot to restart
/// from) — all from a reader's view of a store being mutated underneath.
#[test]
fn sharded_concurrent_publish_keeps_per_shard_chains_exact() {
    const SHARDS: usize = 3;
    const RING: usize = 4;
    const PUBLISHERS: usize = 2;
    const PUBLISHES_EACH: usize = 300;
    const READERS: usize = 3;
    // Apps 0..6 spread over 3 shards, two apps per shard.
    const APPS: [u16; 6] = [0, 1, 2, 3, 4, 5];

    let store = Arc::new(ShardedStore::new(SHARDS, RING, PUBLISHERS));
    let done = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for p in 0..PUBLISHERS {
        let store = Arc::clone(&store);
        workers.push(std::thread::spawn(move || {
            let mut rng = 0x5A4D_E000 + p as u64;
            for _ in 0..PUBLISHES_EACH {
                let hits = 1 + splitmix64(&mut rng) % 10_000;
                // Sometimes publish only a subset of apps, leaving the
                // other shards' slices untouched that round.
                let apps: &[u16] = if hits.is_multiple_of(3) {
                    &APPS[..2]
                } else {
                    &APPS
                };
                store.publish(multi_parts(hits, apps)).unwrap();
                if hits.is_multiple_of(7) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let mut readers = Vec::new();
    for r in 0..READERS {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut rng = 0xFACE_0000 + r as u64;
            let mut last_seen = [0u64; SHARDS];
            let mut chain_checks = 0u64;
            let mut resyncs = 0u64;
            while !done.load(Ordering::Acquire) {
                let s = (splitmix64(&mut rng) % SHARDS as u64) as usize;
                let shard = store.shard(s);
                // Per-shard versions only move forward, and every app in a
                // shard's snapshot actually routes to that shard.
                if let Some(cur) = shard.current() {
                    assert!(
                        cur.version >= last_seen[s],
                        "shard {s} went backwards: {} after {}",
                        cur.version,
                        last_seen[s]
                    );
                    last_seen[s] = cur.version;
                    let decoded = decode_partials(&cur.encoded).unwrap();
                    for app in &decoded {
                        assert_eq!(store.shard_of_app(app.app_id), s, "misrouted app");
                        assert_eq!(app.wire_bytes, app.packs * 48, "torn shard snapshot");
                    }
                }
                // The shard ring is bounded and its retained delta chain
                // applies byte-exactly, independent of the other shards'
                // concurrent publishes.
                let (front, back) = shard.version_span();
                if back != 0 {
                    assert!(
                        back - front < RING as u64,
                        "shard {s} span {front}..={back}"
                    );
                    let probe = front + splitmix64(&mut rng) % (back - front + 1);
                    if let (Some(prev), Some(e)) =
                        (shard.get(probe.wrapping_sub(1)), shard.get(probe))
                    {
                        if let Some(delta) = e.delta.as_ref() {
                            let mut live = decode_partials(&prev.encoded).unwrap();
                            let (f, t) = apply_delta(&mut live, delta).unwrap();
                            assert_eq!((f, t), (probe - 1, probe));
                            assert_eq!(
                                opmr_analysis::wire::encode_partials(&live),
                                e.encoded,
                                "shard {s} delta chain broke at {probe}"
                            );
                            chain_checks += 1;
                        }
                    }
                    // Slow-consumer contract: a version below the ring
                    // front is gone (forcing a resync), and the resync
                    // target is always available and consistent.
                    if front > 1 {
                        assert!(shard.get(front - 1).is_none(), "evicted version served");
                        assert!(shard.current().is_some(), "no resync target");
                        resyncs += 1;
                    }
                }
                // Cross-shard assembly stays decodable and sorted even
                // mid-publish (each shard is a consistent Arc'd entry).
                let (parts, versions) = store.assemble_current().unwrap();
                assert_eq!(versions.len(), SHARDS);
                assert!(parts.windows(2).all(|w| w[0].app_id <= w[1].app_id));
            }
            (chain_checks, resyncs)
        }));
    }

    for w in workers {
        w.join().expect("publisher");
    }
    done.store(true, Ordering::Release);
    let (mut total_chain_checks, mut total_resyncs) = (0u64, 0u64);
    for r in readers {
        let (c, s) = r.join().expect("reader");
        total_chain_checks += c;
        total_resyncs += s;
    }
    assert!(total_chain_checks > 0, "readers never walked a shard chain");
    assert!(total_resyncs > 0, "eviction never forced the resync path");

    // Both publishers report done; the final version terminates every
    // shard's chain — including any shard the subset publishes starved.
    assert!(!store.mark_writer_done());
    assert!(store.mark_writer_done());
    store.publish_final(multi_parts(1, &APPS)).unwrap();
    assert!(store.finished());
    for s in 0..SHARDS {
        let cur = store.shard(s).current().expect("final on every shard");
        assert!(cur.is_final, "shard {s} chain not terminated");
    }
    let versions = store.versions();
    assert_eq!(versions.len(), SHARDS);
    assert!(versions.iter().all(|&v| v >= 1));
}
