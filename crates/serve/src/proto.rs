//! The serve-plane wire protocol.
//!
//! Requests flow client → server, responses and subscription updates flow
//! server → client, both as length-prefixed records
//! (`opmr_events::frame`) over one duplex VMPI stream per client. All
//! encodings are little-endian; each record starts with a one-byte
//! message tag.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use opmr_analysis::wire::WireError;

/// Stream id of the serve plane. Duplex streams derive their two
/// directions as `2*id` / `2*id + 1`, so this keeps serve traffic clear
/// of the instrumentation stream (id 0) and the reduction overlay.
pub const SERVE_STREAM_ID: u16 = 0x0100;

/// Stream id of the serve fan-out tree (plain down-tree streams between
/// serving ranks). Chosen clear of the duplex-derived ids of
/// [`SERVE_STREAM_ID`] (`0x200`/`0x201`) and the instrumentation id 0.
pub const SERVE_FANOUT_STREAM_ID: u16 = 0x0180;

/// `rank_hi` value meaning "no upper bound".
pub const ALL_RANKS: u32 = u32::MAX;

const REQ_QUERY: u8 = 0x01;
const REQ_VERSION: u8 = 0x02;
const REQ_SUBSCRIBE: u8 = 0x03;
const REQ_ACK: u8 = 0x04;
const REQ_BYE: u8 = 0x05;
const REQ_PING: u8 = 0x06;
const REQ_HELLO: u8 = 0x07;

const RSP_QUERY_RESULT: u8 = 0x81;
const RSP_NOT_FOUND: u8 = 0x82;
const RSP_VERSION_INFO: u8 = 0x83;
const RSP_SNAPSHOT: u8 = 0x84;
const RSP_DELTA: u8 = 0x85;
const RSP_PING: u8 = 0x86;
const RSP_QUOTA_EXCEEDED: u8 = 0x87;

/// What a point query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `encode_profile` bytes of the (rank-filtered) MPI profile.
    Profile = 1,
    /// `encode_topology` bytes of the (source-rank-filtered) topology.
    Topology = 2,
    /// Optional `encode_waitstats` bytes (one presence byte first).
    Waitstate = 3,
    /// Per-rank event counts over the rank range: `u32 lo, u32 n, n×u64`.
    Density = 4,
    /// Optional rank-filtered time-resolved metrics series (one presence
    /// byte, then `MetricsSeries::encode_into` bytes).
    Metrics = 5,
}

impl QueryKind {
    fn from_u8(v: u8) -> Option<QueryKind> {
        match v {
            1 => Some(QueryKind::Profile),
            2 => Some(QueryKind::Topology),
            3 => Some(QueryKind::Waitstate),
            4 => Some(QueryKind::Density),
            5 => Some(QueryKind::Metrics),
            _ => None,
        }
    }
}

/// Why a query produced no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotFoundReason {
    /// Nothing published yet.
    NoSnapshot = 1,
    /// The requested version aged out of the ring (or never existed).
    VersionGone = 2,
    /// The snapshot has no such application.
    UnknownApp = 3,
    /// The request did not parse.
    BadRequest = 4,
}

impl NotFoundReason {
    fn from_u8(v: u8) -> Option<NotFoundReason> {
        match v {
            1 => Some(NotFoundReason::NoSnapshot),
            2 => Some(NotFoundReason::VersionGone),
            3 => Some(NotFoundReason::UnknownApp),
            4 => Some(NotFoundReason::BadRequest),
            _ => None,
        }
    }
}

/// Which tenant quota refused a request (see [`crate::quota`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// Concurrent-subscription cap.
    Subscriptions = 1,
    /// Point-query rate limit.
    QueryRate = 2,
    /// Subscription delta-bytes/s limit (throttles delivery; reported on
    /// the wire only for diagnostics, never as a rejection).
    DeltaRate = 3,
}

impl QuotaKind {
    fn from_u8(v: u8) -> Option<QuotaKind> {
        match v {
            1 => Some(QuotaKind::Subscriptions),
            2 => Some(QuotaKind::QueryRate),
            3 => Some(QuotaKind::DeltaRate),
            _ => None,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point query against `version` (0 = current) over `[rank_lo,
    /// rank_hi)`.
    Query {
        req_id: u32,
        kind: QueryKind,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    },
    /// What versions does the server hold?
    VersionInfo { req_id: u32 },
    /// Tenant announcement, sent once on connect before any other
    /// request. The tenant name is the client partition's name; clients
    /// that never send one are the anonymous tenant `""`.
    Hello { tenant: String },
    /// Start the snapshot-then-deltas subscription (one chain per shard).
    Subscribe,
    /// Flow control: the subscriber consumed the update for `version` of
    /// `shard`, returning one credit.
    Ack { shard: u16, version: u64 },
    /// Orderly goodbye; the server closes its direction in response.
    Bye,
    /// Liveness keepalive: no semantic effect, but the frame is small
    /// enough to pass the transport fault layer unfaulted, so it flushes
    /// any reorder-held envelope on the client→server edge. Sent while
    /// the client spins waiting for a response (the serve protocol is
    /// ping-pong under one credit, so without keepalives a single held
    /// message would wedge both sides forever).
    Ping,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    QueryResult {
        req_id: u32,
        kind: QueryKind,
        /// Version the payload was evaluated against.
        version: u64,
        payload: Bytes,
    },
    NotFound {
        req_id: u32,
        reason: NotFoundReason,
    },
    VersionInfo {
        req_id: u32,
        /// Latest version (0 = nothing published yet).
        current: u64,
        /// Oldest version still in the ring.
        oldest: u64,
        /// Applications in the current snapshot.
        apps: u16,
        /// The final version has been published.
        finished: bool,
    },
    /// Full snapshot of one shard (`encode_partials` payload): the
    /// subscription opener, or a slow-consumer resync when `resync` is
    /// set. `finished` marks the shard's *final* version; the client
    /// aggregates per-shard finals into subscription completion using
    /// `shards` (the store's shard count).
    Snapshot {
        shard: u16,
        shards: u16,
        version: u64,
        publish_ns: u64,
        resync: bool,
        finished: bool,
        payload: Bytes,
    },
    /// Incremental update (`delta` payload) advancing the subscriber by
    /// exactly one version of `shard` (`finished`/`shards` as in
    /// [`Response::Snapshot`]).
    Delta {
        shard: u16,
        shards: u16,
        version: u64,
        publish_ns: u64,
        finished: bool,
        payload: Bytes,
    },
    /// The request was refused under a tenant quota (`req_id` 0 for
    /// subscription rejections, which have no request id).
    QuotaExceeded {
        req_id: u32,
        kind: QuotaKind,
    },
    /// Server-side keepalive, mirror of [`Request::Ping`]: flushes a
    /// reorder-held envelope on the server→client edge while the server
    /// waits for an Ack or has nothing to pump.
    Ping,
}

impl Response {
    /// Variant name for typed protocol-violation reports (a `Debug`
    /// rendering would drag whole snapshot payloads into the message).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Response::QueryResult { .. } => "query result",
            Response::NotFound { .. } => "not-found answer",
            Response::VersionInfo { .. } => "version info",
            Response::Snapshot { .. } => "snapshot update",
            Response::Delta { .. } => "delta update",
            Response::QuotaExceeded { .. } => "quota rejection",
            Response::Ping => "ping",
        }
    }
}

impl Request {
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            Request::Query {
                req_id,
                kind,
                app_id,
                version,
                rank_lo,
                rank_hi,
            } => {
                out.put_u8(REQ_QUERY);
                out.put_u32_le(*req_id);
                out.put_u8(*kind as u8);
                out.put_u16_le(*app_id);
                out.put_u64_le(*version);
                out.put_u32_le(*rank_lo);
                out.put_u32_le(*rank_hi);
            }
            Request::VersionInfo { req_id } => {
                out.put_u8(REQ_VERSION);
                out.put_u32_le(*req_id);
            }
            Request::Hello { tenant } => {
                out.put_u8(REQ_HELLO);
                // Tenant names are partition names; clip, don't fail, in
                // the (absurd) >64KiB case.
                let bytes = tenant.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                out.put_u16_le(n as u16);
                out.put_slice(&bytes[..n]);
            }
            Request::Subscribe => out.put_u8(REQ_SUBSCRIBE),
            Request::Ack { shard, version } => {
                out.put_u8(REQ_ACK);
                out.put_u16_le(*shard);
                out.put_u64_le(*version);
            }
            Request::Bye => out.put_u8(REQ_BYE),
            Request::Ping => out.put_u8(REQ_PING),
        }
        out.freeze()
    }

    pub fn decode(mut buf: &[u8]) -> Result<Request, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            REQ_QUERY => {
                if buf.remaining() < 4 + 1 + 2 + 8 + 4 + 4 {
                    return Err(WireError::Truncated);
                }
                let req_id = buf.get_u32_le();
                let kind_raw = buf.get_u8();
                let kind = QueryKind::from_u8(kind_raw).ok_or(WireError::BadTag(kind_raw))?;
                Ok(Request::Query {
                    req_id,
                    kind,
                    app_id: buf.get_u16_le(),
                    version: buf.get_u64_le(),
                    rank_lo: buf.get_u32_le(),
                    rank_hi: buf.get_u32_le(),
                })
            }
            REQ_VERSION => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                Ok(Request::VersionInfo {
                    req_id: buf.get_u32_le(),
                })
            }
            REQ_HELLO => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated);
                }
                let n = buf.get_u16_le() as usize;
                if buf.remaining() < n {
                    return Err(WireError::Truncated);
                }
                let tenant = String::from_utf8_lossy(&buf[..n]).into_owned();
                buf.advance(n);
                Ok(Request::Hello { tenant })
            }
            REQ_SUBSCRIBE => Ok(Request::Subscribe),
            REQ_ACK => {
                if buf.remaining() < 2 + 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Request::Ack {
                    shard: buf.get_u16_le(),
                    version: buf.get_u64_le(),
                })
            }
            REQ_BYE => Ok(Request::Bye),
            REQ_PING => Ok(Request::Ping),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Response {
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        match self {
            Response::QueryResult {
                req_id,
                kind,
                version,
                payload,
            } => {
                out.put_u8(RSP_QUERY_RESULT);
                out.put_u32_le(*req_id);
                out.put_u8(*kind as u8);
                out.put_u64_le(*version);
                out.put_slice(payload);
            }
            Response::NotFound { req_id, reason } => {
                out.put_u8(RSP_NOT_FOUND);
                out.put_u32_le(*req_id);
                out.put_u8(*reason as u8);
            }
            Response::VersionInfo {
                req_id,
                current,
                oldest,
                apps,
                finished,
            } => {
                out.put_u8(RSP_VERSION_INFO);
                out.put_u32_le(*req_id);
                out.put_u64_le(*current);
                out.put_u64_le(*oldest);
                out.put_u16_le(*apps);
                out.put_u8(*finished as u8);
            }
            Response::Snapshot {
                shard,
                shards,
                version,
                publish_ns,
                resync,
                finished,
                payload,
            } => {
                out.put_u8(RSP_SNAPSHOT);
                out.put_u16_le(*shard);
                out.put_u16_le(*shards);
                out.put_u64_le(*version);
                out.put_u64_le(*publish_ns);
                out.put_u8(*resync as u8);
                out.put_u8(*finished as u8);
                out.put_slice(payload);
            }
            Response::Delta {
                shard,
                shards,
                version,
                publish_ns,
                finished,
                payload,
            } => {
                out.put_u8(RSP_DELTA);
                out.put_u16_le(*shard);
                out.put_u16_le(*shards);
                out.put_u64_le(*version);
                out.put_u64_le(*publish_ns);
                out.put_u8(*finished as u8);
                out.put_slice(payload);
            }
            Response::QuotaExceeded { req_id, kind } => {
                out.put_u8(RSP_QUOTA_EXCEEDED);
                out.put_u32_le(*req_id);
                out.put_u8(*kind as u8);
            }
            Response::Ping => out.put_u8(RSP_PING),
        }
        out.freeze()
    }

    pub fn decode(buf: &Bytes) -> Result<Response, WireError> {
        let mut view: &[u8] = buf;
        if view.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = view.get_u8();
        match tag {
            RSP_QUERY_RESULT => {
                if view.remaining() < 4 + 1 + 8 {
                    return Err(WireError::Truncated);
                }
                let req_id = view.get_u32_le();
                let kind_raw = view.get_u8();
                let kind = QueryKind::from_u8(kind_raw).ok_or(WireError::BadTag(kind_raw))?;
                let version = view.get_u64_le();
                Ok(Response::QueryResult {
                    req_id,
                    kind,
                    version,
                    payload: buf.slice(buf.len() - view.len()..),
                })
            }
            RSP_NOT_FOUND => {
                if view.remaining() < 5 {
                    return Err(WireError::Truncated);
                }
                let req_id = view.get_u32_le();
                let reason_raw = view.get_u8();
                Ok(Response::NotFound {
                    req_id,
                    reason: NotFoundReason::from_u8(reason_raw)
                        .ok_or(WireError::BadTag(reason_raw))?,
                })
            }
            RSP_VERSION_INFO => {
                if view.remaining() < 4 + 8 + 8 + 2 + 1 {
                    return Err(WireError::Truncated);
                }
                Ok(Response::VersionInfo {
                    req_id: view.get_u32_le(),
                    current: view.get_u64_le(),
                    oldest: view.get_u64_le(),
                    apps: view.get_u16_le(),
                    finished: view.get_u8() != 0,
                })
            }
            RSP_SNAPSHOT => {
                if view.remaining() < 2 + 2 + 8 + 8 + 2 {
                    return Err(WireError::Truncated);
                }
                let shard = view.get_u16_le();
                let shards = view.get_u16_le();
                let version = view.get_u64_le();
                let publish_ns = view.get_u64_le();
                let resync = view.get_u8() != 0;
                let finished = view.get_u8() != 0;
                Ok(Response::Snapshot {
                    shard,
                    shards,
                    version,
                    publish_ns,
                    resync,
                    finished,
                    payload: buf.slice(buf.len() - view.len()..),
                })
            }
            RSP_DELTA => {
                if view.remaining() < 2 + 2 + 8 + 8 + 1 {
                    return Err(WireError::Truncated);
                }
                let shard = view.get_u16_le();
                let shards = view.get_u16_le();
                let version = view.get_u64_le();
                let publish_ns = view.get_u64_le();
                let finished = view.get_u8() != 0;
                Ok(Response::Delta {
                    shard,
                    shards,
                    version,
                    publish_ns,
                    finished,
                    payload: buf.slice(buf.len() - view.len()..),
                })
            }
            RSP_QUOTA_EXCEEDED => {
                if view.remaining() < 5 {
                    return Err(WireError::Truncated);
                }
                let req_id = view.get_u32_le();
                let kind_raw = view.get_u8();
                Ok(Response::QuotaExceeded {
                    req_id,
                    kind: QuotaKind::from_u8(kind_raw).ok_or(WireError::BadTag(kind_raw))?,
                })
            }
            RSP_PING => Ok(Response::Ping),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A server's answer to [`Request::VersionInfo`], decoded for callers.
/// With a sharded store the fields aggregate: `current` is the max over
/// shards, `oldest` the min over non-empty shards, `apps` the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    pub current: u64,
    pub oldest: u64,
    pub apps: u16,
    pub finished: bool,
}

/// One record replicated down the serve fan-out tree: the root frames a
/// [`Response::Delta`] once (`framed_rsp` — frame header, checksum and
/// all) and prefixes the routing header frontier ranks need, so interior
/// ranks forward blocks verbatim and a frontier rank delivers the inner
/// bytes to each subscriber without re-encoding or re-checksumming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutRecord {
    /// Store shard this delta advances.
    pub shard: u16,
    /// Version the delta produces.
    pub version: u64,
    /// Publication timestamp on the serve clock.
    pub publish_ns: u64,
    /// The shard's final version.
    pub is_final: bool,
    /// The framed [`Response::Delta`] ready to write to a subscriber.
    pub framed_rsp: Bytes,
}

impl FanoutRecord {
    /// Encodes the record payload (the caller frames it for the tree
    /// transport).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(2 + 8 + 8 + 1 + self.framed_rsp.len());
        out.put_u16_le(self.shard);
        out.put_u64_le(self.version);
        out.put_u64_le(self.publish_ns);
        out.put_u8(self.is_final as u8);
        out.put_slice(&self.framed_rsp);
        out.freeze()
    }

    /// Decodes a record payload; `framed_rsp` is a zero-copy slice.
    pub fn decode(buf: &Bytes) -> Result<FanoutRecord, WireError> {
        let mut view: &[u8] = buf;
        if view.remaining() < 2 + 8 + 8 + 1 {
            return Err(WireError::Truncated);
        }
        let shard = view.get_u16_le();
        let version = view.get_u64_le();
        let publish_ns = view.get_u64_le();
        let is_final = view.get_u8() != 0;
        Ok(FanoutRecord {
            shard,
            version,
            publish_ns,
            is_final,
            framed_rsp: buf.slice(buf.len() - view.len()..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Query {
                req_id: 7,
                kind: QueryKind::Profile,
                app_id: 3,
                version: 42,
                rank_lo: 1,
                rank_hi: 5,
            },
            Request::Query {
                req_id: 8,
                kind: QueryKind::Density,
                app_id: 0,
                version: 0,
                rank_lo: 0,
                rank_hi: ALL_RANKS,
            },
            Request::Query {
                req_id: 10,
                kind: QueryKind::Metrics,
                app_id: 1,
                version: 3,
                rank_lo: 0,
                rank_hi: ALL_RANKS,
            },
            Request::VersionInfo { req_id: 9 },
            Request::Hello {
                tenant: "dash-a".to_string(),
            },
            Request::Hello {
                tenant: String::new(),
            },
            Request::Subscribe,
            Request::Ack {
                shard: 3,
                version: 17,
            },
            Request::Bye,
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for rsp in [
            Response::QueryResult {
                req_id: 7,
                kind: QueryKind::Topology,
                version: 5,
                payload: Bytes::from_static(b"edges"),
            },
            Response::NotFound {
                req_id: 8,
                reason: NotFoundReason::VersionGone,
            },
            Response::VersionInfo {
                req_id: 9,
                current: 12,
                oldest: 5,
                apps: 2,
                finished: true,
            },
            Response::Snapshot {
                shard: 1,
                shards: 4,
                version: 3,
                publish_ns: 999,
                resync: true,
                finished: false,
                payload: Bytes::from_static(b"full"),
            },
            Response::Delta {
                shard: 0,
                shards: 1,
                version: 4,
                publish_ns: 1000,
                finished: true,
                payload: Bytes::from_static(b"sparse"),
            },
            Response::QuotaExceeded {
                req_id: 11,
                kind: QuotaKind::QueryRate,
            },
            Response::QuotaExceeded {
                req_id: 0,
                kind: QuotaKind::Subscriptions,
            },
            Response::Ping,
        ] {
            assert_eq!(Response::decode(&rsp.encode()).unwrap(), rsp);
        }
    }

    #[test]
    fn fanout_records_roundtrip_with_zero_copy_payload() {
        let inner = Response::Delta {
            shard: 2,
            shards: 3,
            version: 9,
            publish_ns: 777,
            finished: false,
            payload: Bytes::from_static(b"sparse"),
        };
        let framed = opmr_events::frame::try_frame(&inner.encode()).unwrap();
        let rec = FanoutRecord {
            shard: 2,
            version: 9,
            publish_ns: 777,
            is_final: false,
            framed_rsp: framed.clone(),
        };
        let wire = rec.encode();
        let back = FanoutRecord::decode(&wire).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.framed_rsp, framed);
        assert!(FanoutRecord::decode(&wire.slice(..10)).is_err());
    }

    #[test]
    fn junk_is_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xee]).is_err());
        assert!(Request::decode(&[REQ_QUERY, 1, 2]).is_err());
        assert!(Request::decode(&[REQ_HELLO, 9, 0, b'x']).is_err());
        assert!(Response::decode(&Bytes::from_static(b"\x7f")).is_err());
        assert!(Response::decode(&Bytes::from_static(b"\x84\x01")).is_err());
        assert!(Response::decode(&Bytes::from_static(b"\x87\x01\x02\x03\x04\x09")).is_err());
    }
}
