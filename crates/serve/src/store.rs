//! The versioned report snapshot store.
//!
//! Writers (engine workers hitting a publication boundary) serialize on
//! an internal mutex; readers (serving loops answering queries and
//! pumping subscriptions) take a short read lock to clone the current
//! `Arc` — the swap-on-publish "current pointer plus bounded history"
//! shape of an arc-swap, built from the vendored `parking_lot`
//! primitives. Every version stores its full encoding plus the delta
//! from its predecessor, so a subscriber inside the ring advances by
//! deltas and one outside it resyncs from `current` in O(1).

use crate::delta::encode_delta;
use crate::mono_ns;
use bytes::Bytes;
use opmr_analysis::wire::{encode_partials, AppPartial};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::Arc;

// Store publication metrics for the self-monitoring snapshot.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct StoreMetrics {
        pub publishes: Arc<Counter>,
        pub evictions: Arc<Counter>,
    }

    pub(super) fn m() -> &'static StoreMetrics {
        static M: OnceLock<StoreMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            StoreMetrics {
                publishes: r.counter("serve_publishes_total"),
                evictions: r.counter("serve_evictions_total"),
            }
        })
    }
}

/// One published report version.
pub struct SnapshotEntry {
    /// Monotonically increasing version, starting at 1.
    pub version: u64,
    /// Publication timestamp on the process-wide serve clock
    /// ([`crate::mono_ns`]); subscription lag is measured against it.
    pub publish_ns: u64,
    /// True for the final snapshot published after every instrumentation
    /// stream closed and the engine drained.
    pub is_final: bool,
    /// Applications in the snapshot.
    pub apps: u16,
    /// The full snapshot: `analysis::wire::encode_partials` bytes.
    pub encoded: Bytes,
    /// Delta from `version - 1` (absent on the first version).
    pub delta: Option<Bytes>,
}

/// Store counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Versions published.
    pub published: u64,
    /// Versions that aged out of the ring.
    pub evicted: u64,
}

struct Inner {
    /// Decoded form of the latest snapshot (the delta base).
    last_parts: Vec<AppPartial>,
    ring: VecDeque<Arc<SnapshotEntry>>,
    next_version: u64,
    writers_done: usize,
    finished: bool,
    evicted: u64,
}

/// Versioned snapshot store shared by the engine's publication hook and
/// the serving loops.
pub struct SnapshotStore {
    ring_cap: usize,
    writers: usize,
    inner: Mutex<Inner>,
    current: RwLock<Option<Arc<SnapshotEntry>>>,
}

impl SnapshotStore {
    /// A store retaining `ring` recent versions, fed by `writers` serving
    /// ranks (each must call [`SnapshotStore::mark_writer_done`] once).
    pub fn new(ring: usize, writers: usize) -> SnapshotStore {
        SnapshotStore {
            ring_cap: ring.max(1),
            writers: writers.max(1),
            inner: Mutex::new(Inner {
                last_parts: Vec::new(),
                ring: VecDeque::new(),
                next_version: 1,
                writers_done: 0,
                finished: false,
                evicted: 0,
            }),
            current: RwLock::new(None),
        }
    }

    fn publish_inner(&self, parts: Vec<AppPartial>, is_final: bool) -> u64 {
        let mut inner = self.inner.lock();
        if inner.finished {
            // The final version is by definition the last one.
            return inner.next_version - 1;
        }
        let version = inner.next_version;
        inner.next_version += 1;
        let encoded = encode_partials(&parts);
        let delta =
            (version > 1).then(|| encode_delta(version - 1, &inner.last_parts, version, &parts));
        let entry = Arc::new(SnapshotEntry {
            version,
            publish_ns: mono_ns(),
            is_final,
            apps: parts.len() as u16,
            encoded,
            delta,
        });
        inner.ring.push_back(Arc::clone(&entry));
        obs::m().publishes.inc();
        while inner.ring.len() > self.ring_cap {
            inner.ring.pop_front();
            inner.evicted += 1;
            obs::m().evictions.inc();
        }
        inner.last_parts = parts;
        inner.finished = is_final;
        // Swap `current` before releasing the writer lock so a reader can
        // never observe a ring newer than the current pointer.
        *self.current.write() = Some(entry);
        version
    }

    /// Publishes a new version; returns its number.
    pub fn publish(&self, parts: Vec<AppPartial>) -> u64 {
        self.publish_inner(parts, false)
    }

    /// Publishes the final version (after the engine drained). Later
    /// publish calls become no-ops.
    pub fn publish_final(&self, parts: Vec<AppPartial>) -> u64 {
        self.publish_inner(parts, true)
    }

    /// Records that one serving rank's instrumentation streams all closed;
    /// returns true for the last rank (which then drains the engine and
    /// calls [`SnapshotStore::publish_final`]).
    pub fn mark_writer_done(&self) -> bool {
        let mut inner = self.inner.lock();
        inner.writers_done += 1;
        inner.writers_done == self.writers
    }

    /// The latest published version, if any.
    pub fn current(&self) -> Option<Arc<SnapshotEntry>> {
        self.current.read().clone()
    }

    /// A specific version, while it is still in the ring.
    pub fn get(&self, version: u64) -> Option<Arc<SnapshotEntry>> {
        let inner = self.inner.lock();
        let front = inner.ring.front()?.version;
        if version < front {
            return None;
        }
        inner.ring.get((version - front) as usize).cloned()
    }

    /// `(oldest retained, newest)` versions; `(0, 0)` before any publish.
    pub fn version_span(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        match (inner.ring.front(), inner.ring.back()) {
            (Some(f), Some(b)) => (f.version, b.version),
            _ => (0, 0),
        }
    }

    /// True once the final version is published.
    pub fn finished(&self) -> bool {
        self.inner.lock().finished
    }

    /// Publication counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            published: inner.next_version - 1,
            evicted: inner.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::apply_delta;
    use opmr_analysis::profiler::MpiProfile;
    use opmr_analysis::topology::Topology;
    use opmr_analysis::wire::decode_partials;
    use opmr_events::EventKind;

    fn parts(hits: u64) -> Vec<AppPartial> {
        let mut profile = MpiProfile::new();
        profile.absorb_stats(0, EventKind::Send, hits, hits * 10, hits * 64, 10, 10);
        vec![AppPartial {
            app_id: 0,
            packs: hits,
            wire_bytes: hits * 48,
            decode_errors: 0,
            profile,
            topology: Topology::new(),
            waitstate: None,
            metrics: None,
        }]
    }

    #[test]
    fn versions_are_monotone_and_ring_bounded() {
        let store = SnapshotStore::new(3, 1);
        assert!(store.current().is_none());
        assert_eq!(store.version_span(), (0, 0));
        for i in 1..=10u64 {
            assert_eq!(store.publish(parts(i)), i);
        }
        assert_eq!(store.current().unwrap().version, 10);
        assert_eq!(store.version_span(), (8, 10));
        assert!(store.get(7).is_none(), "evicted");
        assert_eq!(store.get(9).unwrap().version, 9);
        let s = store.stats();
        assert_eq!(s.published, 10);
        assert_eq!(s.evicted, 7);
    }

    #[test]
    fn ring_deltas_chain_to_every_retained_version() {
        let store = SnapshotStore::new(8, 1);
        for i in 1..=6u64 {
            store.publish(parts(i * 3));
        }
        let base = store.get(1).unwrap();
        let mut live = decode_partials(&base.encoded).unwrap();
        for v in 2..=6u64 {
            let e = store.get(v).unwrap();
            let (f, t) = apply_delta(&mut live, e.delta.as_ref().unwrap()).unwrap();
            assert_eq!((f, t), (v - 1, v));
            assert_eq!(encode_partials(&live), e.encoded, "version {v}");
        }
    }

    #[test]
    fn final_publish_wins_and_sticks() {
        let store = SnapshotStore::new(4, 2);
        store.publish(parts(1));
        assert!(!store.mark_writer_done());
        assert!(store.mark_writer_done());
        let v = store.publish_final(parts(2));
        assert!(store.finished());
        assert!(store.current().unwrap().is_final);
        // Publishes after the final one are ignored.
        assert_eq!(store.publish(parts(9)), v);
        assert_eq!(store.current().unwrap().version, v);
    }
}
