//! The versioned report snapshot store.
//!
//! Writers (engine workers hitting a publication boundary) serialize on
//! an internal mutex; readers (serving loops answering queries and
//! pumping subscriptions) take a short read lock to clone the current
//! `Arc` — the swap-on-publish "current pointer plus bounded history"
//! shape of an arc-swap, built from the vendored `parking_lot`
//! primitives. Every version stores its full encoding plus the delta
//! from its predecessor, so a subscriber inside the ring advances by
//! deltas and one outside it resyncs from `current` in O(1).

use crate::delta::{checked_u16, encode_delta, EncodeError};
use crate::mono_ns;
use bytes::Bytes;
use opmr_analysis::wire::{decode_partials, encode_partials, AppPartial, WireError};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::Arc;

// Store publication metrics for the self-monitoring snapshot.
mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) struct StoreMetrics {
        pub publishes: Arc<Counter>,
        pub evictions: Arc<Counter>,
        pub shard_skips: Arc<Counter>,
    }

    pub(super) fn m() -> &'static StoreMetrics {
        static M: OnceLock<StoreMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            StoreMetrics {
                publishes: r.counter("serve_publishes_total"),
                evictions: r.counter("serve_evictions_total"),
                shard_skips: r.counter("serve_shard_publish_skips_total"),
            }
        })
    }
}

/// One published report version.
pub struct SnapshotEntry {
    /// Monotonically increasing version, starting at 1.
    pub version: u64,
    /// Publication timestamp on the process-wide serve clock
    /// ([`crate::mono_ns`]); subscription lag is measured against it.
    pub publish_ns: u64,
    /// True for the final snapshot published after every instrumentation
    /// stream closed and the engine drained.
    pub is_final: bool,
    /// Applications in the snapshot.
    pub apps: u16,
    /// The full snapshot: `analysis::wire::encode_partials` bytes.
    pub encoded: Bytes,
    /// Delta from `version - 1` (absent on the first version).
    pub delta: Option<Bytes>,
}

/// Store counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Versions published.
    pub published: u64,
    /// Versions that aged out of the ring.
    pub evicted: u64,
}

struct Inner {
    /// Decoded form of the latest snapshot (the delta base).
    last_parts: Vec<AppPartial>,
    ring: VecDeque<Arc<SnapshotEntry>>,
    next_version: u64,
    writers_done: usize,
    finished: bool,
    evicted: u64,
}

/// Versioned snapshot store shared by the engine's publication hook and
/// the serving loops.
pub struct SnapshotStore {
    ring_cap: usize,
    writers: usize,
    inner: Mutex<Inner>,
    current: RwLock<Option<Arc<SnapshotEntry>>>,
}

impl SnapshotStore {
    /// A store retaining `ring` recent versions, fed by `writers` serving
    /// ranks (each must call [`SnapshotStore::mark_writer_done`] once).
    pub fn new(ring: usize, writers: usize) -> SnapshotStore {
        SnapshotStore {
            ring_cap: ring.max(1),
            writers: writers.max(1),
            inner: Mutex::new(Inner {
                last_parts: Vec::new(),
                ring: VecDeque::new(),
                next_version: 1,
                writers_done: 0,
                finished: false,
                evicted: 0,
            }),
            current: RwLock::new(None),
        }
    }

    fn publish_inner(
        &self,
        parts: Vec<AppPartial>,
        is_final: bool,
        skip_unchanged: bool,
    ) -> Result<Option<u64>, EncodeError> {
        let mut inner = self.inner.lock();
        if inner.finished {
            // The final version is by definition the last one.
            return Ok(Some(inner.next_version - 1));
        }
        let apps = checked_u16(parts.len(), EncodeError::TooManyApps(parts.len()))?;
        let encoded = encode_partials(&parts);
        if skip_unchanged && !is_final {
            if let Some(back) = inner.ring.back() {
                if back.encoded == encoded {
                    obs::m().shard_skips.inc();
                    return Ok(None);
                }
            }
        }
        let version = inner.next_version;
        inner.next_version += 1;
        let delta = if version > 1 {
            // A delta that cannot be encoded (count overflow, already
            // counted at the failure site) degrades to a counted resync
            // for subscribers instead of poisoning the whole version.
            encode_delta(version - 1, &inner.last_parts, version, &parts).ok()
        } else {
            None
        };
        let entry = Arc::new(SnapshotEntry {
            version,
            publish_ns: mono_ns(),
            is_final,
            apps,
            encoded,
            delta,
        });
        inner.ring.push_back(Arc::clone(&entry));
        obs::m().publishes.inc();
        while inner.ring.len() > self.ring_cap {
            inner.ring.pop_front();
            inner.evicted += 1;
            obs::m().evictions.inc();
        }
        inner.last_parts = parts;
        inner.finished = is_final;
        // Swap `current` before releasing the writer lock so a reader can
        // never observe a ring newer than the current pointer.
        *self.current.write() = Some(entry);
        Ok(Some(version))
    }

    fn force_publish(&self, parts: Vec<AppPartial>, is_final: bool) -> Result<u64, EncodeError> {
        // `skip_unchanged: false` always yields a version number.
        Ok(self.publish_inner(parts, is_final, false)?.unwrap_or(0))
    }

    /// Publishes a new version; returns its number. Fails (typed, counted)
    /// when the snapshot exceeds the wire format's `u16` app count.
    pub fn publish(&self, parts: Vec<AppPartial>) -> Result<u64, EncodeError> {
        self.force_publish(parts, false)
    }

    /// Like [`SnapshotStore::publish`] but skips the version bump when the
    /// encoded snapshot is byte-identical to the current one, returning
    /// `None`. Sharded publishes route every engine snapshot at every
    /// shard; a shard whose apps saw no new packs would otherwise spam
    /// each subscriber with an empty delta per engine publication.
    pub fn publish_if_changed(&self, parts: Vec<AppPartial>) -> Result<Option<u64>, EncodeError> {
        self.publish_inner(parts, false, true)
    }

    /// Publishes the final version (after the engine drained). Later
    /// publish calls become no-ops.
    pub fn publish_final(&self, parts: Vec<AppPartial>) -> Result<u64, EncodeError> {
        self.force_publish(parts, true)
    }

    /// Records that one serving rank's instrumentation streams all closed;
    /// returns true for the last rank (which then drains the engine and
    /// calls [`SnapshotStore::publish_final`]).
    pub fn mark_writer_done(&self) -> bool {
        let mut inner = self.inner.lock();
        inner.writers_done += 1;
        inner.writers_done == self.writers
    }

    /// The latest published version, if any.
    pub fn current(&self) -> Option<Arc<SnapshotEntry>> {
        self.current.read().clone()
    }

    /// A specific version, while it is still in the ring.
    pub fn get(&self, version: u64) -> Option<Arc<SnapshotEntry>> {
        let inner = self.inner.lock();
        let front = inner.ring.front()?.version;
        if version < front {
            return None;
        }
        inner.ring.get((version - front) as usize).cloned()
    }

    /// `(oldest retained, newest)` versions; `(0, 0)` before any publish.
    pub fn version_span(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        match (inner.ring.front(), inner.ring.back()) {
            (Some(f), Some(b)) => (f.version, b.version),
            _ => (0, 0),
        }
    }

    /// True once the final version is published.
    pub fn finished(&self) -> bool {
        self.inner.lock().finished
    }

    /// Publication counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            published: inner.next_version - 1,
            evicted: inner.evicted,
        }
    }
}

/// The sharded serve store: one [`SnapshotStore`] per shard, apps routed
/// by `app_id % shards`. Each shard carries its own version sequence,
/// ring and swap-on-publish current pointer, so publishes to one shard
/// and point queries against another never contend on the same mutex.
/// A cross-shard snapshot is assembled on read ([`ShardedStore::assemble_current`]);
/// subscription delivery runs one delta chain per shard.
///
/// With `shards == 1` every accessor reduces exactly to the single-store
/// behavior, which is why the shard-0 delegates ([`ShardedStore::current`],
/// [`ShardedStore::get`], [`ShardedStore::version_span`]) exist: the
/// single-shard callers that predate sharding keep reading the same view.
pub struct ShardedStore {
    shards: Vec<SnapshotStore>,
    writers: usize,
    writers_done: Mutex<usize>,
    shard_publishes: Vec<Arc<opmr_obs::Counter>>,
}

impl ShardedStore {
    /// A store of `shards` shards, each retaining `ring` recent versions,
    /// fed by `writers` serving ranks (each must call
    /// [`ShardedStore::mark_writer_done`] once).
    pub fn new(shards: usize, ring: usize, writers: usize) -> ShardedStore {
        let n = shards.max(1);
        let r = opmr_obs::registry();
        ShardedStore {
            shards: (0..n).map(|_| SnapshotStore::new(ring, 1)).collect(),
            writers: writers.max(1),
            writers_done: Mutex::new(0),
            shard_publishes: (0..n)
                .map(|s| r.counter(&format!("serve_shard_publishes_total{{shard=\"{s}\"}}")))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's store.
    pub fn shard(&self, shard: usize) -> &SnapshotStore {
        &self.shards[shard]
    }

    /// The shard an application's report lives in.
    pub fn shard_of_app(&self, app_id: u16) -> usize {
        app_id as usize % self.shards.len()
    }

    fn split(&self, parts: Vec<AppPartial>) -> Vec<Vec<AppPartial>> {
        let mut by_shard: Vec<Vec<AppPartial>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for p in parts {
            let s = self.shard_of_app(p.app_id);
            by_shard[s].push(p);
        }
        by_shard
    }

    /// Publishes one engine snapshot across the shards. A shard whose
    /// slice is byte-identical to its current version is skipped (counted)
    /// rather than version-bumped; a shard with no apps at all is left
    /// untouched until [`ShardedStore::publish_final`].
    pub fn publish(&self, parts: Vec<AppPartial>) -> Result<(), EncodeError> {
        for (s, shard_parts) in self.split(parts).into_iter().enumerate() {
            if shard_parts.is_empty() {
                continue;
            }
            if self.shards[s].publish_if_changed(shard_parts)?.is_some() {
                self.shard_publishes[s].inc();
            }
        }
        Ok(())
    }

    /// Publishes the final version on *every* shard — including empty
    /// ones, so [`ShardedStore::finished`] means all shards finished and a
    /// subscriber's per-shard chains all terminate.
    pub fn publish_final(&self, parts: Vec<AppPartial>) -> Result<(), EncodeError> {
        for (s, shard_parts) in self.split(parts).into_iter().enumerate() {
            self.shards[s].publish_final(shard_parts)?;
            self.shard_publishes[s].inc();
        }
        Ok(())
    }

    /// Records that one serving rank's instrumentation streams all closed;
    /// returns true for the last rank (which then drains the engine and
    /// calls [`ShardedStore::publish_final`]).
    pub fn mark_writer_done(&self) -> bool {
        let mut done = self.writers_done.lock();
        *done += 1;
        *done == self.writers
    }

    /// True once every shard published its final version.
    pub fn finished(&self) -> bool {
        self.shards.iter().all(|s| s.finished())
    }

    /// Per-shard current version numbers (0 before a shard's first
    /// publish) — the store's version vector.
    pub fn versions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.current().map_or(0, |e| e.version))
            .collect()
    }

    /// Assembles the cross-shard current snapshot on read: decodes each
    /// shard's current version and merges the app partials back into one
    /// `app_id`-sorted report. Returns the partials plus the per-shard
    /// version vector they were assembled from.
    pub fn assemble_current(&self) -> Result<(Vec<AppPartial>, Vec<u64>), WireError> {
        let mut parts = Vec::new();
        let mut versions = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            match s.current() {
                Some(e) => {
                    versions.push(e.version);
                    parts.extend(decode_partials(&e.encoded)?);
                }
                None => versions.push(0),
            }
        }
        parts.sort_by_key(|p| p.app_id);
        Ok((parts, versions))
    }

    /// Aggregated publication counters across shards.
    pub fn stats(&self) -> StoreStats {
        let mut agg = StoreStats::default();
        for s in &self.shards {
            let st = s.stats();
            agg.published += st.published;
            agg.evicted += st.evicted;
        }
        agg
    }

    /// Shard 0's latest version — the whole store's latest when
    /// `shards == 1` (the pre-sharding callers' view).
    pub fn current(&self) -> Option<Arc<SnapshotEntry>> {
        self.shards[0].current()
    }

    /// Shard 0's view of a specific version (see [`ShardedStore::current`]).
    pub fn get(&self, version: u64) -> Option<Arc<SnapshotEntry>> {
        self.shards[0].get(version)
    }

    /// Shard 0's `(oldest, newest)` span (see [`ShardedStore::current`]).
    pub fn version_span(&self) -> (u64, u64) {
        self.shards[0].version_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::apply_delta;
    use opmr_analysis::profiler::MpiProfile;
    use opmr_analysis::topology::Topology;
    use opmr_analysis::wire::decode_partials;
    use opmr_events::EventKind;

    fn parts(hits: u64) -> Vec<AppPartial> {
        let mut profile = MpiProfile::new();
        profile.absorb_stats(0, EventKind::Send, hits, hits * 10, hits * 64, 10, 10);
        vec![AppPartial {
            app_id: 0,
            packs: hits,
            wire_bytes: hits * 48,
            decode_errors: 0,
            profile,
            topology: Topology::new(),
            waitstate: None,
            metrics: None,
        }]
    }

    #[test]
    fn shrinking_app_set_degrades_delta_to_resync() {
        // A publish that drops an app cannot ride the delta chain (no
        // tombstones on the wire); the version still lands, but carries
        // no delta so subscribers resync from the full snapshot.
        let store = SnapshotStore::new(4, 1);
        let mut two = parts(3);
        let mut extra = parts(5);
        extra[0].app_id = 7;
        two.append(&mut extra);
        store.publish(two).unwrap();
        let v = store.publish(parts(4)).unwrap();
        let entry = store.get(v).unwrap();
        assert!(entry.delta.is_none(), "removal must not encode as a delta");
        let v3 = store.publish(parts(6)).unwrap();
        assert!(
            store.get(v3).unwrap().delta.is_some(),
            "chain resumes once the app set is stable again"
        );
    }

    #[test]
    fn versions_are_monotone_and_ring_bounded() {
        let store = SnapshotStore::new(3, 1);
        assert!(store.current().is_none());
        assert_eq!(store.version_span(), (0, 0));
        for i in 1..=10u64 {
            assert_eq!(store.publish(parts(i)).unwrap(), i);
        }
        assert_eq!(store.current().unwrap().version, 10);
        assert_eq!(store.version_span(), (8, 10));
        assert!(store.get(7).is_none(), "evicted");
        assert_eq!(store.get(9).unwrap().version, 9);
        let s = store.stats();
        assert_eq!(s.published, 10);
        assert_eq!(s.evicted, 7);
    }

    #[test]
    fn ring_deltas_chain_to_every_retained_version() {
        let store = SnapshotStore::new(8, 1);
        for i in 1..=6u64 {
            store.publish(parts(i * 3)).unwrap();
        }
        let base = store.get(1).unwrap();
        let mut live = decode_partials(&base.encoded).unwrap();
        for v in 2..=6u64 {
            let e = store.get(v).unwrap();
            let (f, t) = apply_delta(&mut live, e.delta.as_ref().unwrap()).unwrap();
            assert_eq!((f, t), (v - 1, v));
            assert_eq!(encode_partials(&live), e.encoded, "version {v}");
        }
    }

    #[test]
    fn final_publish_wins_and_sticks() {
        let store = SnapshotStore::new(4, 2);
        store.publish(parts(1)).unwrap();
        assert!(!store.mark_writer_done());
        assert!(store.mark_writer_done());
        let v = store.publish_final(parts(2)).unwrap();
        assert!(store.finished());
        assert!(store.current().unwrap().is_final);
        // Publishes after the final one are ignored.
        assert_eq!(store.publish(parts(9)).unwrap(), v);
        assert_eq!(store.current().unwrap().version, v);
    }

    #[test]
    fn unchanged_publish_is_skipped_only_on_the_if_changed_path() {
        let store = SnapshotStore::new(4, 1);
        assert_eq!(store.publish_if_changed(parts(1)).unwrap(), Some(1));
        assert_eq!(store.publish_if_changed(parts(1)).unwrap(), None);
        assert_eq!(store.publish_if_changed(parts(2)).unwrap(), Some(2));
        // The unconditional path still bumps on identical snapshots.
        assert_eq!(store.publish(parts(2)).unwrap(), 3);
        assert_eq!(store.stats().published, 3);
    }

    fn multi_parts(hits: u64, app_ids: &[u16]) -> Vec<AppPartial> {
        app_ids
            .iter()
            .flat_map(|&id| {
                let mut p = parts(hits + id as u64);
                p[0].app_id = id;
                p
            })
            .collect()
    }

    #[test]
    fn sharded_store_routes_apps_and_skips_idle_shards() {
        let store = ShardedStore::new(2, 4, 1);
        assert_eq!(store.shards(), 2);
        assert_eq!(store.shard_of_app(0), 0);
        assert_eq!(store.shard_of_app(3), 1);
        store.publish(multi_parts(1, &[0, 1])).unwrap();
        assert_eq!(store.versions(), vec![1, 1]);
        // Only app 1 (shard 1) changes: shard 0's slice is byte-identical
        // and must not bump its version.
        let mut next = multi_parts(1, &[0, 1]);
        next[1].packs += 5;
        store.publish(next).unwrap();
        assert_eq!(store.versions(), vec![1, 2]);
        // Per-shard rings hold per-shard slices.
        assert_eq!(store.shard(0).current().unwrap().apps, 1);
        assert_eq!(store.shard(1).current().unwrap().apps, 1);
    }

    #[test]
    fn sharded_final_reaches_every_shard_even_empty_ones() {
        // 3 shards but only apps 0 and 1: shard 2 sees nothing until the
        // final publish, which must still terminate its chain.
        let store = ShardedStore::new(3, 4, 2);
        store.publish(multi_parts(1, &[0, 1])).unwrap();
        assert!(!store.finished());
        assert!(!store.mark_writer_done());
        assert!(store.mark_writer_done());
        store.publish_final(multi_parts(2, &[0, 1])).unwrap();
        assert!(store.finished());
        assert_eq!(store.versions(), vec![2, 2, 1]);
        let empty_final = store.shard(2).current().unwrap();
        assert!(empty_final.is_final);
        assert_eq!(empty_final.apps, 0);
        // Publishes after the final are no-ops on every shard.
        store.publish(multi_parts(9, &[0, 1, 2])).unwrap();
        assert_eq!(store.versions(), vec![2, 2, 1]);
    }

    #[test]
    fn cross_shard_snapshot_assembles_sorted_on_read() {
        let store = ShardedStore::new(2, 4, 1);
        store.publish(multi_parts(3, &[2, 0, 1, 3])).unwrap();
        let (parts, versions) = store.assemble_current().unwrap();
        assert_eq!(versions, vec![1, 1]);
        assert_eq!(
            parts.iter().map(|p| p.app_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Re-encoding the assembly matches encoding the sorted originals.
        let mut sorted = multi_parts(3, &[2, 0, 1, 3]);
        sorted.sort_by_key(|p| p.app_id);
        assert_eq!(encode_partials(&parts), encode_partials(&sorted));
    }

    #[test]
    fn single_shard_delegates_match_shard_zero() {
        let store = ShardedStore::new(1, 3, 1);
        for i in 1..=5u64 {
            store.publish(multi_parts(i, &[0])).unwrap();
        }
        assert_eq!(store.current().unwrap().version, 5);
        assert_eq!(store.version_span(), (3, 5));
        assert_eq!(store.get(4).unwrap().version, 4);
        assert_eq!(store.stats().published, 5);
        assert_eq!(store.stats().evicted, 2);
    }
}
