//! Delta encoding between consecutive report snapshot versions.
//!
//! A delta carries *replacement values*, not arithmetic differences:
//! `CallStats.min_ns`/`max_ns` are not additive, so a changed
//! `(rank, kind)` profile cell, topology edge or wait-state block travels
//! as its full new value. Because `analysis::wire` encodes profiles and
//! topologies by deterministic iteration over exactly those cells (and
//! derives rank counts from them), reconstructing the cell set exactly
//! reconstructs the *encoded snapshot* byte-for-byte — the property the
//! subscription protocol is built on.
//!
//! Aggregates normally only grow, but the encoder does not assume it: an
//! application whose cells shrank or vanished (e.g. snapshots racing on
//! the publisher side) falls back to a full per-app replacement, keeping
//! the apply path correct for arbitrary snapshot pairs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use opmr_analysis::profiler::{CallStats, MpiProfile};
use opmr_analysis::topology::Topology;
use opmr_analysis::wire::{
    decode_profile, decode_topology, decode_waitstats, encode_profile, encode_topology,
    encode_waitstats, AppPartial, WireError,
};
use opmr_events::EventKind;
use opmr_metrics::MetricsSeries;
use std::collections::BTreeMap;

/// Magic prefix of an encoded snapshot delta ("OPSD").
pub const DELTA_MAGIC: u32 = u32::from_le_bytes(*b"OPSD");
/// Wire version of the delta encoding.
pub const DELTA_VERSION: u16 = 1;

const APP_FULL: u8 = 1;
const APP_SPARSE: u8 = 2;

/// Typed overflow error from the snapshot/delta encoders. The wire format
/// caps entry counts (`u16` app counts, `u32` cell/edge/window counts);
/// a snapshot past those caps must fail loudly instead of truncating the
/// count and silently corrupting the frame for every subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// More apps in one snapshot than a `u16` count can carry.
    TooManyApps(usize),
    /// More changed profile cells than a `u32` count can carry.
    TooManyCells(usize),
    /// More changed topology edges than a `u32` count can carry.
    TooManyEdges(usize),
    /// More changed metrics windows than a `u32` count can carry.
    TooManyWindows(usize),
    /// An app present in `from` is missing from `to`. The delta format has
    /// no tombstones (apps never leave a live report), so a shrinking app
    /// set cannot be expressed as a delta and must resync instead.
    AppRemoved(u16),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooManyApps(n) => write!(f, "{n} apps exceed the u16 wire count"),
            EncodeError::TooManyCells(n) => {
                write!(f, "{n} profile cells exceed the u32 wire count")
            }
            EncodeError::TooManyEdges(n) => {
                write!(f, "{n} topology edges exceed the u32 wire count")
            }
            EncodeError::TooManyWindows(n) => {
                write!(f, "{n} metrics windows exceed the u32 wire count")
            }
            EncodeError::AppRemoved(id) => {
                write!(
                    f,
                    "app {id} left the snapshot; deltas cannot express removal"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Ticks the overflow counter at the point an [`EncodeError`] is made, so
/// every rejected encode is visible even where the caller degrades
/// gracefully (e.g. the store falling back from delta to resync).
fn overflow(e: EncodeError) -> EncodeError {
    obs::obs().encode_overflows.inc();
    e
}

pub(crate) fn checked_u16(n: usize, e: EncodeError) -> Result<u16, EncodeError> {
    u16::try_from(n).map_err(|_| overflow(e))
}

fn checked_u32(n: usize, e: EncodeError) -> Result<u32, EncodeError> {
    u32::try_from(n).map_err(|_| overflow(e))
}

mod obs {
    use opmr_obs::{registry, Counter};
    use std::sync::{Arc, OnceLock};

    pub struct Obs {
        pub encode_overflows: Arc<Counter>,
    }

    pub fn obs() -> &'static Obs {
        static OBS: OnceLock<Obs> = OnceLock::new();
        OBS.get_or_init(|| Obs {
            encode_overflows: registry().counter("serve_encode_overflows_total"),
        })
    }
}

fn profile_cells(p: &MpiProfile) -> BTreeMap<(u32, u16), CallStats> {
    let mut cells = BTreeMap::new();
    for kind in p.kinds() {
        for rank in 0..p.ranks() {
            if let Some(s) = p.rank_kind(rank, kind) {
                cells.insert((rank, kind as u16), *s);
            }
        }
    }
    cells
}

fn rebuild_profile(cells: &BTreeMap<(u32, u16), CallStats>, span_ns: u64) -> MpiProfile {
    let mut p = MpiProfile::new();
    for (&(rank, kind_raw), s) in cells {
        // Kinds are validated on decode; an unknown one can only mean the
        // cell map was built from corrupt state, so skip it rather than
        // abort the whole rebuild.
        let Some(kind) = EventKind::from_u16(kind_raw) else {
            continue;
        };
        p.absorb_stats(rank, kind, s.hits, s.time_ns, s.bytes, s.min_ns, s.max_ns);
    }
    p.absorb_span(span_ns);
    p
}

fn topology_edges(t: &Topology) -> BTreeMap<(u32, u32), (u64, u64, u64)> {
    t.sorted_edges()
        .into_iter()
        .map(|((s, d), w)| ((s, d), (w.hits, w.bytes, w.time_ns)))
        .collect()
}

fn rebuild_topology(edges: &BTreeMap<(u32, u32), (u64, u64, u64)>) -> Topology {
    let mut t = Topology::new();
    for (&(s, d), &(hits, bytes, time_ns)) in edges {
        t.add_weighted(s, d, hits, bytes, time_ns);
    }
    t
}

fn encoded_waitstate(a: &AppPartial) -> Option<Bytes> {
    a.waitstate.as_ref().map(|w| {
        let mut buf = BytesMut::new();
        encode_waitstats(w, &mut buf);
        buf.freeze()
    })
}

/// True when `to` can be expressed as a sparse cell/edge update on `from`
/// (nothing shrank or disappeared).
fn sparse_applicable(from: &AppPartial, to: &AppPartial) -> bool {
    let from_cells = profile_cells(&from.profile);
    let to_cells = profile_cells(&to.profile);
    if !from_cells.keys().all(|k| to_cells.contains_key(k)) {
        return false;
    }
    let from_edges = topology_edges(&from.topology);
    let to_edges = topology_edges(&to.topology);
    if !from_edges.keys().all(|k| to_edges.contains_key(k)) {
        return false;
    }
    // A wait-state block that vanished cannot be patched sparsely.
    if from.waitstate.is_some() && to.waitstate.is_none() {
        return false;
    }
    // Likewise the metrics series. A window-width change invalidates every
    // cell, and a vanished window would survive a changed-window patch
    // (the encoder only walks the target's windows) — both travel full.
    match (&from.metrics, &to.metrics) {
        (Some(_), None) => false,
        (Some(a), Some(b)) => {
            a.window_ns() == b.window_ns() && a.window_indices().all(|w| b.window(w).is_some())
        }
        _ => true,
    }
}

fn encode_app_full(a: &AppPartial, out: &mut BytesMut) {
    out.put_u64_le(a.packs);
    out.put_u64_le(a.wire_bytes);
    out.put_u64_le(a.decode_errors);
    encode_profile(&a.profile, out);
    encode_topology(&a.topology, out);
    match &a.waitstate {
        Some(w) => {
            out.put_u8(1);
            encode_waitstats(w, out);
        }
        None => out.put_u8(0),
    }
    match &a.metrics {
        Some(m) => {
            out.put_u8(1);
            m.encode_into(out);
        }
        None => out.put_u8(0),
    }
}

fn encode_app_sparse(
    from: &AppPartial,
    to: &AppPartial,
    out: &mut BytesMut,
) -> Result<(), EncodeError> {
    out.put_u64_le(to.packs);
    out.put_u64_le(to.wire_bytes);
    out.put_u64_le(to.decode_errors);
    out.put_u64_le(to.profile.span_ns());

    let from_cells = profile_cells(&from.profile);
    let to_cells = profile_cells(&to.profile);
    let changed: Vec<(&(u32, u16), &CallStats)> = to_cells
        .iter()
        .filter(|(k, s)| from_cells.get(*k) != Some(*s))
        .collect();
    out.put_u32_le(checked_u32(
        changed.len(),
        EncodeError::TooManyCells(changed.len()),
    )?);
    for (&(rank, kind_raw), s) in changed {
        out.put_u32_le(rank);
        out.put_u16_le(kind_raw);
        out.put_u64_le(s.hits);
        out.put_u64_le(s.time_ns);
        out.put_u64_le(s.bytes);
        out.put_u64_le(s.min_ns);
        out.put_u64_le(s.max_ns);
    }

    let from_edges = topology_edges(&from.topology);
    let to_edges = topology_edges(&to.topology);
    let changed: Vec<_> = to_edges
        .iter()
        .filter(|(k, w)| from_edges.get(*k) != Some(*w))
        .collect();
    out.put_u32_le(checked_u32(
        changed.len(),
        EncodeError::TooManyEdges(changed.len()),
    )?);
    for (&(s, d), &(hits, bytes, time_ns)) in changed {
        out.put_u32_le(s);
        out.put_u32_le(d);
        out.put_u64_le(hits);
        out.put_u64_le(bytes);
        out.put_u64_le(time_ns);
    }

    match (
        &to.waitstate,
        encoded_waitstate(from) == encoded_waitstate(to),
    ) {
        (Some(w), false) => {
            out.put_u8(1);
            encode_waitstats(w, out);
        }
        _ => out.put_u8(0),
    }

    // Metrics windows only accumulate, so changed (or new) windows travel
    // as per-window replacement values — the "delta chain over windows".
    match &to.metrics {
        None => out.put_u8(0),
        Some(to_m) => {
            let prev = from.metrics.as_ref();
            let changed: Vec<u64> = to_m
                .window_indices()
                .filter(|&w| prev.and_then(|p| p.window(w)) != to_m.window(w))
                .collect();
            if changed.is_empty() && prev.is_some() {
                out.put_u8(0);
            } else {
                out.put_u8(1);
                out.put_u64_le(to_m.window_ns());
                out.put_u32_le(checked_u32(
                    changed.len(),
                    EncodeError::TooManyWindows(changed.len()),
                )?);
                for w in changed {
                    to_m.encode_window_into(w, out);
                }
            }
        }
    }
    Ok(())
}

/// Encodes the delta turning snapshot `from` (version `from_version`) into
/// snapshot `to` (version `to_version`). Both partial lists must be sorted
/// by `app_id` (as `AnalysisEngine::snapshot_partials` produces them).
pub fn encode_delta(
    from_version: u64,
    from: &[AppPartial],
    to_version: u64,
    to: &[AppPartial],
) -> Result<Bytes, EncodeError> {
    let mut out = BytesMut::new();
    out.put_u32_le(DELTA_MAGIC);
    out.put_u16_le(DELTA_VERSION);
    out.put_u64_le(from_version);
    out.put_u64_le(to_version);
    let base: BTreeMap<u16, &AppPartial> = from.iter().map(|a| (a.app_id, a)).collect();
    // Every `to` app is included (counters move every window). The format
    // has no tombstones, so an app that vanished from `to` is unencodable:
    // applying such a delta would silently retain the stale app. Refuse,
    // and let the caller fall back to a full-snapshot resync.
    if let Some(gone) = base
        .keys()
        .find(|id| to.binary_search_by_key(*id, |a| a.app_id).is_err())
    {
        return Err(overflow(EncodeError::AppRemoved(*gone)));
    }
    out.put_u16_le(checked_u16(to.len(), EncodeError::TooManyApps(to.len()))?);
    for a in to {
        out.put_u16_le(a.app_id);
        match base.get(&a.app_id) {
            Some(prev) if sparse_applicable(prev, a) => {
                out.put_u8(APP_SPARSE);
                encode_app_sparse(prev, a, &mut out)?;
            }
            _ => {
                out.put_u8(APP_FULL);
                encode_app_full(a, &mut out);
            }
        }
    }
    Ok(out.freeze())
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn decode_header(buf: &mut &[u8]) -> Result<(u64, u64, usize), WireError> {
    need(buf, 4 + 2 + 8 + 8 + 2)?;
    let magic = buf.get_u32_le();
    if magic != DELTA_MAGIC {
        return Err(WireError::BadTag((magic & 0xff) as u8));
    }
    let version = buf.get_u16_le();
    if version != DELTA_VERSION {
        return Err(WireError::BadTag(version as u8));
    }
    let from_version = buf.get_u64_le();
    let to_version = buf.get_u64_le();
    let n_apps = buf.get_u16_le() as usize;
    Ok((from_version, to_version, n_apps))
}

/// Reads the `(from_version, to_version)` pair off an encoded delta
/// without applying it.
pub fn delta_versions(mut buf: &[u8]) -> Result<(u64, u64), WireError> {
    let (from, to, _) = decode_header(&mut buf)?;
    Ok((from, to))
}

fn decode_app_full(app_id: u16, buf: &mut &[u8]) -> Result<AppPartial, WireError> {
    need(buf, 24)?;
    let packs = buf.get_u64_le();
    let wire_bytes = buf.get_u64_le();
    let decode_errors = buf.get_u64_le();
    let profile = decode_profile(buf)?;
    let topology = decode_topology(buf)?;
    need(buf, 1)?;
    let waitstate = match buf.get_u8() {
        0 => None,
        1 => Some(decode_waitstats(buf)?),
        t => return Err(WireError::BadTag(t)),
    };
    need(buf, 1)?;
    let metrics = match buf.get_u8() {
        0 => None,
        1 => Some(MetricsSeries::decode(buf).map_err(WireError::from)?),
        t => return Err(WireError::BadTag(t)),
    };
    Ok(AppPartial {
        app_id,
        packs,
        wire_bytes,
        decode_errors,
        profile,
        topology,
        waitstate,
        metrics,
    })
}

fn apply_app_sparse(base: &mut AppPartial, buf: &mut &[u8]) -> Result<(), WireError> {
    need(buf, 32)?;
    base.packs = buf.get_u64_le();
    base.wire_bytes = buf.get_u64_le();
    base.decode_errors = buf.get_u64_le();
    let span_ns = buf.get_u64_le();

    need(buf, 4)?;
    let n_cells = buf.get_u32_le() as usize;
    let mut cells = profile_cells(&base.profile);
    for _ in 0..n_cells {
        need(buf, 4 + 2 + 5 * 8)?;
        let rank = buf.get_u32_le();
        let kind_raw = buf.get_u16_le();
        EventKind::from_u16(kind_raw).ok_or(WireError::BadKind(kind_raw))?;
        cells.insert(
            (rank, kind_raw),
            CallStats {
                hits: buf.get_u64_le(),
                time_ns: buf.get_u64_le(),
                bytes: buf.get_u64_le(),
                min_ns: buf.get_u64_le(),
                max_ns: buf.get_u64_le(),
            },
        );
    }
    base.profile = rebuild_profile(&cells, span_ns);

    need(buf, 4)?;
    let n_edges = buf.get_u32_le() as usize;
    let mut edges = topology_edges(&base.topology);
    for _ in 0..n_edges {
        need(buf, 8 + 3 * 8)?;
        let s = buf.get_u32_le();
        let d = buf.get_u32_le();
        edges.insert(
            (s, d),
            (buf.get_u64_le(), buf.get_u64_le(), buf.get_u64_le()),
        );
    }
    base.topology = rebuild_topology(&edges);

    need(buf, 1)?;
    match buf.get_u8() {
        0 => {}
        1 => base.waitstate = Some(decode_waitstats(buf)?),
        t => return Err(WireError::BadTag(t)),
    }

    need(buf, 1)?;
    match buf.get_u8() {
        0 => {}
        1 => {
            need(buf, 12)?;
            let window_ns = buf.get_u64_le();
            let n_windows = buf.get_u32_le() as usize;
            let mut m = match base.metrics.take() {
                Some(m) if m.window_ns() == window_ns => m,
                _ => MetricsSeries::new(window_ns),
            };
            for _ in 0..n_windows {
                let (w, cells) = MetricsSeries::decode_window(buf).map_err(WireError::from)?;
                m.replace_window(w, cells);
            }
            base.metrics = Some(m);
        }
        t => return Err(WireError::BadTag(t)),
    }
    Ok(())
}

/// Applies an encoded delta to `base` (sorted by `app_id`), mutating it
/// into the target snapshot. Returns `(from_version, to_version)`; the
/// caller is responsible for checking `from_version` against the version
/// `base` currently represents.
pub fn apply_delta(base: &mut Vec<AppPartial>, mut buf: &[u8]) -> Result<(u64, u64), WireError> {
    let (from_version, to_version, n_apps) = decode_header(&mut buf)?;
    for _ in 0..n_apps {
        need(&buf, 3)?;
        let app_id = buf.get_u16_le();
        let tag = buf.get_u8();
        match tag {
            APP_FULL => {
                let app = decode_app_full(app_id, &mut buf)?;
                match base.binary_search_by_key(&app_id, |a| a.app_id) {
                    Ok(i) => base[i] = app,
                    Err(i) => base.insert(i, app),
                }
            }
            APP_SPARSE => {
                let i = base
                    .binary_search_by_key(&app_id, |a| a.app_id)
                    .map_err(|_| WireError::BadTag(tag))?;
                apply_app_sparse(&mut base[i], &mut buf)?;
            }
            t => return Err(WireError::BadTag(t)),
        }
    }
    Ok((from_version, to_version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_analysis::waitstate::WaitStats;
    use opmr_analysis::wire::encode_partials;
    use opmr_events::Event;

    fn events_at(rounds: u32) -> Vec<Event> {
        let mut v = Vec::new();
        for i in 0..rounds {
            for rank in 0..4u32 {
                v.push(Event {
                    time_ns: i as u64 * 1000 + rank as u64,
                    duration_ns: 10 + (i % 7) as u64,
                    kind: if i % 3 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    rank,
                    peer: ((rank + 1) % 4) as i32,
                    tag: 0,
                    comm: 0,
                    bytes: 64 + i as u64,
                });
            }
        }
        v
    }

    fn profile_at(rounds: u32) -> MpiProfile {
        let mut p = MpiProfile::new();
        for e in events_at(rounds) {
            p.add(&e);
        }
        p
    }

    fn metrics_at(rounds: u32) -> MetricsSeries {
        let mut m = MetricsSeries::new(500);
        for e in events_at(rounds) {
            m.add(&e);
        }
        m
    }

    fn partial_at(app_id: u16, rounds: u32) -> AppPartial {
        let mut topology = Topology::new();
        for rank in 0..4u32 {
            topology.add_weighted(rank, (rank + 1) % 4, rounds as u64, rounds as u64 * 64, 10);
        }
        AppPartial {
            app_id,
            packs: rounds as u64,
            wire_bytes: rounds as u64 * 48,
            decode_errors: 0,
            profile: profile_at(rounds),
            topology,
            waitstate: Some(WaitStats {
                matched: rounds as u64,
                ..WaitStats::default()
            }),
            metrics: Some(metrics_at(rounds)),
        }
    }

    #[test]
    fn applied_delta_reencodes_byte_identically() {
        // The load-bearing property of the subscription protocol.
        let mut versions: Vec<Vec<AppPartial>> = Vec::new();
        for rounds in [3u32, 7, 7, 19, 40] {
            versions.push(vec![partial_at(0, rounds), partial_at(5, rounds * 2)]);
        }
        let mut live = versions[0].clone();
        for w in versions.windows(2) {
            let d = encode_delta(1, &w[0], 2, &w[1]).unwrap();
            let (f, t) = apply_delta(&mut live, &d).unwrap();
            assert_eq!((f, t), (1, 2));
            assert_eq!(
                encode_partials(&live),
                encode_partials(&w[1]),
                "delta application diverged from target snapshot"
            );
        }
    }

    #[test]
    fn removed_app_refuses_to_encode() {
        // No tombstones on the wire: applying a delta can never drop an
        // app, so encoding one from a shrunken snapshot must fail loudly
        // (the store then degrades that version to a snapshot resync).
        let v1 = vec![partial_at(0, 5), partial_at(4, 3)];
        let v2 = vec![partial_at(0, 6)];
        assert_eq!(
            encode_delta(1, &v1, 2, &v2),
            Err(EncodeError::AppRemoved(4))
        );
    }

    #[test]
    fn new_app_travels_full() {
        let v1 = vec![partial_at(0, 5)];
        let v2 = vec![partial_at(0, 6), partial_at(9, 2)];
        let d = encode_delta(1, &v1, 2, &v2).unwrap();
        let mut live = v1.clone();
        apply_delta(&mut live, &d).unwrap();
        assert_eq!(encode_partials(&live), encode_partials(&v2));
        assert_eq!(live.len(), 2);
        assert_eq!(live[1].app_id, 9);
    }

    #[test]
    fn unchanged_apps_cost_little() {
        let v = vec![partial_at(0, 50)];
        let d = encode_delta(1, &v, 2, &v).unwrap();
        let full = encode_partials(&v);
        assert!(
            d.len() < full.len() / 2,
            "no-change delta ({}) should be far smaller than a snapshot ({})",
            d.len(),
            full.len()
        );
        let mut live = v.clone();
        apply_delta(&mut live, &d).unwrap();
        assert_eq!(encode_partials(&live), full);
    }

    #[test]
    fn shrinking_aggregates_fall_back_to_full_replacement() {
        // Not reachable from a monotone publisher, but the codec must not
        // silently corrupt if it ever happens.
        let big = vec![partial_at(0, 20)];
        let small = vec![partial_at(0, 4)];
        let d = encode_delta(1, &big, 2, &small).unwrap();
        let mut live = big.clone();
        apply_delta(&mut live, &d).unwrap();
        assert_eq!(encode_partials(&live), encode_partials(&small));
    }

    #[test]
    fn metrics_window_width_change_falls_back_to_full() {
        let v1 = vec![partial_at(0, 5)];
        let mut v2 = vec![partial_at(0, 6)];
        let mut m = MetricsSeries::new(123);
        for e in events_at(6) {
            m.add(&e);
        }
        v2[0].metrics = Some(m);
        let d = encode_delta(1, &v1, 2, &v2).unwrap();
        let mut live = v1.clone();
        apply_delta(&mut live, &d).unwrap();
        assert_eq!(encode_partials(&live), encode_partials(&v2));
        assert_eq!(live[0].metrics.as_ref().map(|m| m.window_ns()), Some(123));
    }

    #[test]
    fn appearing_metrics_patch_sparsely() {
        let mut v1 = vec![partial_at(0, 5)];
        v1[0].metrics = None;
        let v2 = vec![partial_at(0, 6)];
        let d = encode_delta(1, &v1, 2, &v2).unwrap();
        let mut live = v1.clone();
        apply_delta(&mut live, &d).unwrap();
        assert_eq!(encode_partials(&live), encode_partials(&v2));
    }

    #[test]
    fn app_count_overflow_is_typed_and_counted() {
        // 65536 apps cannot be counted in the u16 wire field; the encoder
        // must refuse (and tick the overflow counter) rather than truncate
        // to 0 and corrupt the frame.
        let minimal = |app_id: u16| AppPartial {
            app_id,
            packs: 0,
            wire_bytes: 0,
            decode_errors: 0,
            profile: MpiProfile::new(),
            topology: Topology::new(),
            waitstate: None,
            metrics: None,
        };
        let before = opmr_obs::registry()
            .snapshot()
            .counter("serve_encode_overflows_total")
            .unwrap_or(0);
        let at_cap: Vec<AppPartial> = (0..u16::MAX).map(minimal).collect();
        assert!(encode_delta(1, &[], 2, &at_cap).is_ok());
        let mut past_cap = at_cap;
        past_cap.push(minimal(u16::MAX));
        // 65536 distinct app ids don't exist; the count check fires first.
        assert_eq!(
            encode_delta(1, &[], 2, &past_cap),
            Err(EncodeError::TooManyApps(65536))
        );
        let after = opmr_obs::registry()
            .snapshot()
            .counter("serve_encode_overflows_total")
            .unwrap_or(0);
        assert!(after > before, "overflow counter did not move");
    }

    #[test]
    fn checked_counts_hold_exactly_at_the_type_boundary() {
        assert_eq!(
            checked_u16(u16::MAX as usize, EncodeError::TooManyApps(0)),
            Ok(u16::MAX)
        );
        assert_eq!(
            checked_u16(u16::MAX as usize + 1, EncodeError::TooManyApps(65536)),
            Err(EncodeError::TooManyApps(65536))
        );
        assert_eq!(
            checked_u32(u32::MAX as usize, EncodeError::TooManyCells(0)),
            Ok(u32::MAX)
        );
        assert_eq!(
            checked_u32(u32::MAX as usize + 1, EncodeError::TooManyEdges(1)),
            Err(EncodeError::TooManyEdges(1))
        );
    }

    #[test]
    fn delta_versions_peeks_without_applying() {
        let v = vec![partial_at(0, 2)];
        let d = encode_delta(41, &v, 42, &v).unwrap();
        assert_eq!(delta_versions(&d).unwrap(), (41, 42));
        assert!(delta_versions(&d[..10]).is_err());
        assert!(delta_versions(b"OPMRxxxxxxxxxxxxxxxxxxxxxx").is_err());
    }
}
