//! Per-tenant quotas on the serve plane.
//!
//! Each client partition is a *tenant* (it announces its partition name in
//! a `Hello` on connect; an empty name is the anonymous tenant). A serving
//! rank tracks, per tenant: active subscriptions against a cap, a query
//! token bucket, and a delta-byte token bucket. Rejections are typed
//! ([`crate::proto::QuotaKind`] on the wire) and counted, never silent —
//! the dashboard-streaming pattern of admission control at the serving
//! edge: a greedy tenant is told *why* it was clipped, and compliant
//! tenants on the same rank keep their full rate.
//!
//! The token buckets are integer-only: an allowance in nanoseconds capped
//! at one second of burst, where sending `n` units costs `n / rate`
//! seconds. Enforcement is per serving rank — with tree fan-out a tenant's
//! clients map to one frontier rank each, so the per-rank view is the
//! whole-tenant view unless a tenant spans frontier ranks, in which case
//! each rank grants it a full quota (documented, not hidden).

use crate::proto::QuotaKind;
use std::collections::HashMap;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Per-tenant limits. A zero field means unlimited — the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantQuota {
    /// Concurrent subscriptions per tenant (0 = unlimited).
    pub max_subscriptions: u32,
    /// Point queries (including version-info requests) per second
    /// (0 = unlimited), with a one-second burst.
    pub max_queries_per_sec: u32,
    /// Subscription payload bytes per second (0 = unlimited), with a
    /// one-second burst. Exceeding it throttles delivery (the update is
    /// delayed, counted), it does not reject the subscription.
    pub max_delta_bytes_per_sec: u64,
}

/// Integer token bucket: `allowance_ns` of credit, refilled by elapsed
/// wall time, capped at one second; taking `n` units costs
/// `n * 1s / rate`.
#[derive(Debug)]
struct RateLimiter {
    rate_per_sec: u64,
    allowance_ns: u64,
    last_ns: u64,
}

impl RateLimiter {
    fn new(rate_per_sec: u64) -> RateLimiter {
        RateLimiter {
            rate_per_sec,
            allowance_ns: NANOS_PER_SEC,
            last_ns: 0,
        }
    }

    fn try_take(&mut self, n: u64, now_ns: u64) -> bool {
        if self.rate_per_sec == 0 {
            return true;
        }
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        self.allowance_ns = self.allowance_ns.saturating_add(elapsed).min(NANOS_PER_SEC);
        let cost = ((n as u128 * NANOS_PER_SEC as u128) / self.rate_per_sec as u128)
            .min(u64::MAX as u128) as u64;
        if self.allowance_ns >= cost {
            self.allowance_ns -= cost;
            true
        } else {
            false
        }
    }
}

/// One tenant's admission state on one serving rank.
#[derive(Debug)]
pub struct TenantState {
    quota: TenantQuota,
    subs_active: u32,
    queries: RateLimiter,
    delta_bytes: RateLimiter,
}

impl TenantState {
    fn new(quota: TenantQuota) -> TenantState {
        TenantState {
            quota,
            subs_active: 0,
            queries: RateLimiter::new(quota.max_queries_per_sec as u64),
            delta_bytes: RateLimiter::new(quota.max_delta_bytes_per_sec),
        }
    }

    /// Admits (and registers) a subscription, or names the quota that
    /// refused it.
    pub fn try_subscribe(&mut self) -> Result<(), QuotaKind> {
        if self.quota.max_subscriptions != 0 && self.subs_active >= self.quota.max_subscriptions {
            return Err(QuotaKind::Subscriptions);
        }
        self.subs_active += 1;
        Ok(())
    }

    /// Releases a subscription slot when its client finishes.
    pub fn release_subscription(&mut self) {
        self.subs_active = self.subs_active.saturating_sub(1);
    }

    /// Admits one point query at `now_ns`, or names the quota.
    pub fn try_query(&mut self, now_ns: u64) -> Result<(), QuotaKind> {
        if self.queries.try_take(1, now_ns) {
            Ok(())
        } else {
            Err(QuotaKind::QueryRate)
        }
    }

    /// Admits `bytes` of subscription payload at `now_ns`, or names the
    /// quota (the caller throttles rather than rejects).
    pub fn try_delta_bytes(&mut self, bytes: u64, now_ns: u64) -> Result<(), QuotaKind> {
        if self.delta_bytes.try_take(bytes, now_ns) {
            Ok(())
        } else {
            Err(QuotaKind::DeltaRate)
        }
    }

    /// Active subscriptions (test/diagnostic visibility).
    pub fn subscriptions(&self) -> u32 {
        self.subs_active
    }
}

/// The per-rank tenant table: default quota plus per-tenant overrides,
/// lazily instantiating a [`TenantState`] per tenant name.
#[derive(Debug, Default)]
pub struct TenantBook {
    default_quota: TenantQuota,
    overrides: Vec<(String, TenantQuota)>,
    states: HashMap<String, TenantState>,
}

impl TenantBook {
    /// A book granting `default_quota` to every tenant except those named
    /// in `overrides`.
    pub fn new(default_quota: TenantQuota, overrides: Vec<(String, TenantQuota)>) -> TenantBook {
        TenantBook {
            default_quota,
            overrides,
            states: HashMap::new(),
        }
    }

    /// The (lazily created) admission state of `tenant`.
    pub fn state(&mut self, tenant: &str) -> &mut TenantState {
        let quota = self
            .overrides
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota);
        self.states
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::new(quota))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = NANOS_PER_SEC;

    #[test]
    fn zero_quota_means_unlimited() {
        let mut t = TenantState::new(TenantQuota::default());
        for i in 0..10_000u64 {
            assert!(t.try_query(i).is_ok());
            assert!(t.try_delta_bytes(1 << 30, i).is_ok());
            assert!(t.try_subscribe().is_ok());
        }
    }

    #[test]
    fn subscription_cap_rejects_then_releases() {
        let mut t = TenantState::new(TenantQuota {
            max_subscriptions: 2,
            ..TenantQuota::default()
        });
        assert!(t.try_subscribe().is_ok());
        assert!(t.try_subscribe().is_ok());
        assert_eq!(t.try_subscribe(), Err(QuotaKind::Subscriptions));
        t.release_subscription();
        assert!(t.try_subscribe().is_ok());
        assert_eq!(t.subscriptions(), 2);
    }

    #[test]
    fn query_bucket_refills_with_time() {
        let mut t = TenantState::new(TenantQuota {
            max_queries_per_sec: 4,
            ..TenantQuota::default()
        });
        // The initial burst is one second's worth.
        for _ in 0..4 {
            assert!(t.try_query(SEC).is_ok());
        }
        assert_eq!(t.try_query(SEC), Err(QuotaKind::QueryRate));
        // A quarter second buys one more token at 4/s.
        assert!(t.try_query(SEC + SEC / 4).is_ok());
        assert_eq!(t.try_query(SEC + SEC / 4), Err(QuotaKind::QueryRate));
    }

    #[test]
    fn delta_bucket_throttles_by_bytes_not_calls() {
        let mut t = TenantState::new(TenantQuota {
            max_delta_bytes_per_sec: 1000,
            ..TenantQuota::default()
        });
        assert!(t.try_delta_bytes(600, SEC).is_ok());
        assert!(t.try_delta_bytes(400, SEC).is_ok());
        assert_eq!(t.try_delta_bytes(1, SEC), Err(QuotaKind::DeltaRate));
        assert!(t.try_delta_bytes(400, 2 * SEC).is_ok());
    }

    #[test]
    fn book_applies_overrides_per_tenant_name() {
        let tight = TenantQuota {
            max_subscriptions: 1,
            ..TenantQuota::default()
        };
        let mut book = TenantBook::new(TenantQuota::default(), vec![("greedy".into(), tight)]);
        assert!(book.state("polite").try_subscribe().is_ok());
        assert!(book.state("polite").try_subscribe().is_ok());
        assert!(book.state("greedy").try_subscribe().is_ok());
        assert_eq!(
            book.state("greedy").try_subscribe(),
            Err(QuotaKind::Subscriptions)
        );
        // States are per tenant, not shared.
        assert_eq!(book.state("polite").subscriptions(), 2);
    }
}
