//! The client-partition side of the serve plane.
//!
//! A [`ServeClient`] holds one duplex VMPI stream to the analyzer rank it
//! was mapped onto, issues framed point queries and — once subscribed —
//! folds the snapshot-then-deltas stream into a locally held
//! [`ClientReport`]. Because deltas carry replacement values and the wire
//! codecs encode deterministically, re-encoding the folded report yields
//! bytes identical to the server's stored snapshot at every version; the
//! acceptance tests assert exactly that.

use crate::delta::{apply_delta, delta_versions};
use crate::proto::{NotFoundReason, QueryKind, Request, Response, VersionInfo, SERVE_STREAM_ID};
use crate::{mono_ns, ServeConfig, ServeError};
use bytes::{Buf, Bytes};
use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::{
    decode_partials, decode_profile, decode_topology, decode_waitstats, encode_partials,
    AppPartial, WireError,
};
use opmr_events::frame::{try_frame, FrameBuf};
use opmr_vmpi::{DuplexStream, ReadMode, Vmpi, VmpiError};
use std::collections::VecDeque;

/// Empty `EAGAIN` polls between client keepalives (see
/// [`ServeClient::fill`]).
const KEEPALIVE_SPINS: u32 = 8192;

/// The report a subscribed client currently holds.
pub struct ClientReport {
    /// Server version this report corresponds to.
    pub version: u64,
    /// Decoded per-application reports.
    pub parts: Vec<AppPartial>,
    /// `encode_partials` bytes of the held report — byte-identical to the
    /// server's stored snapshot of the same version.
    pub encoded: Bytes,
}

/// One consumed subscription update.
#[derive(Debug, Clone, Copy)]
pub struct Update {
    /// Version the client now holds.
    pub version: u64,
    /// Server publication timestamp ([`crate::mono_ns`] clock).
    pub publish_ns: u64,
    /// Publication-to-consumption lag on the shared in-process clock.
    pub lag_ns: u64,
    /// This update was a full-snapshot resync after falling off the
    /// server's delta ring (the typed slow-consumer signal).
    pub resync: bool,
    /// This update arrived as an incremental delta.
    pub delta: bool,
    /// This is the final version of the run.
    pub finished: bool,
}

/// A connected serve-plane client.
pub struct ServeClient {
    stream: DuplexStream,
    fb: FrameBuf,
    next_req_id: u32,
    /// Subscription updates that arrived interleaved with query answers.
    pending: VecDeque<Response>,
    report: Option<ClientReport>,
    eof: bool,
}

impl ServeClient {
    /// Connects to the serving analyzer at world rank `server` (obtained
    /// from the Map pivot: `map.peers()[0]` on the client side).
    pub fn connect(v: &Vmpi, server: usize, cfg: &ServeConfig) -> crate::Result<ServeClient> {
        Ok(ServeClient {
            stream: DuplexStream::open(v, vec![server], cfg.stream, SERVE_STREAM_ID)?,
            fb: FrameBuf::new(),
            next_req_id: 1,
            pending: VecDeque::new(),
            report: None,
            eof: false,
        })
    }

    fn send(&mut self, req: &Request) -> crate::Result<()> {
        self.stream.write(&try_frame(&req.encode())?)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one block into the frame buffer, spinning past `EAGAIN`.
    /// Returns false at end of stream. Every `KEEPALIVE_SPINS` empty polls
    /// a [`Request::Ping`] goes out: the protocol is ping-pong, so while
    /// we wait the server has no reason to send on either edge, and a
    /// transport-fault reorder hold (flushed only by the *next* message
    /// on its edge) would otherwise wedge the session. The ping is small
    /// enough to pass the fault layer unfaulted and flushes both
    /// directions — ours directly, the server's via its answer path.
    fn fill(&mut self) -> crate::Result<bool> {
        let mut spins: u32 = 0;
        loop {
            match self.stream.read(ReadMode::NonBlocking) {
                Ok(Some(block)) => {
                    self.fb.push(&block.data);
                    return Ok(true);
                }
                Ok(None) => {
                    self.eof = true;
                    return Ok(false);
                }
                Err(VmpiError::Again) => {
                    spins += 1;
                    if spins.is_multiple_of(KEEPALIVE_SPINS) {
                        self.stream.write(&try_frame(&Request::Ping.encode())?)?;
                        self.stream.flush()?;
                    }
                    std::thread::yield_now();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn next_response(&mut self) -> crate::Result<Option<Response>> {
        loop {
            if let Some(payload) = self.fb.next_frame()? {
                return Ok(Some(Response::decode(&payload)?));
            }
            if self.eof || !self.fill()? {
                return Ok(None);
            }
        }
    }

    /// Waits for the answer to `req_id`, queueing any subscription updates
    /// that arrive in between.
    fn recv_matching(&mut self, req_id: u32) -> crate::Result<Response> {
        loop {
            let Some(rsp) = self.next_response()? else {
                return Err(ServeError::ProtocolViolation {
                    expected: "an answer to the pending request",
                    got: "stream closed".into(),
                });
            };
            match rsp {
                Response::Snapshot { .. } | Response::Delta { .. } => self.pending.push_back(rsp),
                Response::Ping => {}
                Response::QueryResult { req_id: id, .. }
                | Response::NotFound { req_id: id, .. }
                | Response::VersionInfo { req_id: id, .. } => {
                    if id == req_id {
                        return Ok(rsp);
                    }
                }
            }
        }
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1).max(1);
        id
    }

    /// What versions does the server currently hold?
    pub fn version_info(&mut self) -> crate::Result<VersionInfo> {
        let req_id = self.fresh_id();
        self.send(&Request::VersionInfo { req_id })?;
        match self.recv_matching(req_id)? {
            Response::VersionInfo {
                current,
                oldest,
                apps,
                finished,
                ..
            } => Ok(VersionInfo {
                current,
                oldest,
                apps,
                finished,
            }),
            Response::NotFound { reason, .. } => Err(ServeError::NotFound(reason)),
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a version info answer",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// Polls [`ServeClient::version_info`] until the server published at
    /// least `min` versions (or finished).
    pub fn wait_version(&mut self, min: u64) -> crate::Result<VersionInfo> {
        loop {
            let info = self.version_info()?;
            if info.current >= min || info.finished {
                return Ok(info);
            }
            std::thread::yield_now();
        }
    }

    fn query_raw(
        &mut self,
        kind: QueryKind,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Bytes)> {
        let req_id = self.fresh_id();
        self.send(&Request::Query {
            req_id,
            kind,
            app_id,
            version,
            rank_lo,
            rank_hi,
        })?;
        match self.recv_matching(req_id)? {
            Response::QueryResult {
                version, payload, ..
            } => Ok((version, payload)),
            Response::NotFound { reason, .. } => Err(ServeError::NotFound(reason)),
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a query result",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// The rank-filtered MPI profile of `app_id` at `version` (0 =
    /// current). Returns the answering version alongside.
    pub fn query_profile(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, MpiProfile)> {
        let (v, payload) = self.query_raw(QueryKind::Profile, app_id, version, rank_lo, rank_hi)?;
        Ok((v, decode_profile(&mut &payload[..])?))
    }

    /// The source-rank-filtered communication topology.
    pub fn query_topology(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Topology)> {
        let (v, payload) =
            self.query_raw(QueryKind::Topology, app_id, version, rank_lo, rank_hi)?;
        Ok((v, decode_topology(&mut &payload[..])?))
    }

    /// The rank-filtered wait-state report, when the analyzer ran the
    /// wait-state KS.
    pub fn query_waitstate(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Option<WaitStats>)> {
        let (v, payload) =
            self.query_raw(QueryKind::Waitstate, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 1 {
            return Err(WireError::Truncated.into());
        }
        match view.get_u8() {
            0 => Ok((v, None)),
            _ => Ok((v, Some(decode_waitstats(&mut view)?))),
        }
    }

    /// The rank-filtered time-resolved metrics series, when the analyzer
    /// ran the metrics KS.
    pub fn query_metrics(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Option<opmr_metrics::MetricsSeries>)> {
        let (v, payload) = self.query_raw(QueryKind::Metrics, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 1 {
            return Err(WireError::Truncated.into());
        }
        match view.get_u8() {
            0 => Ok((v, None)),
            _ => Ok((
                v,
                Some(opmr_metrics::MetricsSeries::decode(&mut view).map_err(WireError::from)?),
            )),
        }
    }

    /// Per-rank event counts over the rank range: `(version, first rank,
    /// counts)`.
    pub fn query_density(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, u32, Vec<u64>)> {
        let (v, payload) = self.query_raw(QueryKind::Density, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 8 {
            return Err(WireError::Truncated.into());
        }
        let lo = view.get_u32_le();
        let n = view.get_u32_le() as usize;
        if view.remaining() < n * 8 {
            return Err(WireError::Truncated.into());
        }
        Ok((v, lo, (0..n).map(|_| view.get_u64_le()).collect()))
    }

    /// Starts the snapshot-then-deltas subscription; consume it with
    /// [`ServeClient::next_update`].
    pub fn subscribe(&mut self) -> crate::Result<()> {
        self.send(&Request::Subscribe)
    }

    /// Blocks until the next subscription update, folds it into the held
    /// report and acknowledges it (returning a flow-control credit).
    /// `None` once the server closed the stream.
    pub fn next_update(&mut self) -> crate::Result<Option<Update>> {
        let rsp = match self.pending.pop_front() {
            Some(r) => r,
            None => loop {
                match self.next_response()? {
                    None => return Ok(None),
                    Some(r @ (Response::Snapshot { .. } | Response::Delta { .. })) => break r,
                    Some(_) => {} // stale answer to an abandoned query
                }
            },
        };
        let update = self.fold(rsp)?;
        self.send(&Request::Ack {
            version: update.version,
        })?;
        Ok(Some(update))
    }

    fn fold(&mut self, rsp: Response) -> crate::Result<Update> {
        match rsp {
            Response::Snapshot {
                version,
                publish_ns,
                resync,
                finished,
                payload,
            } => {
                let parts = decode_partials(&payload)?;
                self.report = Some(ClientReport {
                    version,
                    parts,
                    encoded: payload,
                });
                Ok(Update {
                    version,
                    publish_ns,
                    lag_ns: mono_ns().saturating_sub(publish_ns),
                    resync,
                    delta: false,
                    finished,
                })
            }
            Response::Delta {
                version,
                publish_ns,
                finished,
                payload,
            } => {
                let report = self
                    .report
                    .as_mut()
                    .ok_or_else(|| ServeError::ProtocolViolation {
                        expected: "a snapshot before the first delta",
                        got: "delta with no held report".into(),
                    })?;
                let (from, to) = delta_versions(&payload)?;
                if from != report.version || to != version {
                    return Err(ServeError::ProtocolViolation {
                        expected: "a delta extending the held version",
                        got: format!("delta {from}->{to} against held version {}", report.version),
                    });
                }
                apply_delta(&mut report.parts, &payload)?;
                report.version = version;
                report.encoded = encode_partials(&report.parts);
                Ok(Update {
                    version,
                    publish_ns,
                    lag_ns: mono_ns().saturating_sub(publish_ns),
                    resync: false,
                    delta: true,
                    finished,
                })
            }
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a subscription update",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// The report the subscription currently holds.
    pub fn report(&self) -> Option<&ClientReport> {
        self.report.as_ref()
    }

    /// Orderly goodbye: tells the server, then closes our direction and
    /// drains the server's.
    pub fn close(mut self) -> crate::Result<()> {
        if !self.eof {
            // A lost server is an acceptable way to end a session; the
            // goodbye is best-effort.
            let _ = self.send(&Request::Bye);
        }
        self.stream.close()?;
        Ok(())
    }
}

/// Convenience for tests and examples: queries keep working after the run
/// finished, so "not found" answers stay typed rather than fatal.
pub fn is_not_found(e: &ServeError, reason: NotFoundReason) -> bool {
    matches!(e, ServeError::NotFound(r) if *r == reason)
}
