//! The client-partition side of the serve plane.
//!
//! A [`ServeClient`] holds one duplex VMPI stream to the serving rank it
//! was mapped onto (a fan-out frontier rank under tree delivery), issues
//! framed point queries and — once subscribed — folds the
//! snapshot-then-deltas stream into locally held per-shard
//! [`ClientReport`]s. Because deltas carry replacement values and the wire
//! codecs encode deterministically, re-encoding a folded shard report
//! yields bytes identical to the server's stored shard snapshot at every
//! version; the acceptance tests assert exactly that.
//!
//! Each update names its store shard; the `finished` flag on the wire is
//! *per shard*, and the client aggregates the per-shard finals (using the
//! `shards` count every update carries) into whole-subscription
//! completion ([`Update::finished`]). A tenant announces itself with
//! [`ServeClient::connect_as`]; quota refusals surface as
//! [`ServeError::QuotaExceeded`].

use crate::delta::{apply_delta, delta_versions};
use crate::proto::{NotFoundReason, QueryKind, Request, Response, VersionInfo, SERVE_STREAM_ID};
use crate::{mono_ns, ServeConfig, ServeError};
use bytes::{Buf, Bytes};
use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::{
    decode_partials, decode_profile, decode_topology, decode_waitstats, encode_partials,
    AppPartial, WireError,
};
use opmr_events::frame::{try_frame, FrameBuf};
use opmr_vmpi::{DuplexStream, ReadMode, Vmpi, VmpiError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Empty `EAGAIN` polls between client keepalives (see
/// [`ServeClient::fill`]).
const KEEPALIVE_SPINS: u32 = 8192;

/// The report a subscribed client currently holds for one store shard.
pub struct ClientReport {
    /// Shard version this report corresponds to.
    pub version: u64,
    /// Decoded per-application reports.
    pub parts: Vec<AppPartial>,
    /// `encode_partials` bytes of the held report — byte-identical to the
    /// server's stored shard snapshot of the same version.
    pub encoded: Bytes,
}

/// One consumed subscription update.
#[derive(Debug, Clone, Copy)]
pub struct Update {
    /// Store shard this update advanced.
    pub shard: u16,
    /// Version the client now holds for that shard.
    pub version: u64,
    /// Server publication timestamp ([`crate::mono_ns`] clock).
    pub publish_ns: u64,
    /// Publication-to-consumption lag on the shared in-process clock.
    pub lag_ns: u64,
    /// This update was a full-snapshot resync after falling off the
    /// server's delta ring (the typed slow-consumer signal).
    pub resync: bool,
    /// This update arrived as an incremental delta.
    pub delta: bool,
    /// This update carried its shard's final version.
    pub shard_final: bool,
    /// Every shard has delivered its final version: the subscription is
    /// complete (aggregated client-side from the per-shard finals).
    pub finished: bool,
}

/// A connected serve-plane client.
pub struct ServeClient {
    stream: DuplexStream,
    fb: FrameBuf,
    next_req_id: u32,
    /// Subscription updates that arrived interleaved with query answers.
    pending: VecDeque<Response>,
    /// Held report per shard (shard 0 only before the first sharded run).
    reports: BTreeMap<u16, ClientReport>,
    /// Shard count announced by the first update; None until then.
    shards_total: Option<u16>,
    /// Shards whose final version has been folded.
    final_shards: BTreeSet<u16>,
    eof: bool,
}

impl ServeClient {
    /// Connects to the serving analyzer at world rank `server` (obtained
    /// from the Map pivot: `map.peers()[0]` on the client side) as the
    /// anonymous tenant.
    pub fn connect(v: &Vmpi, server: usize, cfg: &ServeConfig) -> crate::Result<ServeClient> {
        Self::connect_as(v, server, "", cfg)
    }

    /// Connects and announces a tenant name (normally the client
    /// partition's name); the server applies that tenant's quota to every
    /// later request on this connection.
    pub fn connect_as(
        v: &Vmpi,
        server: usize,
        tenant: &str,
        cfg: &ServeConfig,
    ) -> crate::Result<ServeClient> {
        let mut client = ServeClient {
            stream: DuplexStream::open(v, vec![server], cfg.stream, SERVE_STREAM_ID)?,
            fb: FrameBuf::new(),
            next_req_id: 1,
            pending: VecDeque::new(),
            reports: BTreeMap::new(),
            shards_total: None,
            final_shards: BTreeSet::new(),
            eof: false,
        };
        if !tenant.is_empty() {
            client.send(&Request::Hello {
                tenant: tenant.to_string(),
            })?;
        }
        Ok(client)
    }

    fn send(&mut self, req: &Request) -> crate::Result<()> {
        self.stream.write(&try_frame(&req.encode())?)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one block into the frame buffer, spinning past `EAGAIN`.
    /// Returns false at end of stream. Every `KEEPALIVE_SPINS` empty polls
    /// a [`Request::Ping`] goes out: the protocol is ping-pong, so while
    /// we wait the server has no reason to send on either edge, and a
    /// transport-fault reorder hold (flushed only by the *next* message
    /// on its edge) would otherwise wedge the session. The ping is small
    /// enough to pass the fault layer unfaulted and flushes both
    /// directions — ours directly, the server's via its answer path.
    fn fill(&mut self) -> crate::Result<bool> {
        let mut spins: u32 = 0;
        loop {
            match self.stream.read(ReadMode::NonBlocking) {
                Ok(Some(block)) => {
                    self.fb.push(&block.data);
                    return Ok(true);
                }
                Ok(None) => {
                    self.eof = true;
                    return Ok(false);
                }
                Err(VmpiError::Again) => {
                    spins += 1;
                    if spins.is_multiple_of(KEEPALIVE_SPINS) {
                        self.stream.write(&try_frame(&Request::Ping.encode())?)?;
                        self.stream.flush()?;
                    }
                    std::thread::yield_now();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn next_response(&mut self) -> crate::Result<Option<Response>> {
        loop {
            if let Some(payload) = self.fb.next_frame()? {
                return Ok(Some(Response::decode(&payload)?));
            }
            if self.eof || !self.fill()? {
                return Ok(None);
            }
        }
    }

    /// Waits for the answer to `req_id`, queueing any subscription updates
    /// that arrive in between. A quota refusal of *this* request returns
    /// the typed error; a subscription rejection (req id 0) is queued for
    /// [`ServeClient::next_update`] to surface.
    fn recv_matching(&mut self, req_id: u32) -> crate::Result<Response> {
        loop {
            let Some(rsp) = self.next_response()? else {
                return Err(ServeError::ProtocolViolation {
                    expected: "an answer to the pending request",
                    got: "stream closed".into(),
                });
            };
            match rsp {
                Response::Snapshot { .. } | Response::Delta { .. } => self.pending.push_back(rsp),
                Response::Ping => {}
                Response::QuotaExceeded { req_id: id, kind } => {
                    if id == req_id {
                        return Err(ServeError::QuotaExceeded(kind));
                    }
                    if id == 0 {
                        self.pending
                            .push_back(Response::QuotaExceeded { req_id: 0, kind });
                    }
                }
                Response::QueryResult { req_id: id, .. }
                | Response::NotFound { req_id: id, .. }
                | Response::VersionInfo { req_id: id, .. } => {
                    if id == req_id {
                        return Ok(rsp);
                    }
                }
            }
        }
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1).max(1);
        id
    }

    /// What versions does the server currently hold? With a sharded store
    /// the answer aggregates: max current, min non-empty oldest, total
    /// apps, all-shards finished.
    pub fn version_info(&mut self) -> crate::Result<VersionInfo> {
        let req_id = self.fresh_id();
        self.send(&Request::VersionInfo { req_id })?;
        match self.recv_matching(req_id)? {
            Response::VersionInfo {
                current,
                oldest,
                apps,
                finished,
                ..
            } => Ok(VersionInfo {
                current,
                oldest,
                apps,
                finished,
            }),
            Response::NotFound { reason, .. } => Err(ServeError::NotFound(reason)),
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a version info answer",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// Polls [`ServeClient::version_info`] until the server published at
    /// least `min` versions (or finished).
    pub fn wait_version(&mut self, min: u64) -> crate::Result<VersionInfo> {
        loop {
            let info = self.version_info()?;
            if info.current >= min || info.finished {
                return Ok(info);
            }
            std::thread::yield_now();
        }
    }

    fn query_raw(
        &mut self,
        kind: QueryKind,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Bytes)> {
        let req_id = self.fresh_id();
        self.send(&Request::Query {
            req_id,
            kind,
            app_id,
            version,
            rank_lo,
            rank_hi,
        })?;
        match self.recv_matching(req_id)? {
            Response::QueryResult {
                version, payload, ..
            } => Ok((version, payload)),
            Response::NotFound { reason, .. } => Err(ServeError::NotFound(reason)),
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a query result",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// The rank-filtered MPI profile of `app_id` at `version` (0 =
    /// current). Returns the answering version alongside.
    pub fn query_profile(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, MpiProfile)> {
        let (v, payload) = self.query_raw(QueryKind::Profile, app_id, version, rank_lo, rank_hi)?;
        Ok((v, decode_profile(&mut &payload[..])?))
    }

    /// The source-rank-filtered communication topology.
    pub fn query_topology(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Topology)> {
        let (v, payload) =
            self.query_raw(QueryKind::Topology, app_id, version, rank_lo, rank_hi)?;
        Ok((v, decode_topology(&mut &payload[..])?))
    }

    /// The rank-filtered wait-state report, when the analyzer ran the
    /// wait-state KS.
    pub fn query_waitstate(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Option<WaitStats>)> {
        let (v, payload) =
            self.query_raw(QueryKind::Waitstate, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 1 {
            return Err(WireError::Truncated.into());
        }
        match view.get_u8() {
            0 => Ok((v, None)),
            _ => Ok((v, Some(decode_waitstats(&mut view)?))),
        }
    }

    /// The rank-filtered time-resolved metrics series, when the analyzer
    /// ran the metrics KS.
    pub fn query_metrics(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, Option<opmr_metrics::MetricsSeries>)> {
        let (v, payload) = self.query_raw(QueryKind::Metrics, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 1 {
            return Err(WireError::Truncated.into());
        }
        match view.get_u8() {
            0 => Ok((v, None)),
            _ => Ok((
                v,
                Some(opmr_metrics::MetricsSeries::decode(&mut view).map_err(WireError::from)?),
            )),
        }
    }

    /// Per-rank event counts over the rank range: `(version, first rank,
    /// counts)`.
    pub fn query_density(
        &mut self,
        app_id: u16,
        version: u64,
        rank_lo: u32,
        rank_hi: u32,
    ) -> crate::Result<(u64, u32, Vec<u64>)> {
        let (v, payload) = self.query_raw(QueryKind::Density, app_id, version, rank_lo, rank_hi)?;
        let mut view: &[u8] = &payload;
        if view.remaining() < 8 {
            return Err(WireError::Truncated.into());
        }
        let lo = view.get_u32_le();
        let n = view.get_u32_le() as usize;
        if view.remaining() < n * 8 {
            return Err(WireError::Truncated.into());
        }
        Ok((v, lo, (0..n).map(|_| view.get_u64_le()).collect()))
    }

    /// Starts the snapshot-then-deltas subscription (one chain per
    /// shard); consume it with [`ServeClient::next_update`].
    pub fn subscribe(&mut self) -> crate::Result<()> {
        self.send(&Request::Subscribe)
    }

    /// Blocks until the next subscription update, folds it into the held
    /// per-shard report and acknowledges it (returning a flow-control
    /// credit). `None` once the server closed the stream; a typed
    /// [`ServeError::QuotaExceeded`] if the subscription was refused.
    pub fn next_update(&mut self) -> crate::Result<Option<Update>> {
        let rsp = match self.pending.pop_front() {
            Some(r) => r,
            None => loop {
                match self.next_response()? {
                    None => return Ok(None),
                    Some(r @ (Response::Snapshot { .. } | Response::Delta { .. })) => break r,
                    Some(Response::QuotaExceeded { req_id: 0, kind }) => {
                        return Err(ServeError::QuotaExceeded(kind));
                    }
                    Some(_) => {} // stale answer to an abandoned query
                }
            },
        };
        let update = self.fold(rsp)?;
        self.send(&Request::Ack {
            shard: update.shard,
            version: update.version,
        })?;
        Ok(Some(update))
    }

    /// True once every announced shard folded its final version.
    fn all_final(&self) -> bool {
        self.shards_total
            .is_some_and(|n| self.final_shards.len() >= n as usize)
    }

    fn fold(&mut self, rsp: Response) -> crate::Result<Update> {
        match rsp {
            Response::Snapshot {
                shard,
                shards,
                version,
                publish_ns,
                resync,
                finished,
                payload,
            } => {
                let parts = decode_partials(&payload)?;
                self.shards_total.get_or_insert(shards.max(1));
                self.reports.insert(
                    shard,
                    ClientReport {
                        version,
                        parts,
                        encoded: payload,
                    },
                );
                if finished {
                    self.final_shards.insert(shard);
                }
                Ok(Update {
                    shard,
                    version,
                    publish_ns,
                    lag_ns: mono_ns().saturating_sub(publish_ns),
                    resync,
                    delta: false,
                    shard_final: finished,
                    finished: self.all_final(),
                })
            }
            Response::Delta {
                shard,
                shards,
                version,
                publish_ns,
                finished,
                payload,
            } => {
                self.shards_total.get_or_insert(shards.max(1));
                let report =
                    self.reports
                        .get_mut(&shard)
                        .ok_or_else(|| ServeError::ProtocolViolation {
                            expected: "a shard snapshot before its first delta",
                            got: format!("delta for shard {shard} with no held report"),
                        })?;
                let (from, to) = delta_versions(&payload)?;
                if from != report.version || to != version {
                    return Err(ServeError::ProtocolViolation {
                        expected: "a delta extending the held shard version",
                        got: format!(
                            "shard {shard} delta {from}->{to} against held version {}",
                            report.version
                        ),
                    });
                }
                apply_delta(&mut report.parts, &payload)?;
                report.version = version;
                report.encoded = encode_partials(&report.parts);
                if finished {
                    self.final_shards.insert(shard);
                }
                Ok(Update {
                    shard,
                    version,
                    publish_ns,
                    lag_ns: mono_ns().saturating_sub(publish_ns),
                    resync: false,
                    delta: true,
                    shard_final: finished,
                    finished: self.all_final(),
                })
            }
            Response::QuotaExceeded { kind, .. } => Err(ServeError::QuotaExceeded(kind)),
            rsp => Err(ServeError::ProtocolViolation {
                expected: "a subscription update",
                got: rsp.kind_name().into(),
            }),
        }
    }

    /// Shard 0's held report — the whole report under a single-shard
    /// store (the pre-sharding callers' view).
    pub fn report(&self) -> Option<&ClientReport> {
        self.reports.get(&0)
    }

    /// The held report of one shard.
    pub fn shard_report(&self, shard: u16) -> Option<&ClientReport> {
        self.reports.get(&shard)
    }

    /// All held per-shard reports, in shard order.
    pub fn reports(&self) -> impl Iterator<Item = (u16, &ClientReport)> {
        self.reports.iter().map(|(&s, r)| (s, r))
    }

    /// Orderly goodbye: tells the server, then closes our direction and
    /// drains the server's.
    pub fn close(mut self) -> crate::Result<()> {
        if !self.eof {
            // A lost server is an acceptable way to end a session; the
            // goodbye is best-effort.
            let _ = self.send(&Request::Bye);
        }
        self.stream.close()?;
        Ok(())
    }
}

/// Convenience for tests and examples: queries keep working after the run
/// finished, so "not found" answers stay typed rather than fatal.
pub fn is_not_found(e: &ServeError, reason: NotFoundReason) -> bool {
    matches!(e, ServeError::NotFound(r) if *r == reason)
}
