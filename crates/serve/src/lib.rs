//! # opmr-serve — live report serving over VMPI streams
//!
//! The paper's whole premise is that analysis results exist *while the
//! application runs* (online coupling, Sections II-A/III-B); this crate
//! makes them observable mid-run. The analyzer becomes a queryable
//! service:
//!
//! * [`store::SnapshotStore`] / [`store::ShardedStore`] — the engine
//!   publishes **versioned report snapshots** at window boundaries (every
//!   N unpacked packs) into a lock-light store: a swap-on-publish current
//!   pointer plus a bounded ring of recent versions, sharded by
//!   `app_id % shards` so publishes and point queries scale across
//!   threads (per-shard version vectors, cross-shard snapshot assembled
//!   on read);
//! * [`delta`] — **delta encoding** between consecutive versions reusing
//!   the `analysis::wire` codecs: changed `(rank, kind)` profile cells,
//!   changed topology edges and changed wait-state blocks travel as full
//!   replacement values, so applying the delta chain to a base snapshot
//!   reconstructs every later snapshot *byte-identically*;
//! * [`proto`] — the length-prefixed request/response + subscription
//!   protocol (framing shared with the reduction overlay via
//!   `opmr_events::frame`): point queries for profile / topology /
//!   wait-state / density by rank range and version, and subscriptions
//!   that deliver one full snapshot followed by incremental deltas;
//! * [`server`] — the `EAGAIN`-aware serving loop run by analyzer ranks:
//!   drains instrumentation streams into the engine while answering
//!   client traffic. Slow consumers are handled with **credit-based flow
//!   control**: a subscriber with no credits left is simply tracked, not
//!   buffered for; when it acks again and has fallen off the delta ring
//!   it receives a typed snapshot **resync** (counted in
//!   [`server::ServeStats::resyncs`]) instead of an unbounded backlog;
//! * [`client`] — the client-partition side: maps onto the analyzer via
//!   the VMPI Map pivot protocol, opens a duplex stream and exposes
//!   queries plus a subscription iterator (folding one delta chain per
//!   shard);
//! * [`quota`] — **per-tenant admission control** on client partitions:
//!   subscription caps, query-rate and delta-byte token buckets with
//!   typed, counted rejections;
//! * with `ServeConfig::fan_out` set, subscription delivery reverses the
//!   TBON overlay: the root serving rank frames each published delta
//!   once and replicates it down a fanout tree, interior ranks re-forward
//!   blocks verbatim, and frontier ranks own per-subscriber
//!   credits/resyncs.
//!
//! `opmr-core` wires this into sessions as `Coupling::Serving` with
//! `SessionBuilder::client(...)` partitions; `serve_bench` measures query
//! throughput and subscription lag under concurrent clients.

pub mod client;
pub mod delta;
pub mod proto;
pub mod quota;
pub mod server;
pub mod store;

use opmr_vmpi::{StreamConfig, VmpiError};
use std::time::Instant;

pub use client::{ClientReport, ServeClient, Update};
pub use delta::{apply_delta, delta_versions, encode_delta, EncodeError};
pub use proto::{
    FanoutRecord, QueryKind, QuotaKind, Request, Response, VersionInfo, SERVE_FANOUT_STREAM_ID,
    SERVE_STREAM_ID,
};
pub use quota::{TenantBook, TenantQuota, TenantState};
pub use server::{run_server, ServeStats};
pub use store::{ShardedStore, SnapshotEntry, SnapshotStore, StoreStats};

/// Serve-plane failures.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure in the coupling layer.
    Vmpi(VmpiError),
    /// Malformed payload (shares the analysis wire error type).
    Wire(opmr_analysis::wire::WireError),
    /// Corrupt framing on the serve stream (checksum or length failure).
    Frame(opmr_events::frame::FrameError),
    /// Peer violated the serve protocol.
    ProtocolViolation { expected: &'static str, got: String },
    /// A query could not be answered; see [`proto::NotFoundReason`].
    NotFound(proto::NotFoundReason),
    /// A snapshot exceeded the wire format's entry-count caps.
    Encode(EncodeError),
    /// The server refused the request under a tenant quota.
    QuotaExceeded(QuotaKind),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Vmpi(e) => write!(f, "serve transport failed: {e}"),
            ServeError::Wire(e) => write!(f, "serve payload malformed: {e}"),
            ServeError::Frame(e) => write!(f, "serve framing corrupt: {e}"),
            ServeError::ProtocolViolation { expected, got } => {
                write!(
                    f,
                    "serve protocol violation: expected {expected}, got {got}"
                )
            }
            ServeError::NotFound(r) => write!(f, "query not answerable: {r:?}"),
            ServeError::Encode(e) => write!(f, "snapshot not encodable: {e}"),
            ServeError::QuotaExceeded(k) => write!(f, "tenant quota exceeded: {k:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EncodeError> for ServeError {
    fn from(e: EncodeError) -> Self {
        ServeError::Encode(e)
    }
}

impl From<VmpiError> for ServeError {
    fn from(e: VmpiError) -> Self {
        ServeError::Vmpi(e)
    }
}

impl From<opmr_analysis::wire::WireError> for ServeError {
    fn from(e: opmr_analysis::wire::WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<opmr_events::frame::FrameError> for ServeError {
    fn from(e: opmr_events::frame::FrameError) -> Self {
        ServeError::Frame(e)
    }
}

/// Result alias for the serve plane.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Serve-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Publish a snapshot version every N unpacked event packs (the
    /// serve-plane window boundary).
    pub publish_every_packs: u64,
    /// Recent versions (and their deltas) kept in each shard's snapshot
    /// ring; a subscriber lagging further than this is resynced with a
    /// full snapshot.
    pub ring: usize,
    /// Flow-control credits per subscriber: the server sends at most this
    /// many unacknowledged updates before going quiet on that client.
    pub subscriber_credits: u32,
    /// Snapshot store shards; apps are routed `app_id % shards`. 1 (the
    /// default) reproduces the single-store serve plane exactly.
    pub shards: usize,
    /// Tree fan-out for subscription delivery: `Some(f)` replicates each
    /// published delta down a fanout-`f` tree over the serving ranks and
    /// maps clients onto the tree's frontier; `None` (the default) keeps
    /// one unicast delta chain per subscriber.
    pub fan_out: Option<usize>,
    /// Default per-tenant quota (zero fields = unlimited).
    pub quota: TenantQuota,
    /// Per-tenant quota overrides by client partition name.
    pub tenant_quotas: Vec<(String, TenantQuota)>,
    /// Stream configuration of the serve plane (small blocks: the traffic
    /// is request/response, not bulk instrumentation).
    pub stream: StreamConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            publish_every_packs: 16,
            ring: 32,
            subscriber_credits: 2,
            shards: 1,
            fan_out: None,
            quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
            stream: StreamConfig::new(16 * 1024, 4, opmr_vmpi::Balance::None),
        }
    }
}

/// Nanoseconds since the process-wide serve epoch (first use). Publication
/// timestamps and subscription-lag measurements share this clock; it is
/// meaningful within one process (the in-process runtime's deployment
/// unit), not across machines.
pub fn mono_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}
