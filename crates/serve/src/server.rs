//! The serving loop run by each analyzer rank under `Coupling::Serving`.
//!
//! One loop multiplexes, with non-blocking (`EAGAIN`-aware) reads
//! throughout:
//!
//! * the instrumentation streams mapped onto this rank, drained into the
//!   shared blackboard engine exactly as under direct coupling;
//! * one duplex serve stream per mapped client, carrying framed
//!   [`Request`]s in and [`Response`]s out.
//!
//! Subscriptions use credit-based flow control: each subscriber starts
//! with `ServeConfig::subscriber_credits` credits, every update costs
//! one, every ack returns one. A stalled consumer therefore costs the
//! server *nothing* — no queue grows on its behalf; the store's ring
//! advances and when the consumer acks again it either continues down
//! the retained delta chain or, having fallen off the ring, receives a
//! typed snapshot resync (counted in [`ServeStats::resyncs`]).

use crate::proto::{NotFoundReason, QueryKind, Request, Response, SERVE_STREAM_ID};
use crate::store::SnapshotStore;
use crate::{ServeConfig, ServeError};
use bytes::{BufMut, BytesMut};
use opmr_analysis::profiler::MpiProfile;
use opmr_analysis::topology::Topology;
use opmr_analysis::waitstate::WaitStats;
use opmr_analysis::wire::{decode_partials, encode_profile, encode_topology, encode_waitstats};
use opmr_analysis::AnalysisEngine;
use opmr_events::frame::{try_frame, FrameBuf};
use opmr_vmpi::{DuplexStream, ReadMode, ReadStream, StreamConfig, Vmpi, VmpiError};

// Serving-loop metrics: per-subscriber credit level at each scheduling
// slice, publish-to-deliver lag of every update, and the counters mirrored
// from [`ServeStats`] that the self-monitor streams back into the engine.
mod obs {
    use opmr_obs::{registry, Counter, Histogram};
    use std::sync::{Arc, OnceLock};

    pub(super) struct ServeMetrics {
        pub queries: Arc<Counter>,
        pub deltas_sent: Arc<Counter>,
        pub snapshots_sent: Arc<Counter>,
        pub resyncs: Arc<Counter>,
        pub credits: Arc<Histogram>,
        pub deliver_lag: Arc<Histogram>,
    }

    pub(super) fn m() -> &'static ServeMetrics {
        static M: OnceLock<ServeMetrics> = OnceLock::new();
        M.get_or_init(|| {
            let r = registry();
            ServeMetrics {
                queries: r.counter("serve_queries_total"),
                deltas_sent: r.counter("serve_deltas_sent_total"),
                snapshots_sent: r.counter("serve_snapshots_sent_total"),
                resyncs: r.counter("serve_resyncs_total"),
                credits: r.histogram("serve_subscriber_credits"),
                deliver_lag: r.histogram("serve_publish_to_deliver_lag_ns"),
            }
        })
    }
}

/// Per-rank serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Clients mapped onto this rank.
    pub clients: u64,
    /// Point queries answered (including not-found answers).
    pub queries: u64,
    /// Subscriptions opened.
    pub subscribes: u64,
    /// Full snapshots sent (subscription openers and resyncs).
    pub snapshots_sent: u64,
    /// Incremental deltas sent.
    pub deltas_sent: u64,
    /// Slow-consumer degradations: a subscriber fell off the delta ring
    /// and was resynced with a full snapshot instead of a backlog.
    pub resyncs: u64,
    /// Flow-control acks received.
    pub acks: u64,
    /// Requests that failed to parse.
    pub bad_requests: u64,
    /// Clients whose stream died without a goodbye.
    pub clients_lost: u64,
}

struct Subscription {
    /// Last version this subscriber holds (0 = nothing sent yet).
    synced_to: u64,
    credits: u32,
}

struct ClientConn {
    stream: Option<DuplexStream>,
    fb: FrameBuf,
    sub: Option<Subscription>,
    /// Consecutive scheduling slices with no traffic either way; drives
    /// the server-side keepalive (see [`pump_client`]).
    idle: u32,
    done: bool,
}

impl ClientConn {
    /// Closes our direction and drains the client's (it closes right
    /// after its goodbye, so this does not block meaningfully).
    fn finish(&mut self, stats: &mut ServeStats, lost: bool) {
        if let Some(stream) = self.stream.take() {
            if stream.close().is_err() || lost {
                stats.clients_lost += 1;
            }
        }
        self.done = true;
    }
}

/// Bounds how many blocks each source is drained per loop iteration, so
/// one chatty stream cannot starve the others.
const DRAIN_BURST: usize = 64;

/// Consecutive idle scheduling slices before the server sends a
/// [`Response::Ping`] keepalive to a connected client. The serve protocol
/// is ping-pong under credit flow control, so when the one outstanding
/// message on an edge is held back by a transport-fault reorder (flushed
/// only by the *next* message on that edge), neither side would ever send
/// again; the keepalive is small enough to pass the fault layer unfaulted
/// and flushes the hold.
const KEEPALIVE_IDLE: u32 = 8192;

/// Runs one analyzer rank's serving loop until every instrumentation
/// stream closed, the final snapshot is published and every client said
/// goodbye.
pub fn run_server(
    v: &Vmpi,
    engine: &AnalysisEngine,
    store: &SnapshotStore,
    app_peers: &[usize],
    client_peers: &[usize],
    app_stream: StreamConfig,
    cfg: &ServeConfig,
) -> Result<ServeStats, ServeError> {
    let mut stats = ServeStats {
        clients: client_peers.len() as u64,
        ..ServeStats::default()
    };
    let mut app_rx = if app_peers.is_empty() {
        None
    } else {
        Some(ReadStream::open_from(v, app_peers.to_vec(), app_stream, 0)?)
    };
    let mut clients: Vec<ClientConn> = client_peers
        .iter()
        .map(|&world| {
            Ok(ClientConn {
                stream: Some(DuplexStream::open(
                    v,
                    vec![world],
                    cfg.stream,
                    SERVE_STREAM_ID,
                )?),
                fb: FrameBuf::new(),
                sub: None,
                idle: 0,
                done: false,
            })
        })
        .collect::<Result<_, VmpiError>>()?;

    let mut writer_done_reported = false;
    loop {
        let mut progressed = false;

        // 1. Instrumentation plane: drain into the engine.
        if let Some(rx) = app_rx.as_mut() {
            for _ in 0..DRAIN_BURST {
                match rx.read(ReadMode::NonBlocking) {
                    Ok(Some(block)) => {
                        engine.post_block(block.data);
                        progressed = true;
                    }
                    Ok(None) => {
                        app_rx = None;
                        progressed = true;
                        break;
                    }
                    Err(VmpiError::Again) => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if app_rx.is_none() && !writer_done_reported {
            writer_done_reported = true;
            if store.mark_writer_done() {
                // Last serving rank: all streams everywhere are closed, so
                // no more posts are coming — drain to quiescence and
                // publish the final version (always a fresh version, so
                // caught-up subscribers still learn the run is over).
                engine.blackboard().drain();
                store.publish_final(engine.snapshot_partials());
            }
            progressed = true;
        }

        // 2. Serve plane: requests in, responses + subscription pumps out.
        for client in clients.iter_mut().filter(|c| !c.done) {
            match pump_client(client, store, cfg, &mut stats) {
                Ok(p) => progressed |= p,
                Err(ServeError::Vmpi(VmpiError::PeerLost { .. })) => {
                    client.finish(&mut stats, true);
                    progressed = true;
                }
                Err(e) => return Err(e),
            }
        }

        if app_rx.is_none() && writer_done_reported && clients.iter().all(|c| c.done) {
            break;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    Ok(stats)
}

/// One scheduling slice for one client: read requests, answer them, pump
/// the subscription within its credit budget. Returns whether anything
/// happened.
fn pump_client(
    client: &mut ClientConn,
    store: &SnapshotStore,
    cfg: &ServeConfig,
    stats: &mut ServeStats,
) -> Result<bool, ServeError> {
    let mut progressed = false;
    let mut bye = false;
    let mut lost = false;
    {
        let Some(stream) = client.stream.as_mut() else {
            return Ok(false);
        };
        let mut eof = false;
        for _ in 0..DRAIN_BURST {
            match stream.read(ReadMode::NonBlocking) {
                Ok(Some(block)) => {
                    client.fb.push(&block.data);
                    progressed = true;
                }
                Ok(None) => {
                    eof = true;
                    break;
                }
                Err(VmpiError::Again) => break,
                Err(e) => return Err(e.into()),
            }
        }

        let mut wrote = false;
        loop {
            let payload = match client.fb.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => {
                    // Corrupt framing: nothing later in this client's byte
                    // stream can be trusted, so drop the connection.
                    stats.bad_requests += 1;
                    lost = true;
                    bye = true;
                    break;
                }
            };
            progressed = true;
            match Request::decode(&payload) {
                Ok(Request::Bye) => {
                    bye = true;
                    break;
                }
                Ok(Request::Subscribe) => {
                    stats.subscribes += 1;
                    client.sub = Some(Subscription {
                        synced_to: 0,
                        credits: cfg.subscriber_credits.max(1),
                    });
                }
                Ok(Request::Ack { version: _ }) => {
                    stats.acks += 1;
                    if let Some(sub) = client.sub.as_mut() {
                        sub.credits = (sub.credits + 1).min(cfg.subscriber_credits.max(1));
                    }
                }
                Ok(Request::Ping) => {
                    // Client keepalive: its delivery already flushed any
                    // reorder-held envelope on the client→server edge.
                    // Answer with a pong so the server→client edge gets
                    // flushed too — that is where a held subscription
                    // update sits when the client starves under one
                    // credit.
                    send(stream, &Response::Ping)?;
                    wrote = true;
                }
                Ok(Request::VersionInfo { req_id }) => {
                    stats.queries += 1;
                    obs::m().queries.inc();
                    let (oldest, current) = store.version_span();
                    let apps = store.current().map_or(0, |e| e.apps);
                    send(
                        stream,
                        &Response::VersionInfo {
                            req_id,
                            current,
                            oldest,
                            apps,
                            finished: store.finished(),
                        },
                    )?;
                    wrote = true;
                }
                Ok(Request::Query {
                    req_id,
                    kind,
                    app_id,
                    version,
                    rank_lo,
                    rank_hi,
                }) => {
                    stats.queries += 1;
                    obs::m().queries.inc();
                    send(
                        stream,
                        &answer_query(store, req_id, kind, app_id, version, rank_lo, rank_hi),
                    )?;
                    wrote = true;
                }
                Err(_) => {
                    stats.bad_requests += 1;
                    send(
                        stream,
                        &Response::NotFound {
                            req_id: 0,
                            reason: NotFoundReason::BadRequest,
                        },
                    )?;
                    wrote = true;
                }
            }
        }
        // Only an EOF *without* a parsed goodbye means the client vanished
        // (the goodbye frame and the close often land in the same burst).
        if eof && !bye {
            lost = true;
            bye = true;
        }

        // Subscription pump, gated on credits (slow-consumer policy).
        if let Some(sub) = client.sub.as_mut() {
            obs::m().credits.record(sub.credits as u64);
            while sub.credits > 0 && !bye {
                let Some(cur) = store.current() else { break };
                if sub.synced_to >= cur.version {
                    break;
                }
                // The retained delta advancing this subscriber by one
                // version, when the chain is intact and the subscriber has
                // state to extend.
                let next_delta = store
                    .get(sub.synced_to + 1)
                    .filter(|_| sub.synced_to > 0)
                    .and_then(|e| {
                        let payload = e.delta.clone()?;
                        Some((e.version, e.publish_ns, e.is_final, payload))
                    });
                let rsp = match next_delta {
                    Some((version, publish_ns, is_final, payload)) => {
                        stats.deltas_sent += 1;
                        obs::m().deltas_sent.inc();
                        obs::m()
                            .deliver_lag
                            .record(crate::mono_ns().saturating_sub(publish_ns));
                        sub.synced_to = version;
                        Response::Delta {
                            version,
                            publish_ns,
                            finished: is_final,
                            payload,
                        }
                    }
                    // First update, or the chain left the ring: full
                    // snapshot (a *resync* when the subscriber had state).
                    None => {
                        stats.snapshots_sent += 1;
                        obs::m().snapshots_sent.inc();
                        let resync = sub.synced_to > 0;
                        if resync {
                            stats.resyncs += 1;
                            obs::m().resyncs.inc();
                        }
                        obs::m()
                            .deliver_lag
                            .record(crate::mono_ns().saturating_sub(cur.publish_ns));
                        sub.synced_to = cur.version;
                        Response::Snapshot {
                            version: cur.version,
                            publish_ns: cur.publish_ns,
                            resync,
                            finished: cur.is_final,
                            payload: cur.encoded.clone(),
                        }
                    }
                };
                sub.credits -= 1;
                send(stream, &rsp)?;
                wrote = true;
                progressed = true;
            }
        }

        if progressed || wrote {
            client.idle = 0;
        } else {
            client.idle += 1;
            if client.idle >= KEEPALIVE_IDLE && !bye {
                client.idle = 0;
                send(stream, &Response::Ping)?;
                wrote = true;
            }
        }
        if wrote {
            stream.flush()?;
        }
    }
    if bye {
        client.finish(stats, lost);
        progressed = true;
    }
    Ok(progressed)
}

fn send(stream: &mut DuplexStream, rsp: &Response) -> Result<(), ServeError> {
    stream.write(&try_frame(&rsp.encode())?)?;
    Ok(())
}

fn answer_query(
    store: &SnapshotStore,
    req_id: u32,
    kind: QueryKind,
    app_id: u16,
    version: u64,
    rank_lo: u32,
    rank_hi: u32,
) -> Response {
    let not_found = |reason| Response::NotFound { req_id, reason };
    let entry = if version == 0 {
        match store.current() {
            Some(e) => e,
            None => return not_found(NotFoundReason::NoSnapshot),
        }
    } else {
        match store.get(version) {
            Some(e) => e,
            None => return not_found(NotFoundReason::VersionGone),
        }
    };
    let parts = match decode_partials(&entry.encoded) {
        Ok(p) => p,
        Err(_) => return not_found(NotFoundReason::BadRequest),
    };
    let Some(app) = parts.into_iter().find(|a| a.app_id == app_id) else {
        return not_found(NotFoundReason::UnknownApp);
    };
    let in_range = |rank: u32| rank >= rank_lo && rank < rank_hi;
    let mut payload = BytesMut::new();
    match kind {
        QueryKind::Profile => {
            encode_profile(&filter_profile(&app.profile, in_range), &mut payload);
        }
        QueryKind::Topology => {
            encode_topology(&filter_topology(&app.topology, in_range), &mut payload);
        }
        QueryKind::Waitstate => match app.waitstate.as_ref() {
            Some(w) => {
                payload.put_u8(1);
                encode_waitstats(&filter_waitstats(w, in_range), &mut payload);
            }
            None => payload.put_u8(0),
        },
        QueryKind::Metrics => match app.metrics.as_ref() {
            Some(m) => {
                payload.put_u8(1);
                m.filter_ranks(in_range).encode_into(&mut payload);
            }
            None => payload.put_u8(0),
        },
        QueryKind::Density => {
            let lo = rank_lo.min(app.profile.ranks());
            let hi = rank_hi.min(app.profile.ranks());
            payload.put_u32_le(lo);
            payload.put_u32_le(hi.saturating_sub(lo));
            for rank in lo..hi {
                let events: u64 = app
                    .profile
                    .kinds()
                    .iter()
                    .filter_map(|&k| app.profile.rank_kind(rank, k))
                    .map(|s| s.hits)
                    .sum();
                payload.put_u64_le(events);
            }
        }
    }
    Response::QueryResult {
        req_id,
        kind,
        version: entry.version,
        payload: payload.freeze(),
    }
}

fn filter_profile(p: &MpiProfile, in_range: impl Fn(u32) -> bool) -> MpiProfile {
    let mut out = MpiProfile::new();
    for kind in p.kinds() {
        for rank in (0..p.ranks()).filter(|&r| in_range(r)) {
            if let Some(s) = p.rank_kind(rank, kind) {
                out.absorb_stats(rank, kind, s.hits, s.time_ns, s.bytes, s.min_ns, s.max_ns);
            }
        }
    }
    out.absorb_span(p.span_ns());
    out
}

/// Keeps edges whose *source* rank is in range (the "what does this rank
/// slice send" view).
fn filter_topology(t: &Topology, in_range: impl Fn(u32) -> bool) -> Topology {
    let mut out = Topology::new();
    for ((s, d), w) in t.sorted_edges() {
        if in_range(s) {
            out.add_weighted(s, d, w.hits, w.bytes, w.time_ns);
        }
    }
    out
}

/// Keeps per-rank attributions whose rank is in range and dangling halves
/// touching the range; the scalar totals stay global.
fn filter_waitstats(w: &WaitStats, in_range: impl Fn(u32) -> bool) -> WaitStats {
    let keep = |m: &std::collections::HashMap<u32, u64>| {
        m.iter()
            .filter(|(&r, _)| in_range(r))
            .map(|(&r, &v)| (r, v))
            .collect()
    };
    WaitStats {
        matched: w.matched,
        unmatched: w.unmatched,
        total_late_sender_ns: w.total_late_sender_ns,
        total_late_receiver_ns: w.total_late_receiver_ns,
        late_sender_by_victim: keep(&w.late_sender_by_victim),
        late_sender_by_culprit: keep(&w.late_sender_by_culprit),
        late_receiver_by_victim: keep(&w.late_receiver_by_victim),
        pending_sends: w
            .pending_sends
            .iter()
            .filter(|&&(s, d, _)| in_range(s) || in_range(d))
            .copied()
            .collect(),
        pending_recvs: w
            .pending_recvs
            .iter()
            .filter(|&&(s, d, _)| in_range(s) || in_range(d))
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opmr_analysis::wire::AppPartial;
    use opmr_events::EventKind;

    fn store_with(hits_per_rank: &[u64]) -> SnapshotStore {
        let mut profile = MpiProfile::new();
        let mut topology = Topology::new();
        for (rank, &hits) in hits_per_rank.iter().enumerate() {
            profile.absorb_stats(
                rank as u32,
                EventKind::Send,
                hits,
                hits * 5,
                hits * 64,
                5,
                5,
            );
            topology.add_weighted(
                rank as u32,
                ((rank + 1) % hits_per_rank.len()) as u32,
                hits,
                0,
                0,
            );
        }
        let store = SnapshotStore::new(4, 1);
        store.publish(vec![AppPartial {
            app_id: 2,
            packs: 1,
            wire_bytes: 10,
            decode_errors: 0,
            profile,
            topology,
            waitstate: None,
            metrics: Some({
                let mut m = opmr_metrics::MetricsSeries::new(1000);
                for rank in 0..hits_per_rank.len() as u32 {
                    m.add(&opmr_events::Event::basic(
                        EventKind::Send,
                        rank,
                        rank as u64 * 100,
                        50,
                    ));
                }
                m
            }),
        }]);
        store
    }

    #[test]
    fn queries_filter_by_rank_range() {
        let store = store_with(&[10, 20, 30, 40]);
        let rsp = answer_query(&store, 1, QueryKind::Density, 2, 0, 1, 3);
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let mut view: &[u8] = &payload;
        use bytes::Buf;
        assert_eq!(view.get_u32_le(), 1);
        assert_eq!(view.get_u32_le(), 2);
        assert_eq!(view.get_u64_le(), 20);
        assert_eq!(view.get_u64_le(), 30);

        let rsp = answer_query(
            &store,
            2,
            QueryKind::Profile,
            2,
            0,
            2,
            crate::proto::ALL_RANKS,
        );
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let p = opmr_analysis::wire::decode_profile(&mut &payload[..]).unwrap();
        assert_eq!(p.events(), 70);
    }

    #[test]
    fn metrics_query_filters_by_rank_range() {
        let store = store_with(&[10, 20, 30, 40]);
        let rsp = answer_query(&store, 3, QueryKind::Metrics, 2, 0, 1, 3);
        let Response::QueryResult { payload, .. } = rsp else {
            panic!("expected result");
        };
        let mut view: &[u8] = &payload;
        use bytes::Buf;
        assert_eq!(view.get_u8(), 1, "series present");
        let m = opmr_metrics::MetricsSeries::decode(&mut view).unwrap();
        assert_eq!(m.window_ns(), 1000);
        let ranks: Vec<u32> = m.cells().map(|(_, r, _)| r).collect();
        assert_eq!(ranks, vec![1, 2], "only ranks in [1, 3) survive");
    }

    #[test]
    fn missing_things_are_typed() {
        let empty = SnapshotStore::new(2, 1);
        assert_eq!(
            answer_query(&empty, 1, QueryKind::Profile, 0, 0, 0, u32::MAX),
            Response::NotFound {
                req_id: 1,
                reason: NotFoundReason::NoSnapshot
            }
        );
        let store = store_with(&[1, 2]);
        assert_eq!(
            answer_query(&store, 2, QueryKind::Profile, 0, 0, 0, u32::MAX),
            Response::NotFound {
                req_id: 2,
                reason: NotFoundReason::UnknownApp
            }
        );
        assert_eq!(
            answer_query(&store, 3, QueryKind::Profile, 2, 99, 0, u32::MAX),
            Response::NotFound {
                req_id: 3,
                reason: NotFoundReason::VersionGone
            }
        );
    }
}
